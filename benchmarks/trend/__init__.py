"""Perf-trend tracking over successive ``BENCH_perf.json`` reports.

The wall-clock harness (``python -m benchmarks.perf``) snapshots one
moment; this tool strings those snapshots into a trend line.  Each
report is ingested into a history file (``--add``), keyed per *cell* —
``(app, input, scale, executor, engine)`` — and the latest entry is
compared cell-by-cell against its predecessor.  Deltas inside the
noise threshold are reported as stable; regressions beyond it fail
``--check``, which is how the nightly CI job turns a slow drift into a
red build instead of a surprise.

Run from the repository root::

    PYTHONPATH=src python -m benchmarks.trend --add BENCH_perf.json
    PYTHONPATH=src python -m benchmarks.trend --markdown TREND.md
    PYTHONPATH=src python -m benchmarks.trend --check --threshold 10

The history file (``BENCH_trend.json`` by default) is append-only JSON
so it can live as a CI artifact and be re-downloaded between runs.
Comparisons use ``wall_s`` — the quantity the compiled engine exists
to shrink; ``model_time_ms`` is carried along and compared at zero
tolerance because the simulated cost model is deterministic: *any*
model-time change means the semantics moved, not the machine.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

#: per-cell identity within one report.
KEY_FIELDS: Tuple[str, ...] = ("app", "input", "scale", "executor", "engine")

#: default noise threshold, percent.  Wall-clock on shared CI runners
#: jitters a few percent run-to-run; 5% separates noise from drift for
#: the medium/large cells the nightly job times.
DEFAULT_THRESHOLD_PCT = 5.0

STATUS_ORDER = ("regression", "model-change", "improvement", "new", "removed", "stable")


def cell_key(row: dict) -> Tuple[str, ...]:
    return tuple(str(row.get(f, "?")) for f in KEY_FIELDS)


def cell_name(key: Tuple[str, ...]) -> str:
    return "/".join(key)


def load_report(path: str) -> dict:
    """Load one ``BENCH_perf.json`` report and validate its shape."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or "rows" not in data:
        raise ValueError(f"{path}: not a perf report (missing 'rows')")
    rows = data["rows"]
    if not isinstance(rows, list):
        raise ValueError(f"{path}: 'rows' must be a list")
    seen = set()
    for row in rows:
        if "wall_s" not in row:
            raise ValueError(f"{path}: row missing 'wall_s': {row}")
        key = cell_key(row)
        if key in seen:
            raise ValueError(f"{path}: duplicate cell {cell_name(key)}")
        seen.add(key)
    return data


def load_history(path: str) -> dict:
    if not os.path.exists(path):
        return {"meta": {"format": "bench-trend-v1"}, "entries": []}
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or "entries" not in data:
        raise ValueError(f"{path}: not a trend history (missing 'entries')")
    return data


def save_history(history: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(history, fh, indent=1, sort_keys=True)
        fh.write("\n")


def add_report(history: dict, report: dict, label: Optional[str] = None) -> dict:
    """Append one perf report to the history; returns the new entry.

    Entries are identified by the report's ``meta.generated_unix``
    stamp — re-adding the same report is a no-op so CI retries don't
    double-count a run.
    """
    meta = report.get("meta", {})
    stamp = meta.get("generated_unix")
    for entry in history["entries"]:
        if stamp is not None and entry.get("generated_unix") == stamp:
            return entry
    entry = {
        "generated_unix": stamp,
        "label": label or "",
        "meta": dict(meta),
        "rows": [dict(r) for r in report["rows"]],
    }
    history["entries"].append(entry)
    history["entries"].sort(key=lambda e: (e.get("generated_unix") or 0))
    return entry


def _index(rows: Sequence[dict]) -> Dict[Tuple[str, ...], dict]:
    return {cell_key(r): r for r in rows}


def diff_entries(
    old_rows: Sequence[dict],
    new_rows: Sequence[dict],
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
) -> List[dict]:
    """Per-cell wall-clock deltas between two report row sets.

    Status per cell:

    * ``regression``   — wall_s grew beyond the noise threshold.
    * ``improvement``  — wall_s shrank beyond the noise threshold.
    * ``stable``       — delta within the threshold.
    * ``model-change`` — ``model_time_ms`` differs at all (the
      simulated cost model is deterministic; a changed value means the
      traversal itself changed, which outranks any wall-clock delta).
    * ``new`` / ``removed`` — cell present in only one report.
    """
    old_ix, new_ix = _index(old_rows), _index(new_rows)
    diffs: List[dict] = []
    for key in sorted(set(old_ix) | set(new_ix)):
        old, new = old_ix.get(key), new_ix.get(key)
        cell = dict(zip(KEY_FIELDS, key))
        if old is None:
            cell.update(status="new", new_wall_s=new["wall_s"])
            diffs.append(cell)
            continue
        if new is None:
            cell.update(status="removed", old_wall_s=old["wall_s"])
            diffs.append(cell)
            continue
        old_wall, new_wall = float(old["wall_s"]), float(new["wall_s"])
        delta_pct = (
            0.0 if old_wall == 0.0 else (new_wall - old_wall) / old_wall * 100.0
        )
        old_model = old.get("model_time_ms")
        new_model = new.get("model_time_ms")
        if old_model is not None and new_model is not None and old_model != new_model:
            status = "model-change"
        elif delta_pct > threshold_pct:
            status = "regression"
        elif delta_pct < -threshold_pct:
            status = "improvement"
        else:
            status = "stable"
        cell.update(
            status=status,
            old_wall_s=old_wall,
            new_wall_s=new_wall,
            delta_pct=round(delta_pct, 2),
            old_model_time_ms=old_model,
            new_model_time_ms=new_model,
        )
        diffs.append(cell)
    return diffs


def latest_diff(
    history: dict, threshold_pct: float = DEFAULT_THRESHOLD_PCT
) -> Optional[List[dict]]:
    """Diff the newest history entry against its predecessor."""
    entries = history["entries"]
    if len(entries) < 2:
        return None
    return diff_entries(entries[-2]["rows"], entries[-1]["rows"], threshold_pct)


def summarize(diffs: Sequence[dict]) -> Dict[str, int]:
    counts = {s: 0 for s in STATUS_ORDER}
    for d in diffs:
        counts[d["status"]] = counts.get(d["status"], 0) + 1
    return counts


def render_markdown(
    history: dict,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
) -> str:
    """Markdown trend report: latest diff table plus per-cell history."""
    entries = history["entries"]
    lines = ["# Perf trend", ""]
    if not entries:
        lines.append("No entries ingested yet.")
        return "\n".join(lines) + "\n"
    lines.append(
        f"{len(entries)} report(s) in history; noise threshold "
        f"±{threshold_pct:g}% on `wall_s`."
    )
    lines.append("")

    diffs = latest_diff(history, threshold_pct)
    if diffs is None:
        lines.append("Only one report — nothing to diff yet.")
    else:
        counts = summarize(diffs)
        headline = ", ".join(
            f"{counts[s]} {s}" for s in STATUS_ORDER if counts.get(s)
        )
        lines.append(f"## Latest vs previous — {headline}")
        lines.append("")
        lines.append(
            "| cell | old wall_s | new wall_s | Δ% | status |"
        )
        lines.append("|---|---:|---:|---:|---|")
        order = {s: i for i, s in enumerate(STATUS_ORDER)}
        for d in sorted(
            diffs,
            key=lambda d: (order.get(d["status"], 99), -abs(d.get("delta_pct", 0.0))),
        ):
            old_w = d.get("old_wall_s")
            new_w = d.get("new_wall_s")
            delta = d.get("delta_pct")
            mark = {"regression": " ⚠", "model-change": " ⚠"}.get(d["status"], "")
            lines.append(
                "| {cell} | {old} | {new} | {delta} | {status}{mark} |".format(
                    cell=cell_name(cell_key(d)),
                    old="—" if old_w is None else f"{old_w:.4f}",
                    new="—" if new_w is None else f"{new_w:.4f}",
                    delta="—" if delta is None else f"{delta:+.1f}",
                    status=d["status"],
                    mark=mark,
                )
            )
    lines.append("")

    # per-cell wall_s across every entry, newest last: the trend line.
    lines.append("## History")
    lines.append("")
    stamps = [e.get("generated_unix") or 0 for e in entries]
    header = " | ".join(f"run {i + 1}" for i in range(len(entries)))
    lines.append(f"| cell | {header} |")
    lines.append("|---|" + "---:|" * len(entries))
    all_keys = sorted({cell_key(r) for e in entries for r in e["rows"]})
    indexed = [_index(e["rows"]) for e in entries]
    for key in all_keys:
        vals = []
        for ix in indexed:
            row = ix.get(key)
            vals.append("—" if row is None else f"{float(row['wall_s']):.4f}")
        lines.append(f"| {cell_name(key)} | " + " | ".join(vals) + " |")
    lines.append("")
    lines.append(
        "Runs ordered oldest→newest by `meta.generated_unix` ("
        + ", ".join(str(s) for s in stamps)
        + ")."
    )
    return "\n".join(lines) + "\n"


def check(diffs: Optional[Sequence[dict]]) -> Tuple[bool, str]:
    """Gate for CI: fail on any regression or model-change cell."""
    if diffs is None:
        return True, "trend check: fewer than two reports, nothing to gate"
    bad = [d for d in diffs if d["status"] in ("regression", "model-change")]
    if not bad:
        counts = summarize(diffs)
        return True, (
            "trend check: OK ("
            + ", ".join(f"{counts[s]} {s}" for s in STATUS_ORDER if counts.get(s))
            + ")"
        )
    msgs = []
    for d in bad:
        if d["status"] == "model-change":
            msgs.append(
                f"  {cell_name(cell_key(d))}: model_time_ms "
                f"{d['old_model_time_ms']} -> {d['new_model_time_ms']} "
                "(simulated cost moved)"
            )
        else:
            msgs.append(
                f"  {cell_name(cell_key(d))}: wall_s "
                f"{d['old_wall_s']:.4f} -> {d['new_wall_s']:.4f} "
                f"({d['delta_pct']:+.1f}%)"
            )
    return False, "trend check: FAIL\n" + "\n".join(msgs)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.trend",
        description="Track wall-clock perf trends across BENCH_perf.json reports.",
    )
    parser.add_argument(
        "--history",
        default="BENCH_trend.json",
        help="trend history file (default: %(default)s)",
    )
    parser.add_argument(
        "--add",
        action="append",
        default=[],
        metavar="REPORT",
        help="ingest a BENCH_perf.json report (repeatable)",
    )
    parser.add_argument(
        "--label", default="", help="label attached to reports added this run"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD_PCT,
        metavar="PCT",
        help="noise threshold in percent (default: %(default)s)",
    )
    parser.add_argument(
        "--markdown",
        metavar="PATH",
        help="write a markdown trend report ('-' for stdout)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero if the latest entry regresses beyond the threshold",
    )
    args = parser.parse_args(argv)
    if args.threshold < 0:
        parser.error("--threshold must be >= 0")

    history = load_history(args.history)
    if args.add:
        for path in args.add:
            report = load_report(path)
            entry = add_report(history, report, label=args.label)
            print(
                f"ingested {path} -> {args.history} "
                f"({len(entry['rows'])} cells, stamp {entry['generated_unix']})"
            )
        save_history(history, args.history)

    if args.markdown:
        text = render_markdown(history, args.threshold)
        if args.markdown == "-":
            print(text, end="")
        else:
            with open(args.markdown, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"wrote {args.markdown}")

    if args.check:
        ok, msg = check(latest_diff(history, args.threshold))
        print(msg)
        return 0 if ok else 1

    if not args.add and not args.markdown:
        diffs = latest_diff(history, args.threshold)
        if diffs is None:
            print(
                f"{args.history}: {len(history['entries'])} entr"
                f"{'y' if len(history['entries']) == 1 else 'ies'}; "
                "need two to diff"
            )
        else:
            _, msg = check(diffs)
            print(msg)
    return 0
