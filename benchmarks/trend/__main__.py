"""``python -m benchmarks.trend`` entry point."""

import sys

from benchmarks.trend import main

sys.exit(main())
