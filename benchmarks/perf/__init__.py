"""Wall-clock benchmark of the plan-compiled, frontier-compacted engine.

Unlike the pytest benchmarks in ``benchmarks/`` — which compare the
*simulated* costs of the paper's traversal variants — this harness
times the simulator itself: the same launch executed by the original
per-step AST interpreter (``engine="interp"``, per-step validation on,
matching the seed executors), by the plan-compiled engine with
frontier compaction (``engine="compiled"``, the default), and by the
generated-source engine (``engine="codegen"``, the whole per-step body
emitted and ``exec``-compiled through :mod:`repro.core.passes`).

Every timed cell is also a differential test: the run aborts unless the
three engines produce bit-identical simulated stats, identical
per-point node counts, and (in ``--verify-visits`` mode) identical
visit logs.  Speed without equivalence is a bug, not a result.

Run from the repository root::

    PYTHONPATH=src python -m benchmarks.perf            # full trajectory
    PYTHONPATH=src python -m benchmarks.perf --smoke    # CI-sized subset
    PYTHONPATH=src python -m benchmarks.perf --check    # nonzero exit if
                                                        # compiled loses
    PYTHONPATH=src python -m benchmarks.perf --jobs 4   # cells in parallel,
                                                        # one pinned CPU each

``--jobs N`` runs workload cells through the fleet's pinned process
pool (:class:`repro.fleet.pool.ProcessPool`): each cell times all
engines on its own CPU, so parallel cells stay honest as long as the
machine has a core per job.

Results land in ``BENCH_perf.json`` (override with ``--out``).
"""

from __future__ import annotations

import json
import math
import os
import platform
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.gpusim.device import TESLA_C2070
from repro.gpusim.executors import (
    AutoropesExecutor,
    LockstepExecutor,
    TraversalLaunch,
)
from repro.gpusim.stack import RopeStackLayout
from repro.harness.config import SCALES, ExperimentScale
from repro.harness.runner import ExperimentRunner

#: the benchmark trajectory: (bench, input, scale, executors).  One
#: representative input per application; clustered inputs (geocity,
#: plummer) produce the long-tailed traversals where frontier
#: compaction matters most, vp/random keeps an even-frontier
#: counterexample in the mix.  The pc/geocity *flagship* runs at the
#: xlarge tier — per-element work dominating per-call overhead is where
#: the compiled engine's headline speedup lives — and times lockstep
#: only (autoropes at 131k thread stacks would dominate the wall-clock
#: budget without adding information).  The ``-unsorted`` input variant
#: runs the same dataset with point order *shuffled* instead of
#: Morton-sorted (the paper's sorted-vs-unsorted axis): divergence goes
#: up, traversals get longer, and the cell shows whether the compiled
#: engine's win survives hostile input order.
ALL_EXECUTORS: Tuple[str, ...] = ("autoropes", "lockstep")

WORKLOADS: Tuple[Tuple[str, str, str, Tuple[str, ...]], ...] = (
    ("pc", "geocity", "xlarge", ("lockstep",)),
    ("pc", "geocity-unsorted", "xlarge", ("lockstep",)),
    ("pc", "geocity", "large", ALL_EXECUTORS),
    ("knn", "geocity", "large", ALL_EXECUTORS),
    ("nn", "geocity", "large", ALL_EXECUTORS),
    ("vp", "random", "large", ALL_EXECUTORS),
    ("bh", "plummer", "large", ALL_EXECUTORS),
)


def parse_input(input_name: str) -> Tuple[str, bool]:
    """``"geocity-unsorted"`` -> ``("geocity", False)``; plain names
    stay Morton-sorted.  The suffix keeps the unsorted cell a distinct
    trend key without widening the trend schema."""
    if input_name.endswith("-unsorted"):
        return input_name[: -len("-unsorted")], False
    return input_name, True

#: CI-sized subset.  Medium scale: below it runs finish in well under a
#: second and the interp/compiled comparison is timer noise; medium is
#: the smallest tier where the compiled engine wins every cell with
#: reliable margin.
SMOKE_WORKLOADS: Tuple[Tuple[str, str, str, Tuple[str, ...]], ...] = (
    ("pc", "geocity", "medium", ALL_EXECUTORS),
    ("knn", "geocity", "medium", ALL_EXECUTORS),
    ("nn", "geocity", "medium", ALL_EXECUTORS),
)

#: workloads also timed against the *seed* executors (the repository's
#: root commit, extracted via ``git archive`` and run in a
#: subprocess).  The seed predates the engine split, so its wall time
#: is the true "before" of this trajectory; its simulated stats are
#: cross-checked against the in-tree engines.  Restricted to the
#: long-tail geocity family — the seed interpreter needs minutes per
#: xlarge cell.
SEED_WORKLOADS: Tuple[Tuple[str, str, str, Tuple[str, ...]], ...] = (
    ("pc", "geocity", "xlarge", ("lockstep",)),
    ("pc", "geocity-unsorted", "xlarge", ("lockstep",)),
    ("pc", "geocity", "large", ALL_EXECUTORS),
    ("knn", "geocity", "large", ALL_EXECUTORS),
    ("nn", "geocity", "large", ALL_EXECUTORS),
)

#: subprocess driver run against the seed checkout's ``src``.  Builds
#: the same app the in-tree :class:`ExperimentRunner` builds (same
#: datasets, same seeds, same tree parameters) and times one executor.
_SEED_DRIVER = r"""
import json, sys, time
spec = json.loads(sys.argv[1])
from repro.core.pipeline import TransformPipeline
from repro.gpusim.device import TESLA_C2070
from repro.gpusim.executors import (
    AutoropesExecutor, LockstepExecutor, TraversalLaunch,
)
from repro.gpusim.stack import RopeStackLayout
from repro.points.sorting import morton_order, shuffled_order

bench = spec["bench"]
# spec["dataset"] is the raw dataset name; spec["input"] keeps the
# row label (which may carry a "-unsorted" suffix).
def make_order(points_or_n):
    if spec["sorted"]:
        return morton_order(points_or_n)
    return shuffled_order(len(points_or_n), seed=99)

if bench == "bh":
    from repro.apps.barneshut import build_barneshut_app
    from repro.points.datasets import plummer_bodies, random_bodies
    maker = plummer_bodies if spec["dataset"] == "plummer" else random_bodies
    bodies = maker(spec["n"], seed=spec["dataset_seed"])
    order = make_order(bodies.pos)
    app = build_barneshut_app(
        bodies, order, theta=spec["theta"], leaf_size=spec["bh_leaf_size"]
    )
else:
    from repro.points.datasets import dataset_by_name
    ds = dataset_by_name(spec["dataset"], spec["n"], seed=spec["dataset_seed"])
    order = make_order(ds.points)
    if bench == "pc":
        from repro.apps.pointcorr import build_pointcorr_app
        app = build_pointcorr_app(
            ds.points, order, radius=spec["radius"], leaf_size=spec["leaf_size"]
        )
    elif bench == "knn":
        from repro.apps.knn import build_knn_app
        app = build_knn_app(
            ds.points, order, k=spec["k"], leaf_size=spec["leaf_size"]
        )
    elif bench == "nn":
        from repro.apps.nn import build_nn_app
        app = build_nn_app(ds.points, order)
    elif bench == "vp":
        from repro.apps.vptree_nn import build_vptree_app
        app = build_vptree_app(ds.points, order, leaf_size=spec["leaf_size"])
    else:
        raise SystemExit(f"unknown bench {bench!r}")

compiled = TransformPipeline().compile(app.spec)
kernel = compiled.lockstep if spec["executor"] == "lockstep" else compiled.autoropes
cls = LockstepExecutor if spec["executor"] == "lockstep" else AutoropesExecutor
L = TraversalLaunch(
    kernel=kernel, tree=app.tree, ctx=app.make_ctx(), n_points=app.n_points,
    device=TESLA_C2070, stack_layout=RopeStackLayout.INTERLEAVED_GLOBAL,
)
t0 = time.perf_counter()
cls(L).run()
wall = time.perf_counter() - t0
print(json.dumps({
    "wall_s": wall,
    "steps": int(L.stats.steps),
    "node_visits": int(L.stats.node_visits),
    "warp_node_visits": int(L.stats.warp_node_visits),
}))
"""


def _seed_checkout(log) -> Optional[Tuple[str, str]]:
    """Extract the repo's root commit into a temp dir; (ref, src_path)."""
    try:
        ref = subprocess.run(
            ["git", "rev-list", "--max-parents=0", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip().splitlines()[0]
        dest = tempfile.mkdtemp(prefix="seed-baseline-")
        archive = subprocess.run(
            ["git", "archive", ref], capture_output=True, check=True
        )
        subprocess.run(
            ["tar", "-x", "-C", dest], input=archive.stdout, check=True
        )
    except (subprocess.CalledProcessError, OSError) as exc:
        log(f"seed baseline skipped: cannot extract seed checkout ({exc})")
        return None
    return ref, os.path.join(dest, "src")


def measure_seed_baseline(
    workloads: Tuple[Tuple[str, str, str, Tuple[str, ...]], ...],
    log=print,
) -> Optional[dict]:
    """Time the seed (root-commit) executors on ``workloads``.

    Runs each cell in a subprocess whose ``PYTHONPATH`` points at a
    pristine checkout of the seed, so the numbers are the actual
    "before" of the trajectory, not the in-tree interpreter re-walking
    the seed's footsteps with this PR's shared-library improvements.
    """
    checkout = _seed_checkout(log)
    if checkout is None:
        return None
    ref, src = checkout
    env = dict(os.environ, PYTHONPATH=src)
    rows = []
    for bench, input_name, scale_name, executors in workloads:
        s = SCALES[scale_name]
        dataset, sorted_points = parse_input(input_name)
        for executor in executors:
            spec = {
                "bench": bench,
                "input": input_name,
                "dataset": dataset,
                "sorted": sorted_points,
                "executor": executor,
                "n": s.n_bodies if bench == "bh" else s.n_points,
                "dataset_seed": (42 if dataset == "plummer" else 43)
                if bench == "bh" else 0,
                "radius": s.pc_radius(dataset),
                "leaf_size": s.leaf_size,
                "bh_leaf_size": s.bh_leaf_size,
                "k": s.knn_k,
                "theta": s.theta,
            }
            proc = subprocess.run(
                [sys.executable, "-c", _SEED_DRIVER, json.dumps(spec)],
                capture_output=True, text=True, env=env,
            )
            if proc.returncode != 0:
                log(
                    f"seed baseline {bench}/{input_name}@{scale_name} "
                    f"{executor} failed:\n{proc.stderr.strip()}"
                )
                continue
            out = json.loads(proc.stdout.strip().splitlines()[-1])
            rows.append(
                {
                    "app": bench,
                    "input": input_name,
                    "scale": scale_name,
                    "executor": executor,
                    "wall_s": round(out["wall_s"], 4),
                    "steps": out["steps"],
                    "node_visits": out["node_visits"],
                    "warp_node_visits": out["warp_node_visits"],
                }
            )
            log(
                f"seed {bench}/{input_name}@{scale_name} {executor}: "
                f"{out['wall_s']:.3f}s"
            )
    return {"git_ref": ref, "rows": rows}


def _merge_seed_speedups(report: dict, seed: Optional[dict]) -> None:
    """Attach seed wall times / speedups to the matching report rows.

    Also cross-checks simulated stats: the seed run must agree with
    the in-tree engines on steps and visit counts, or the trajectory
    is comparing different computations.
    """
    if not seed or not seed.get("rows"):
        return
    report["seed_baseline"] = seed
    by_cell = {
        (r["app"], r["input"], r["scale"], r["executor"], r["engine"]): r
        for r in report["rows"]
    }
    vs_seed = []
    for srow in seed["rows"]:
        key = (srow["app"], srow["input"], srow["scale"], srow["executor"])
        crow = by_cell.get(key + ("compiled",))
        if crow is None:
            continue
        for stat in ("steps", "node_visits", "warp_node_visits"):
            if srow[stat] != crow[stat]:
                raise AssertionError(
                    f"seed baseline diverged on {key}: {stat} "
                    f"{srow[stat]} != {crow[stat]}"
                )
        vs_seed.append(
            {
                "app": srow["app"],
                "input": srow["input"],
                "scale": srow["scale"],
                "executor": srow["executor"],
                "seed_s": srow["wall_s"],
                "compiled_s": crow["wall_s"],
                "speedup": round(srow["wall_s"] / crow["wall_s"], 2),
            }
        )
    report["speedups_vs_seed"] = vs_seed
    lockstep = [s["speedup"] for s in vs_seed if s["executor"] == "lockstep"]
    report["max_lockstep_speedup_vs_seed"] = max(lockstep) if lockstep else None


def measure_telemetry_overhead(
    engines: Tuple[str, ...] = ("interp", "compiled", "codegen"),
    n_points: int = 2048,
    n_queries: int = 512,
    repeat: int = 3,
    log=print,
) -> List[dict]:
    """Time the service layer with telemetry off vs fully on, per engine.

    The zero-cost-when-disabled claim (``docs/OBSERVABILITY.md``) is a
    design goal of the telemetry layer: with ``enabled=False`` every
    hook reduces to one ``is not None`` branch per batch.  This probe
    measures it instead of asserting it: the same seeded query stream
    runs through two :class:`~repro.service.service.TraversalService`
    instances — telemetry disabled, and telemetry fully enabled
    (metrics + tracing + structured log + flight recorder + per-launch
    profiling) — and the best-of-``repeat`` wall times land in the
    report meta.  Memoization is off so every query executes; tree
    build and plan compile happen before the clock starts.

    ``overhead_pct`` can dip below zero on a noisy machine — it is a
    measurement, not a floor check.
    """
    from repro.service.service import ServiceConfig, TraversalService
    from repro.telemetry import TelemetryConfig

    modes = (
        ("off", TelemetryConfig(enabled=False)),
        ("on", TelemetryConfig(enabled=True, profile_sample_rate=1)),
    )
    rows: List[dict] = []
    for engine in engines:
        walls: Dict[str, float] = {}
        for mode, tel in modes:
            best = math.inf
            for _ in range(repeat):
                rng = np.random.default_rng(1234)
                data = rng.random((n_points, 2))
                queries = rng.random((n_queries, 2))
                svc = TraversalService(
                    ServiceConfig(
                        engine=engine,
                        telemetry=tel,
                        memo_capacity=0,
                        max_batch=64,
                    )
                )
                svc.register("pc", "pc", data, radius=0.05)
                t0 = time.perf_counter()
                svc.query_many("pc", queries)
                best = min(best, time.perf_counter() - t0)
            walls[mode] = best
        rows.append(
            {
                "engine": engine,
                "queries": n_queries,
                "telemetry_off_s": round(walls["off"], 4),
                "telemetry_on_s": round(walls["on"], 4),
                "overhead_pct": round(
                    100.0 * (walls["on"] - walls["off"]) / walls["off"], 1
                ),
            }
        )
        log(
            f"telemetry overhead {engine}: off {walls['off']:.4f}s, "
            f"on {walls['on']:.4f}s "
            f"({rows[-1]['overhead_pct']:+.1f}%)"
        )
    return rows


@dataclass
class Row:
    """One timed (workload, executor, engine) cell."""

    app: str
    input_name: str
    scale: str
    executor: str
    engine: str
    wall_s: float
    steps: int
    node_visits: int
    warp_node_visits: int
    model_time_ms: float

    def as_dict(self) -> dict:
        return {
            "app": self.app,
            "input": self.input_name,
            "scale": self.scale,
            "executor": self.executor,
            "engine": self.engine,
            "wall_s": round(self.wall_s, 4),
            "steps": self.steps,
            "node_visits": self.node_visits,
            "warp_node_visits": self.warp_node_visits,
            "model_time_ms": round(self.model_time_ms, 3),
        }


def _launch(app, kernel, engine: str, verify_visits: bool) -> TraversalLaunch:
    kw: Dict = {}
    if engine == "interp":
        # The seed executors validated every pop unconditionally; keep
        # that behavior on the baseline side of the comparison.
        kw["validate"] = True
    return TraversalLaunch(
        kernel=kernel,
        tree=app.tree,
        ctx=app.make_ctx(),
        n_points=app.n_points,
        device=TESLA_C2070,
        stack_layout=RopeStackLayout.INTERLEAVED_GLOBAL,
        record_visits=verify_visits,
        engine=engine,
        **kw,
    )


def _time_run(executor_cls, launches: List[TraversalLaunch]):
    """Best-of wall time over fresh launches (stats are per-launch)."""
    best = None
    for L in launches:
        t0 = time.perf_counter()
        result = executor_cls(L).run()
        wall = time.perf_counter() - t0
        if best is None or wall < best[0]:
            best = (wall, result)
    return best


def _assert_equivalent(
    app: str, executor: str, ri, rc, verify_visits: bool,
    engine: str = "compiled",
) -> None:
    di, dc = ri.stats.as_dict(), rc.stats.as_dict()
    if di != dc:
        diff = {k: (di[k], dc[k]) for k in di if di[k] != dc[k]}
        raise AssertionError(
            f"{app}/{executor}: {engine} engine changed simulated stats: {diff}"
        )
    if not np.array_equal(ri.nodes_per_point, rc.nodes_per_point):
        raise AssertionError(
            f"{app}/{executor}: {engine} engine changed nodes_per_point"
        )
    if verify_visits:
        vi = [(p.tolist(), n.tolist()) for p, n in ri.visits]
        vc = [(p.tolist(), n.tolist()) for p, n in rc.visits]
        if vi != vc:
            raise AssertionError(
                f"{app}/{executor}: {engine} engine changed the visit log"
            )


def run_cell(
    bench: str,
    input_name: str,
    scale_name: str,
    executors: Tuple[str, ...],
    repeat: int = 1,
    verify_visits: bool = False,
    runner: Optional[ExperimentRunner] = None,
) -> dict:
    """Time one workload cell: all three engines, every requested executor.

    Returns plain ``{"rows": [...], "speedups": [...]}`` dicts so the
    cell is a valid :class:`repro.fleet.pool.ProcessPool` job
    (``"benchmarks.perf:run_cell"``) — ``--jobs N`` runs cells in
    pinned worker processes, serial mode calls it inline.  The
    interp/compiled equivalence assertions run inside the cell, so a
    divergence fails the job (and with it the whole run) either way.
    """
    dataset, sorted_points = parse_input(input_name)
    if runner is None:
        runner = ExperimentRunner(scale=SCALES[scale_name])
    app, compiled = runner.app_for(bench, dataset, sorted_points=sorted_points)
    variants: List[Tuple[str, type, object]] = []
    if "autoropes" in executors:
        variants.append(("autoropes", AutoropesExecutor, compiled.autoropes))
    if "lockstep" in executors and compiled.lockstep is not None:
        variants.append(("lockstep", LockstepExecutor, compiled.lockstep))
    rows: List[Row] = []
    speedups: List[dict] = []
    for exec_name, exec_cls, kernel in variants:
        per_engine: Dict[str, Tuple[float, object]] = {}
        for engine in ("interp", "compiled", "codegen"):
            launches = [
                _launch(app, kernel, engine, verify_visits)
                for _ in range(repeat)
            ]
            wall, result = _time_run(exec_cls, launches)
            per_engine[engine] = (wall, result)
            rows.append(
                Row(
                    app=bench,
                    input_name=input_name,
                    scale=scale_name,
                    executor=exec_name,
                    engine=engine,
                    wall_s=wall,
                    steps=result.stats.steps,
                    node_visits=result.stats.node_visits,
                    warp_node_visits=result.stats.warp_node_visits,
                    model_time_ms=result.time_ms,
                )
            )
        wi, ri = per_engine["interp"]
        wc, rc = per_engine["compiled"]
        wg, rg = per_engine["codegen"]
        _assert_equivalent(bench, exec_name, ri, rc, verify_visits)
        _assert_equivalent(bench, exec_name, ri, rg, verify_visits,
                           engine="codegen")
        sp = wi / wc if wc > 0 else float("inf")
        speedups.append(
            {
                "app": bench,
                "input": input_name,
                "scale": scale_name,
                "executor": exec_name,
                "interp_s": round(wi, 4),
                "compiled_s": round(wc, 4),
                "codegen_s": round(wg, 4),
                "speedup": round(sp, 2),
                "codegen_speedup": round(wi / wg if wg > 0 else float("inf"), 2),
                "codegen_vs_compiled": round(
                    wc / wg if wg > 0 else float("inf"), 2
                ),
            }
        )
    return {"rows": [r.as_dict() for r in rows], "speedups": speedups}


def run_benchmark(
    workloads: Tuple[Tuple[str, str, str, Tuple[str, ...]], ...],
    repeat: int = 1,
    verify_visits: bool = False,
    log=print,
    jobs: int = 1,
) -> dict:
    rows: List[dict] = []
    speedups: List[dict] = []
    if jobs > 1:
        from repro.fleet.pool import ProcessPool

        kwargs_list = [
            {
                "bench": b, "input_name": i, "scale_name": s,
                "executors": list(e), "repeat": repeat,
                "verify_visits": verify_visits,
            }
            for b, i, s, e in workloads
        ]
        with ProcessPool(min(jobs, len(kwargs_list))) as pool:
            cells = pool.run("benchmarks.perf:run_cell", kwargs_list, log=log)
    else:
        runners: Dict[str, ExperimentRunner] = {}
        cells = []
        for bench, input_name, scale_name, executors in workloads:
            runner = runners.setdefault(
                scale_name, ExperimentRunner(scale=SCALES[scale_name])
            )
            cells.append(
                run_cell(
                    bench, input_name, scale_name, executors,
                    repeat=repeat, verify_visits=verify_visits, runner=runner,
                )
            )
    for cell in cells:
        rows.extend(cell["rows"])
        speedups.extend(cell["speedups"])
        for s in cell["speedups"]:
            log(
                f"{s['app']}/{s['input']}@{s['scale']} {s['executor']}: "
                f"interp {s['interp_s']:.3f}s, compiled {s['compiled_s']:.3f}s, "
                f"codegen {s['codegen_s']:.3f}s -> {s['speedup']:.2f}x / "
                f"{s['codegen_speedup']:.2f}x (stats identical)"
            )
    lockstep_sp = [s["speedup"] for s in speedups if s["executor"] == "lockstep"]
    report = {
        "meta": {
            "scales": sorted({w[2] for w in workloads}),
            "device": "TESLA_C2070 (simulated)",
            "python": platform.python_version(),
            "numpy": np.__version__,
            "repeat": repeat,
            "generated_unix": int(time.time()),
        },
        "rows": rows,
        "speedups": speedups,
        "max_lockstep_speedup": max(lockstep_sp) if lockstep_sp else None,
        "min_speedup": min(s["speedup"] for s in speedups) if speedups else None,
        "min_codegen_speedup": (
            min(s["codegen_speedup"] for s in speedups) if speedups else None
        ),
        "max_codegen_vs_compiled": (
            max(s["codegen_vs_compiled"] for s in speedups)
            if speedups else None
        ),
    }
    return report


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    ap = argparse.ArgumentParser(
        prog="benchmarks.perf",
        description="Time interp vs compiled engines; write BENCH_perf.json",
    )
    ap.add_argument(
        "--scale",
        default=None,
        choices=sorted(SCALES),
        help="force every workload to this scale tier "
        "(default: each workload's own tier)",
    )
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="medium scale, three workloads (CI-sized)",
    )
    ap.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if the compiled or codegen engine is slower than the "
        "interpreter on any workload",
    )
    ap.add_argument("--repeat", type=int, default=1, help="best-of-N timing")
    ap.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="run workload cells in N pinned worker processes "
        "(repro.fleet.pool); 1 = serial in-process",
    )
    ap.add_argument(
        "--no-seed-baseline",
        action="store_true",
        help="skip timing the seed (root-commit) executors",
    )
    ap.add_argument(
        "--no-telemetry-overhead",
        action="store_true",
        help="skip the service-layer telemetry on/off overhead probe",
    )
    ap.add_argument(
        "--verify-visits",
        action="store_true",
        help="also record and compare full visit logs (slower)",
    )
    ap.add_argument("--out", default="BENCH_perf.json")
    args = ap.parse_args(argv)

    workloads = SMOKE_WORKLOADS if args.smoke else WORKLOADS
    if args.scale:
        # Forcing one scale can collapse the flagship and breadth
        # entries of the same workload into one; merge their executors.
        merged: Dict[Tuple[str, str, str], Tuple[str, ...]] = {}
        for bench, inp, _, execs in workloads:
            key = (bench, inp, args.scale)
            have = merged.get(key, ())
            merged[key] = have + tuple(e for e in execs if e not in have)
        workloads = tuple((b, i, s, e) for (b, i, s), e in merged.items())

    if args.jobs < 1:
        ap.error(f"--jobs must be >= 1, got {args.jobs}")
    report = run_benchmark(
        workloads,
        repeat=args.repeat,
        verify_visits=args.verify_visits,
        jobs=args.jobs,
    )
    report["meta"]["jobs"] = args.jobs
    if not args.no_telemetry_overhead:
        report["meta"]["telemetry_overhead"] = measure_telemetry_overhead()
    if not args.smoke and not args.no_seed_baseline:
        timed = {(w[0], w[1], w[2]) for w in workloads}
        seed_set = tuple(
            w for w in SEED_WORKLOADS if (w[0], w[1], w[2]) in timed
        )
        _merge_seed_speedups(report, measure_seed_baseline(seed_set))
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    if report["max_lockstep_speedup"] is not None:
        print(f"max lockstep speedup: {report['max_lockstep_speedup']}x")
    if report.get("max_lockstep_speedup_vs_seed") is not None:
        print(
            f"max lockstep speedup vs seed: "
            f"{report['max_lockstep_speedup_vs_seed']}x"
        )
    if args.check:
        for field, engine in (
            ("min_speedup", "compiled"),
            ("min_codegen_speedup", "codegen"),
        ):
            floor = report.get(field)
            if floor is not None and floor < 1.0:
                print(
                    f"FAIL: {engine} engine slower than interpreter "
                    f"(min speedup {floor}x)",
                    file=sys.stderr,
                )
                return 1
    return 0
