"""Ablation: node field splitting (Section 5.2).

The paper splits node structures "into sets of fields based on usage
patterns" so the truncation test loads only a partial node (Fig. 9b's
``nodes0``/``nodes1``). This ablation rebuilds Point Correlation with a
single monolithic node record — every visit loads the full structure —
and measures the traffic the split saves.
"""

import dataclasses

import pytest

from repro.core.ir import CondRef, If, Seq, Stmt, TraversalSpec, Update, UpdateRef
from repro.core.pipeline import TransformPipeline
from repro.gpusim.device import TESLA_C2070
from repro.gpusim.executors import LockstepExecutor, TraversalLaunch
from repro.trees.node import FieldGroup


def _rewrite_reads(stmt: Stmt, group: str) -> Stmt:
    """Point every condition/update at one monolithic field group."""
    if isinstance(stmt, Seq):
        return Seq(*[_rewrite_reads(s, group) for s in stmt.stmts])
    if isinstance(stmt, If):
        cond = dataclasses.replace(
            stmt.cond, reads=(group,) if stmt.cond.reads else ()
        )
        return If(
            cond=cond,
            then=_rewrite_reads(stmt.then, group),
            orelse=None if stmt.orelse is None else _rewrite_reads(stmt.orelse, group),
        )
    if isinstance(stmt, Update):
        fn = dataclasses.replace(stmt.fn, reads=(group,) if stmt.fn.reads else ())
        return Update(fn)
    return stmt


def monolithic_variant(app):
    """A copy of the app whose tree has one fat field group."""
    fat = FieldGroup("fat", sum(g.itemsize for g in app.tree.groups))
    tree = dataclasses.replace(app.tree, groups=(fat,))
    spec = TraversalSpec(
        name=app.spec.name + "_monolithic",
        body=_rewrite_reads(app.spec.body, "fat"),
        args=app.spec.args,
        conditions=app.spec.conditions,
        updates=app.spec.updates,
        arg_rules=app.spec.arg_rules,
        annotations=app.spec.annotations,
        child_field_group="fat",
    )
    return tree, spec


def _run(app, tree, kernel):
    launch = TraversalLaunch(
        kernel=kernel,
        tree=tree,
        ctx=app.make_ctx(),
        n_points=app.n_points,
        device=TESLA_C2070,
    )
    return LockstepExecutor(launch).run()


@pytest.mark.parametrize("variant", ["split", "monolithic"])
def test_field_splitting(benchmark, runner, variant):
    app, compiled = runner.app_for("pc", "covtype", True)
    if variant == "split":
        tree, kernel = app.tree, compiled.lockstep
    else:
        tree, spec = monolithic_variant(app)
        kernel = TransformPipeline().compile(spec).lockstep
    res = benchmark.pedantic(
        lambda: _run(app, tree, kernel), rounds=1, iterations=1
    )
    benchmark.extra_info["model_time_ms"] = round(res.time_ms, 4)
    benchmark.extra_info["dram_bytes"] = res.stats.dram_bytes
    benchmark.extra_info["transactions"] = res.stats.global_transactions


def test_split_saves_requested_bytes(runner):
    """Truncated visits never load the child record or the bucket, so
    the split variant *requests* strictly fewer bytes for identical
    work. (Transactions/time can go either way at small scale — fat
    records amortize into whole 128-byte segments — which is exactly
    the nuance the timed benchmarks above record.)"""
    app, compiled = runner.app_for("pc", "covtype", True)
    split = _run(app, app.tree, compiled.lockstep)

    tree, spec = monolithic_variant(app)
    mono = _run(app, tree, TransformPipeline().compile(spec).lockstep)

    assert split.stats.bytes_requested < mono.stats.bytes_requested
    assert split.stats.node_visits == mono.stats.node_visits
