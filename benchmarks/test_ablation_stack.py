"""Ablation: rope-stack storage layout (Section 5.2).

The paper lays per-thread stacks out *interleaved* in global memory for
coalescing and moves per-warp lockstep stacks into shared memory for
shallow trees. This ablation times all the layout choices on Point
Correlation and checks the design rationale quantitatively:

* interleaved-global beats contiguous-global for per-thread stacks
  (same work, fewer transactions);
* a shared-memory per-warp stack eliminates the lockstep stack's global
  traffic entirely.
"""

import pytest

from repro.gpusim.device import TESLA_C2070
from repro.gpusim.executors import (
    AutoropesExecutor,
    LockstepExecutor,
    TraversalLaunch,
)
from repro.gpusim.stack import RopeStackLayout

LAYOUTS_N = [RopeStackLayout.INTERLEAVED_GLOBAL, RopeStackLayout.CONTIGUOUS_GLOBAL]
LAYOUTS_L = [RopeStackLayout.SHARED, RopeStackLayout.INTERLEAVED_GLOBAL]


def _launch(app, kernel, layout):
    return TraversalLaunch(
        kernel=kernel,
        tree=app.tree,
        ctx=app.make_ctx(),
        n_points=app.n_points,
        device=TESLA_C2070,
        stack_layout=layout,
    )


@pytest.mark.parametrize("layout", LAYOUTS_N, ids=lambda l: l.value)
def test_nonlockstep_stack_layout(benchmark, runner, layout):
    app, compiled = runner.app_for("pc", "covtype", True)
    res = benchmark.pedantic(
        lambda: AutoropesExecutor(_launch(app, compiled.autoropes, layout)).run(),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["model_time_ms"] = round(res.time_ms, 4)
    benchmark.extra_info["transactions"] = res.stats.global_transactions


@pytest.mark.parametrize("layout", LAYOUTS_L, ids=lambda l: l.value)
def test_lockstep_stack_layout(benchmark, runner, layout):
    app, compiled = runner.app_for("pc", "covtype", True)
    res = benchmark.pedantic(
        lambda: LockstepExecutor(_launch(app, compiled.lockstep, layout)).run(),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["model_time_ms"] = round(res.time_ms, 4)
    benchmark.extra_info["shared_accesses"] = res.stats.shared_accesses
    benchmark.extra_info["occupancy"] = round(res.occupancy, 3)


def test_layout_rationale(runner):
    """The quantitative claims behind the paper's layout choices."""
    app, compiled = runner.app_for("pc", "covtype", True)

    inter = AutoropesExecutor(
        _launch(app, compiled.autoropes, RopeStackLayout.INTERLEAVED_GLOBAL)
    ).run()
    contig = AutoropesExecutor(
        _launch(app, compiled.autoropes, RopeStackLayout.CONTIGUOUS_GLOBAL)
    ).run()
    assert inter.stats.global_transactions <= contig.stats.global_transactions
    assert inter.time_ms <= contig.time_ms * 1.001

    shared = LockstepExecutor(
        _launch(app, compiled.lockstep, RopeStackLayout.SHARED)
    ).run()
    glob = LockstepExecutor(
        _launch(app, compiled.lockstep, RopeStackLayout.INTERLEAVED_GLOBAL)
    ).run()
    assert shared.stats.global_transactions < glob.stats.global_transactions
    assert shared.stats.shared_accesses > 0
