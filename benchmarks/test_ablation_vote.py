"""Ablation: dynamic single-call-set vote vs a statically pinned order
(Section 4.3).

The paper's transformation makes a *dynamic* choice — each warp votes
per node — and argues this "is more efficient than statically choosing
a single call-set for the entire traversal". The ablation pins kNN's
call order to left-first for every warp (a constant, point-independent
selector) and compares against the majority vote.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.ir import CondRef, If, Seq, Stmt, TraversalSpec
from repro.core.pipeline import TransformPipeline
from repro.gpusim.device import TESLA_C2070
from repro.gpusim.executors import LockstepExecutor, TraversalLaunch

PINNED_COND = "closer_to_left"


def _pin_condition(stmt: Stmt) -> Stmt:
    if isinstance(stmt, Seq):
        return Seq(*[_pin_condition(s) for s in stmt.stmts])
    if isinstance(stmt, If):
        cond = stmt.cond
        if cond.name == PINNED_COND:
            cond = CondRef(
                "__always_left", point_dependent=False, reads=cond.reads,
                cost=cond.cost,
            )
        return If(
            cond=cond,
            then=_pin_condition(stmt.then),
            orelse=None if stmt.orelse is None else _pin_condition(stmt.orelse),
        )
    return stmt


def pinned_variant(app) -> TraversalSpec:
    conditions = dict(app.spec.conditions)
    conditions["__always_left"] = lambda ctx, node, pt, args: np.ones(
        len(node), dtype=bool
    )
    return TraversalSpec(
        name=app.spec.name + "_pinned",
        body=_pin_condition(app.spec.body),
        args=app.spec.args,
        conditions=conditions,
        updates=app.spec.updates,
        arg_rules=app.spec.arg_rules,
        annotations=app.spec.annotations,
        child_field_group=app.spec.child_field_group,
    )


def _run(app, kernel):
    launch = TraversalLaunch(
        kernel=kernel,
        tree=app.tree,
        ctx=app.make_ctx(),
        n_points=app.n_points,
        device=TESLA_C2070,
    )
    res = LockstepExecutor(launch).run()
    return res, launch.ctx


@pytest.mark.parametrize("variant", ["majority_vote", "pinned_left"])
def test_callset_choice(benchmark, runner, variant):
    app, compiled = runner.app_for("knn", "covtype", True)
    if variant == "majority_vote":
        kernel = compiled.lockstep
    else:
        kernel = TransformPipeline().compile(pinned_variant(app)).lockstep
    res, _ = benchmark.pedantic(lambda: _run(app, kernel), rounds=1, iterations=1)
    benchmark.extra_info["model_time_ms"] = round(res.time_ms, 4)
    benchmark.extra_info["avg_nodes_per_point"] = round(res.avg_nodes_per_point, 1)
    benchmark.extra_info["work_expansion"] = round(
        float(res.work_expansion_per_warp().mean()), 3
    )


def test_vote_beats_pinned(runner):
    """The dynamic vote prunes earlier, so it visits no more nodes than
    the pinned order — while both return exact k-NN results."""
    app, compiled = runner.app_for("knn", "covtype", True)
    want = app.brute_force()

    vote_res, vote_ctx = _run(app, compiled.lockstep)
    app.check(vote_ctx.out, want)

    pinned = TransformPipeline().compile(pinned_variant(app))
    assert pinned.lockstep.vote_conditions == frozenset()  # nothing to vote on
    pin_res, pin_ctx = _run(app, pinned.lockstep)
    app.check(pin_ctx.out, want)

    assert vote_res.stats.warp_node_visits <= pin_res.stats.warp_node_visits
