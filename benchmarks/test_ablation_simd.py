"""Ablation/extension: lockstep on CPU-SIMD vs GPU warps.

How warp width shapes the lockstep trade-off: narrower lane groups
(AVX-like 8) expand the union less than 32-wide GPU warps, but also
amortize coalesced loads over fewer lanes. Includes a warp-width sweep
on the GPU device model.
"""

import dataclasses

import pytest

from repro.cpusim.simd import run_simd_lockstep, simd_device
from repro.gpusim.device import TESLA_C2070
from repro.gpusim.executors import LockstepExecutor, TraversalLaunch
from repro.gpusim.stack import RopeStackLayout


def _gpu_run(app, compiled, warp_size):
    device = TESLA_C2070.with_warp_size(warp_size)
    launch = TraversalLaunch(
        kernel=compiled.lockstep,
        tree=app.tree,
        ctx=app.make_ctx(),
        n_points=app.n_points,
        device=device,
        stack_layout=RopeStackLayout.SHARED,
    )
    return LockstepExecutor(launch).run()


@pytest.mark.parametrize("warp_size", [4, 8, 16, 32])
def test_warp_width_sweep(benchmark, runner, warp_size):
    """Work expansion grows with warp width (more traversals fused)."""
    app, compiled = runner.app_for("pc", "covtype", True)
    res = benchmark.pedantic(
        lambda: _gpu_run(app, compiled, warp_size), rounds=1, iterations=1
    )
    benchmark.extra_info["work_expansion"] = round(
        float(res.work_expansion_per_warp().mean()), 3
    )
    benchmark.extra_info["model_time_ms"] = round(res.time_ms, 4)


def test_expansion_monotone_in_warp_width(runner):
    app, compiled = runner.app_for("pc", "covtype", True)
    exps = [
        float(_gpu_run(app, compiled, w).work_expansion_per_warp().mean())
        for w in (4, 16, 32)
    ]
    assert exps[0] <= exps[1] * 1.01 <= exps[2] * 1.02


@pytest.mark.parametrize("lanes", [4, 8])
def test_cpu_simd_lockstep(benchmark, runner, lanes):
    app, compiled = runner.app_for("pc", "covtype", True)
    res = benchmark.pedantic(
        lambda: run_simd_lockstep(app, compiled, lanes=lanes, block_check=False),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["model_time_ms"] = round(res.time_ms, 4)
    benchmark.extra_info["work_expansion"] = round(
        float(res.work_expansion_per_warp().mean()), 3
    )


def test_cpu_simd_results_correct(runner):
    app, compiled = runner.app_for("pc", "covtype", True)
    run_simd_lockstep(app, compiled, lanes=8)  # block_check validates


def test_simd_device_is_valid(runner):
    d = simd_device(lanes=8, cores=12)
    assert d.warp_size == 8 and d.num_sms == 12
    assert d.segment_bytes == 64  # cache line, not a GPU segment
