"""CLI for the fleet throughput benchmark; see the package docstring."""

from __future__ import annotations

import argparse
import json
import sys


def main(argv=None) -> int:
    from benchmarks.fleet import run_fleet_benchmark

    ap = argparse.ArgumentParser(
        prog="benchmarks.fleet",
        description="N-worker fleet vs single process; write BENCH_fleet.json",
    )
    ap.add_argument("--workers", type=int, default=4)
    ap.add_argument("--ticks", type=int, default=30)
    ap.add_argument("--queries-per-tick", type=int, default=16)
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--data", type=int, default=2048, help="dataset size")
    ap.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run: 2 workers, short load, no speedup gate",
    )
    ap.add_argument(
        "--check", action="store_true",
        help="exit 1 unless speedup >= --check-speedup with a clean audit",
    )
    ap.add_argument(
        "--check-speedup", type=float, default=2.0,
        help="minimum aggregate q/s multiple the fleet must reach",
    )
    ap.add_argument(
        "--no-pin", action="store_true",
        help="skip best-effort CPU pinning of the workers",
    )
    ap.add_argument("--out", default="BENCH_fleet.json")
    args = ap.parse_args(argv)

    if args.smoke:
        args.workers = min(args.workers, 2)
        args.ticks = min(args.ticks, 6)
        args.queries_per_tick = min(args.queries_per_tick, 8)
        args.data = min(args.data, 512)

    report = run_fleet_benchmark(
        workers=args.workers,
        ticks=args.ticks,
        queries_per_tick=args.queries_per_tick,
        seed=args.seed,
        n_data=args.data,
        pin_cpus=not args.no_pin,
    )
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    a = report["audit"]
    dirty = a["lost"] or a["mismatched"] or a["oracle_wrong"]
    if dirty:
        print(
            f"FAIL: audit not clean (lost={a['lost']} "
            f"mismatched={a['mismatched']} oracle_wrong={a['oracle_wrong']})",
            file=sys.stderr,
        )
        return 1
    if args.check and not args.smoke:
        # The speedup gate is hardware-aware: N workers cannot beat one
        # process by more than the machine's parallelism, so the
        # required multiple is capped at the available core count.  On
        # a single-core box the wall-clock gate is vacuous (capped at
        # 1x would still fail on IPC overhead), so only the audit
        # gates the run there — and we say so out loud.
        cores = report["meta"]["cpu_cores"]
        gate = min(args.check_speedup, float(cores))
        if cores < 2:
            print(
                "NOTE: single-core machine — wall-clock speedup gate "
                f"skipped (measured {report['speedup']}x); the audit "
                "above still gates correctness"
            )
        elif report["speedup"] < gate:
            print(
                f"FAIL: fleet speedup {report['speedup']}x < required "
                f"{gate}x (= min(--check-speedup {args.check_speedup}, "
                f"{cores} cores))",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
