"""CLI for the fleet throughput benchmark; see the package docstring."""

from __future__ import annotations

import argparse
import json
import sys


def run_chaos_cli(args) -> int:
    """Two identically-seeded kill-and-recover runs; gate on a clean
    audit, at least one healed restart, and schedule equality."""
    from benchmarks.fleet import run_chaos_benchmark

    workers = max(args.workers, 3) if not args.smoke else max(args.workers, 2)
    kwargs = dict(
        workers=workers,
        rounds=args.rounds,
        batch=args.batch,
        seed=args.seed,
        n_data=args.data,
        p_kill=args.p_kill,
        p_drop_reply=args.p_drop_reply,
        p_stall=args.p_stall,
        pin_cpus=not args.no_pin,
    )
    report = run_chaos_benchmark(**kwargs)
    print("second run (same seed) for the schedule-determinism check...")
    twin = run_chaos_benchmark(**kwargs)
    report["schedule_deterministic"] = report["schedule"] == twin["schedule"]

    out = args.out
    if out == "BENCH_fleet.json":
        out = "BENCH_fleet_chaos.json"
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")

    a = report["audit"]
    failures = []
    if a["lost"] or a["mismatched"] or a["oracle_wrong"]:
        failures.append(
            f"audit not clean (lost={a['lost']} mismatched={a['mismatched']} "
            f"oracle_wrong={a['oracle_wrong']})"
        )
    if report["recovery"]["restarts"] < 1:
        failures.append("no worker restart happened — chaos never killed")
    if report["recovery"]["session_replays"] < 1:
        failures.append("no session replay happened")
    if not report["healthz_ok"]:
        failures.append("/healthz did not recover to healthy")
    if not report["drain_ok"]:
        failures.append("drain was not clean")
    if not report["schedule_deterministic"]:
        failures.append("chaos schedule differed between same-seed runs")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print(
        f"PASS: {report['recovery']['restarts']} restarts healed, "
        f"{report['recovery']['session_replays']} sessions replayed, "
        f"{a['compared']} tickets audited clean, schedule deterministic"
    )
    return 0


def main(argv=None) -> int:
    from benchmarks.fleet import run_fleet_benchmark

    ap = argparse.ArgumentParser(
        prog="benchmarks.fleet",
        description="N-worker fleet vs single process; write BENCH_fleet.json",
    )
    ap.add_argument("--workers", type=int, default=4)
    ap.add_argument("--ticks", type=int, default=30)
    ap.add_argument("--queries-per-tick", type=int, default=16)
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--data", type=int, default=2048, help="dataset size")
    ap.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run: 2 workers, short load, no speedup gate",
    )
    ap.add_argument(
        "--chaos", action="store_true",
        help="run the kill-and-recover audit instead of the throughput "
        "benchmark: seeded worker kills under load, zero-loss audit, "
        "schedule-determinism check across two runs",
    )
    ap.add_argument(
        "--rounds", type=int, default=30,
        help="(--chaos) submit rounds; the logical clock advances one "
        "chaos bucket per round",
    )
    ap.add_argument(
        "--batch", type=int, default=24,
        help="(--chaos) rows per batch per session (scatter-sized)",
    )
    ap.add_argument("--p-kill", type=float, default=0.10)
    ap.add_argument("--p-drop-reply", type=float, default=0.04)
    ap.add_argument("--p-stall", type=float, default=0.04)
    ap.add_argument(
        "--check", action="store_true",
        help="exit 1 unless speedup >= --check-speedup with a clean audit",
    )
    ap.add_argument(
        "--check-speedup", type=float, default=2.0,
        help="minimum aggregate q/s multiple the fleet must reach",
    )
    ap.add_argument(
        "--no-pin", action="store_true",
        help="skip best-effort CPU pinning of the workers",
    )
    ap.add_argument("--out", default="BENCH_fleet.json")
    args = ap.parse_args(argv)

    if args.smoke:
        args.workers = min(args.workers, 2)
        args.ticks = min(args.ticks, 6)
        args.queries_per_tick = min(args.queries_per_tick, 8)
        args.data = min(args.data, 512)
        args.rounds = min(args.rounds, 12)
        args.batch = min(args.batch, 16)

    if args.chaos:
        return run_chaos_cli(args)

    report = run_fleet_benchmark(
        workers=args.workers,
        ticks=args.ticks,
        queries_per_tick=args.queries_per_tick,
        seed=args.seed,
        n_data=args.data,
        pin_cpus=not args.no_pin,
    )
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    a = report["audit"]
    dirty = a["lost"] or a["mismatched"] or a["oracle_wrong"]
    if dirty:
        print(
            f"FAIL: audit not clean (lost={a['lost']} "
            f"mismatched={a['mismatched']} oracle_wrong={a['oracle_wrong']})",
            file=sys.stderr,
        )
        return 1
    if args.check and not args.smoke:
        # The speedup gate is hardware-aware: N workers cannot beat one
        # process by more than the machine's parallelism, so the
        # required multiple is capped at the available core count.  On
        # a single-core box the wall-clock gate is vacuous (capped at
        # 1x would still fail on IPC overhead), so only the audit
        # gates the run there — and we say so out loud.
        cores = report["meta"]["cpu_cores"]
        gate = min(args.check_speedup, float(cores))
        if cores < 2:
            print(
                "NOTE: single-core machine — wall-clock speedup gate "
                f"skipped (measured {report['speedup']}x); the audit "
                "above still gates correctness"
            )
        elif report["speedup"] < gate:
            print(
                f"FAIL: fleet speedup {report['speedup']}x < required "
                f"{gate}x (= min(--check-speedup {args.check_speedup}, "
                f"{cores} cores))",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
