"""Fleet throughput benchmark: N workers vs one process, audited.

Measures the tentpole claim of the sharded serve fleet: a fleet of N
shared-nothing workers sustains at least ``--check-speedup`` times the
aggregate queries/sec of the identical load run through one
single-process service — with **zero lost queries** and **bit-identical
per-query results**, verified ticket by ticket.

Both sides run the exact same workload by construction, not by hope:

* every worker ``w`` drives a :class:`SyntheticLoadDriver` seeded with
  ``derive_seed(seed, w, "load")`` against a service seeded with
  ``derive_seed(seed, w, "service")``;
* the single-process baseline replays those *same* N seeded streams
  sequentially through N identically-seeded in-process services;
* afterwards each fleet ticket is matched against its baseline twin —
  same session, same coordinates (bitwise), same ok flag, same backend,
  same result arrays (``np.array_equal``, no tolerance) — and checked
  against the brute-force oracle.

Timers cover only query execution (registration / tree builds happen
before the clock starts on both sides).  Wall-clock here means real
parallel speedup: the workers execute their simulated launches on
separate cores, which is exactly what the fleet buys — and which means
the measured multiple is capped by the machine's core count.  The
artifact records ``cpu_cores`` next to ``speedup`` and the ``--check``
gate is ``min(--check-speedup, cores)`` (vacuous on one core, where
only the correctness audit gates the run).

Run from the repository root::

    PYTHONPATH=src python -m benchmarks.fleet                # default 4 workers
    PYTHONPATH=src python -m benchmarks.fleet --smoke        # CI-sized
    PYTHONPATH=src python -m benchmarks.fleet --check        # nonzero exit
                                                             # unless >= 2x

Results land in ``BENCH_fleet.json`` (override with ``--out``).
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.fleet import FleetConfig, FleetRouter
from repro.fleet.chaos import FleetChaosConfig
from repro.fleet.supervisor import RestartPolicy
from repro.fleet.worker import derive_seed
from repro.points.datasets import dataset_by_name
from repro.service.serve import SyntheticLoadDriver
from repro.service.service import ServiceConfig, TraversalService

SESSIONS: Tuple[Tuple[str, str, dict], ...] = (
    ("pc-geocity", "pc", {"radius": 0.1, "leaf_size": 4}),
    ("knn-random", "knn", {"k": 4, "leaf_size": 4}),
)


def available_cores() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _session_data(n_data: int, seed: int) -> Dict[str, np.ndarray]:
    geo = dataset_by_name("geocity", n_data, seed=seed)
    rnd = dataset_by_name("random", n_data, seed=seed + 1)
    return {"pc-geocity": geo.points, "knn-random": rnd.points}


def _register_all(register, data: Dict[str, np.ndarray]) -> None:
    for name, app, kwargs in SESSIONS:
        register(name, app, data[name], **kwargs)


def run_fleet_side(
    workers: int,
    ticks: int,
    queries_per_tick: int,
    seed: int,
    n_data: int,
    service_payload: Dict[str, Any],
    pin_cpus: bool = True,
    log=print,
) -> Tuple[float, Dict[str, dict]]:
    """Boot a fleet, fan the seeded load out, keep every ticket.

    Returns ``(wall_s, replies)`` where ``replies[worker]["results"]``
    holds that worker's recorded tickets in submission order.  The
    timer wraps only the load broadcast — worker boot, registration,
    and drain are outside it on both sides of the comparison.
    """
    router = FleetRouter(
        FleetConfig(
            workers=workers,
            seed=seed,
            pin_cpus=pin_cpus,
            service=dict(service_payload),
        )
    )
    router.start()
    try:
        data = _session_data(n_data, seed)
        _register_all(router.register, data)
        t0 = time.perf_counter()
        replies = router.run_load(
            ticks=ticks,
            queries_per_tick=queries_per_tick,
            keep_results=True,
        )
        wall = time.perf_counter() - t0
    finally:
        report = router.drain()
    if not report["ok"]:
        raise RuntimeError(f"fleet did not drain clean: {report}")
    failed = [w for w, r in replies.items() if not r.get("ok", True)]
    if failed:
        raise RuntimeError(f"workers failed under load: {failed}")
    log(
        f"fleet: {workers} workers x {ticks} ticks x {queries_per_tick} q "
        f"-> {sum(r['submitted'] for r in replies.values())} queries "
        f"in {wall:.3f}s"
    )
    return wall, replies


def run_baseline_side(
    workers: int,
    ticks: int,
    queries_per_tick: int,
    seed: int,
    n_data: int,
    service_payload: Dict[str, Any],
    log=print,
) -> Tuple[float, Dict[str, list]]:
    """Replay the fleet's N seeded streams through one process.

    Stream ``w`` uses the same derived service and load seeds as fleet
    worker ``w``, so the submitted queries are identical bit for bit;
    the streams run back to back on one core — the single-process
    "--serve" upper bound the fleet must beat.
    """
    from repro.telemetry import TelemetryConfig

    data = _session_data(n_data, seed)
    runs: List[Tuple[str, TraversalService, SyntheticLoadDriver, list]] = []
    for w in range(workers):
        cfg = ServiceConfig(
            seed=derive_seed(seed, w, "service"),
            telemetry=TelemetryConfig(enabled=True),
            **service_payload,
        )
        svc = TraversalService(cfg)
        _register_all(svc.register, data)
        record: list = []
        driver = SyntheticLoadDriver(
            svc,
            threading.RLock(),
            seed=derive_seed(seed, w, "load"),
            tick_ms=2.0,
            queries_per_tick=queries_per_tick,
            record=record,
        )
        runs.append((f"w{w}", svc, driver, record))
    t0 = time.perf_counter()
    for _, svc, driver, _ in runs:
        for _ in range(ticks):
            driver.tick()
        svc.flush()
    wall = time.perf_counter() - t0
    tickets = {wid: record for wid, _, _, record in runs}
    log(
        f"baseline: {workers} streams x {ticks} ticks x "
        f"{queries_per_tick} q -> "
        f"{sum(len(r) for r in tickets.values())} queries in {wall:.3f}s "
        "(sequential, one process)"
    )
    # Keep the services alive alongside their tickets: the audit needs
    # their session registries for the brute-force oracle.
    tickets["_services"] = {wid: svc for wid, svc, _, _ in runs}
    return wall, tickets


def audit(
    replies: Dict[str, dict], baseline: Dict[str, Any]
) -> Dict[str, Any]:
    """Ticket-by-ticket audit of the fleet run against the baseline.

    Counts: lost (never resolved), mismatched (fleet vs baseline twin
    differ anywhere), oracle_wrong (served result disagrees with brute
    force).  All three must be zero for the run to stand.
    """
    services = baseline["_services"]
    lost = mismatched = oracle_wrong = compared = 0
    for worker, reply in replies.items():
        fleet_rows = reply["results"]
        base_tickets = baseline[worker]
        if len(fleet_rows) != len(base_tickets):
            raise AssertionError(
                f"{worker}: fleet recorded {len(fleet_rows)} tickets, "
                f"baseline {len(base_tickets)} — streams diverged"
            )
        svc = services[worker]
        oracle_batch: Dict[str, List[Tuple[int, np.ndarray, dict]]] = {}
        for idx, (row, ticket) in enumerate(zip(fleet_rows, base_tickets)):
            compared += 1
            if row["error"] is not None and row["error"].get("code") == "lost":
                lost += 1
                continue
            same = (
                row["session"] == ticket.session
                and np.array_equal(row["coords"], ticket.coords)
                and row["ok"] == ticket.ok
                and row["backend"] == ticket.backend
            )
            if same and row["ok"]:
                same = set(row["result"]) == set(ticket.result) and all(
                    np.array_equal(row["result"][k], ticket.result[k])
                    for k in ticket.result
                )
            if not same:
                mismatched += 1
                continue
            if row["ok"]:
                oracle_batch.setdefault(row["session"], []).append(
                    (idx, np.asarray(row["coords"]), row["result"])
                )
        for session, entries in oracle_batch.items():
            sess = svc.registry.get(session)
            coords = np.stack([c for _, c, _ in entries])
            expected = sess.oracle(coords)
            for i, (_, _, result) in enumerate(entries):
                for key, exp in expected.items():
                    got = np.asarray(result[key])
                    if np.issubdtype(np.asarray(exp[i]).dtype, np.floating):
                        good = np.allclose(got, exp[i], rtol=1e-9, atol=1e-9)
                    else:
                        good = np.array_equal(got, exp[i])
                    if not good:
                        oracle_wrong += 1
                        break
    return {
        "compared": compared,
        "lost": lost,
        "mismatched": mismatched,
        "oracle_wrong": oracle_wrong,
    }


def run_fleet_benchmark(
    workers: int = 4,
    ticks: int = 30,
    queries_per_tick: int = 16,
    seed: int = 7,
    n_data: int = 2048,
    pin_cpus: bool = True,
    log=print,
) -> dict:
    service_payload = {"max_batch": 64, "max_wait_ms": 2.0}
    fleet_wall, replies = run_fleet_side(
        workers, ticks, queries_per_tick, seed, n_data, service_payload,
        pin_cpus=pin_cpus, log=log,
    )
    base_wall, baseline = run_baseline_side(
        workers, ticks, queries_per_tick, seed, n_data, service_payload,
        log=log,
    )
    checks = audit(replies, baseline)
    total = sum(r["submitted"] for r in replies.values())
    fleet_qps = total / fleet_wall if fleet_wall > 0 else float("inf")
    base_qps = total / base_wall if base_wall > 0 else float("inf")
    speedup = fleet_qps / base_qps if base_qps > 0 else float("inf")
    log(
        f"aggregate: fleet {fleet_qps:.0f} q/s vs single-process "
        f"{base_qps:.0f} q/s -> {speedup:.2f}x "
        f"(audit: {checks['lost']} lost, {checks['mismatched']} mismatched, "
        f"{checks['oracle_wrong']} oracle-wrong of {checks['compared']})"
    )
    return {
        "meta": {
            "workers": workers,
            "ticks": ticks,
            "queries_per_tick": queries_per_tick,
            "seed": seed,
            "n_data": n_data,
            "pin_cpus": pin_cpus,
            # Wall-clock fleet speedup is capped by the cores actually
            # available — N workers on one core cannot beat one process.
            # Readers of this artifact must judge `speedup` against
            # `cpu_cores`, and --check does exactly that.
            "cpu_cores": available_cores(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "generated_unix": int(time.time()),
        },
        "queries": total,
        "fleet_wall_s": round(fleet_wall, 4),
        "baseline_wall_s": round(base_wall, 4),
        "fleet_qps": round(fleet_qps, 1),
        "baseline_qps": round(base_qps, 1),
        "speedup": round(speedup, 2),
        "audit": checks,
        "per_worker_submitted": {
            w: r["submitted"] for w, r in sorted(replies.items())
        },
    }


# -- kill-and-recover audit (benchmarks.fleet --chaos) ---------------------
#
# The throughput benchmark above proves the fleet is fast and correct
# when nothing goes wrong; this one proves it stays correct when
# workers die.  The router drives a deterministic query stream through
# submit_many (the scatter path) while FleetChaos kills workers, drops
# replies, and stalls pipes on a seeded schedule; the supervisor heals
# each round.  Every row is audited against a single-process twin
# (bit-identical result arrays — batch composition, and therefore
# backend choice, may legitimately differ after a retry) and against
# the brute-force oracle.  Zero lost, zero mismatched, zero
# oracle-wrong — through real process deaths.


def _chaos_query_stream(
    rounds: int, batch: int, seed: int, dims: Dict[str, int]
) -> List[List[Tuple[str, np.ndarray]]]:
    """The full (session, coords) schedule, precomputed so the fleet
    run and the baseline replay iterate the identical stream."""
    rng = np.random.default_rng(derive_seed(seed, 0, "chaos-bench-load"))
    stream = []
    for _ in range(rounds):
        round_batches = []
        for name, _, _ in SESSIONS:
            round_batches.append(
                (name, rng.random((batch, dims[name])))
            )
        stream.append(round_batches)
    return stream


def _baseline_rows(
    session_data: Dict[str, np.ndarray],
    stream: List[List[Tuple[str, np.ndarray]]],
    service_payload: Dict[str, Any],
    seed: int,
) -> Dict[str, Any]:
    """Replay the stream through one in-process service (the oracle
    twin); returns per-(round, batch-index) result rows shaped like the
    wire payloads, plus the live service (the audit needs its session
    registry for the brute-force oracle)."""
    from repro.fleet import wire
    from repro.telemetry import TelemetryConfig

    cfg = ServiceConfig(
        seed=derive_seed(seed, 0, "service"),
        telemetry=TelemetryConfig(enabled=False),
        **service_payload,
    )
    svc = TraversalService(cfg)
    _register_all(svc.register, session_data)
    rows: Dict[int, list] = {}
    key = 0
    for round_batches in stream:
        for session, coords in round_batches:
            tickets = [
                svc.submit(session, c, now=svc.now_ms) for c in coords
            ]
            svc.flush(session)
            rows[key] = [
                wire.ticket_payload(t) if t.done else wire.unresolved_payload()
                for t in tickets
            ]
            key += 1
    return {"rows": rows, "service": svc}


def _audit_chaos_rows(
    fleet_rows: Dict[int, list],
    stream: List[List[Tuple[str, np.ndarray]]],
    baseline: Dict[str, Any],
) -> Dict[str, int]:
    """Row-by-row: fleet vs baseline twin (bit-identical arrays) and
    fleet vs brute-force oracle (allclose 1e-9).  Backends are NOT
    compared: a retried row legally runs in a different batch shape,
    and batch shape may steer the adaptive dispatch — the paper-level
    claim under test is that *answers* never depend on it."""
    svc = baseline["service"]
    base_rows = baseline["rows"]
    lost = mismatched = oracle_wrong = compared = 0
    flat = [
        (session, coords)
        for round_batches in stream
        for session, coords in round_batches
    ]
    for key, (session, coords) in enumerate(flat):
        sess = svc.registry.get(session)
        expected = sess.oracle(np.asarray(coords))
        for i, (frow, brow) in enumerate(zip(fleet_rows[key], base_rows[key])):
            compared += 1
            if not frow["ok"]:
                lost += 1
                continue
            same = brow["ok"] and set(frow["result"]) == set(brow["result"])
            if same:
                same = all(
                    np.array_equal(
                        np.asarray(frow["result"][k]),
                        np.asarray(brow["result"][k]),
                    )
                    for k in brow["result"]
                )
            if not same:
                mismatched += 1
                continue
            for okey, exp in expected.items():
                got = np.asarray(frow["result"][okey])
                if np.issubdtype(np.asarray(exp[i]).dtype, np.floating):
                    good = np.allclose(got, exp[i], rtol=1e-9, atol=1e-9)
                else:
                    good = np.array_equal(got, exp[i])
                if not good:
                    oracle_wrong += 1
                    break
    return {
        "compared": compared,
        "lost": lost,
        "mismatched": mismatched,
        "oracle_wrong": oracle_wrong,
    }


def run_chaos_benchmark(
    workers: int = 3,
    rounds: int = 30,
    batch: int = 24,
    tick_ms: float = 5.0,
    seed: int = 7,
    n_data: int = 512,
    p_kill: float = 0.10,
    p_drop_reply: float = 0.04,
    p_stall: float = 0.04,
    pin_cpus: bool = False,
    log=print,
) -> dict:
    """One seeded kill-and-recover run; returns the audit report.

    Restart policy note: the benchmark runs with ``backoff_base_ms=0``
    so a chaos-killed worker is always back before the next round's
    kill draws — that makes the live set at every draw, and therefore
    the fired schedule, a pure function of (seed, logical clock).
    Nonzero backoff is exercised by the unit tests, where the clock is
    scripted instead of raced against real process deaths.
    """
    service_payload = {"max_batch": 64, "max_wait_ms": 2.0}
    chaos_cfg = FleetChaosConfig(
        seed=seed,
        p_kill=p_kill,
        p_drop_reply=p_drop_reply,
        p_stall=p_stall,
        bucket_ms=tick_ms,
        max_kills_per_bucket=1,
    )
    router = FleetRouter(
        FleetConfig(
            workers=workers,
            seed=seed,
            pin_cpus=pin_cpus,
            scatter_threshold=max(2, batch // 2),
            service=dict(service_payload),
            supervise=True,
            restart=RestartPolicy(
                backoff_base_ms=0.0,
                max_restarts=10_000,
                window_ms=1e9,
            ),
            fleet_chaos=chaos_cfg,
        )
    )
    router.start()
    data = _session_data(n_data, seed)
    stream = _chaos_query_stream(
        rounds, batch, seed, {name: arr.shape[1] for name, arr in data.items()}
    )
    fleet_rows: Dict[int, list] = {}
    healthz_ok = drain_ok = False
    try:
        _register_all(router.register, data)
        key = 0
        now = 0.0
        for round_batches in stream:
            now += tick_ms
            router.heal(now=now)
            for session, coords in round_batches:
                fleet_rows[key] = router.submit_many(session, coords, now=now)
                key += 1
        # Let the supervisor finish any outstanding recovery, then
        # check the fleet reports healthy — the healz-recovers claim.
        for _ in range(5):
            now += tick_ms
            if not router.heal(now=now) and not router.dead_workers():
                break
        health = router.healthz()
        healthz_ok = bool(health["ok"])
        restarts = router.supervisor.total_restarts()
        replays = router._m["replays"].total()
        schedule = router.chaos.schedule()
        chaos_counts: Dict[str, int] = {}
        for event in schedule:
            chaos_counts[event["kind"]] = chaos_counts.get(event["kind"], 0) + 1
        supervision = router.supervisor.snapshot()
    finally:
        report = router.drain()
        drain_ok = bool(report["ok"])
    baseline = _baseline_rows(data, stream, service_payload, seed)
    checks = _audit_chaos_rows(fleet_rows, stream, baseline)
    log(
        f"chaos fleet: {workers} workers, {rounds} rounds x "
        f"{batch * len(SESSIONS)} q — {len(schedule)} faults "
        f"({chaos_counts}), {restarts} restarts, "
        f"{int(replays)} session replays; audit: {checks['lost']} lost, "
        f"{checks['mismatched']} mismatched, {checks['oracle_wrong']} "
        f"oracle-wrong of {checks['compared']}; healthz_ok={healthz_ok} "
        f"drain_ok={drain_ok}"
    )
    return {
        "meta": {
            "workers": workers,
            "rounds": rounds,
            "batch": batch,
            "tick_ms": tick_ms,
            "seed": seed,
            "n_data": n_data,
            "chaos": {
                "p_kill": p_kill,
                "p_drop_reply": p_drop_reply,
                "p_stall": p_stall,
                "bucket_ms": tick_ms,
            },
            "python": platform.python_version(),
            "numpy": np.__version__,
            "generated_unix": int(time.time()),
        },
        "audit": checks,
        "recovery": {
            "restarts": restarts,
            "session_replays": int(replays),
            "evicted": router.supervisor.evicted_workers(),
            "supervision": supervision,
        },
        "chaos_events": len(schedule),
        "chaos_counts": chaos_counts,
        "schedule": schedule,
        "healthz_ok": healthz_ok,
        "drain_ok": drain_ok,
    }
