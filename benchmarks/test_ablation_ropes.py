"""Ablation: autoropes vs statically preinstalled ropes (Section 3.1).

The paper concedes that dynamic ropes cost "slightly more overhead than
the hand-coded version (due to stack manipulation)" in exchange for
generality. This ablation measures that price on Point Correlation —
the one benchmark whose canonical order and argument-free traversal the
static baseline can handle at all (kNN/NN/VP are guided; BH carries a
stack argument), which is itself the paper's argument for autoropes.
"""

import pytest

from repro.gpusim.device import TESLA_C2070
from repro.gpusim.executors import (
    AutoropesExecutor,
    StaticRopesExecutor,
    TraversalLaunch,
)


def _launch(app, compiled):
    return TraversalLaunch(
        kernel=compiled.autoropes,
        tree=app.tree,
        ctx=app.make_ctx(),
        n_points=app.n_points,
        device=TESLA_C2070,
    )


@pytest.mark.parametrize("variant", ["autoropes", "static_ropes"])
@pytest.mark.parametrize("sorted_points", [True, False], ids=["sorted", "unsorted"])
def test_rope_mechanism(benchmark, runner, variant, sorted_points):
    app, compiled = runner.app_for("pc", "covtype", sorted_points)
    exe = AutoropesExecutor if variant == "autoropes" else StaticRopesExecutor
    res = benchmark.pedantic(
        lambda: exe(_launch(app, compiled)).run(), rounds=1, iterations=1
    )
    benchmark.extra_info["model_time_ms"] = round(res.time_ms, 4)
    benchmark.extra_info["transactions"] = res.stats.global_transactions
    benchmark.extra_info["stack_ops"] = res.stats.stack_ops


def test_static_ropes_save_stack_traffic(runner):
    app, compiled = runner.app_for("pc", "covtype", True)
    static = StaticRopesExecutor(_launch(app, compiled)).run()
    auto = AutoropesExecutor(_launch(app, compiled)).run()
    # identical work...
    assert static.stats.node_visits == auto.stats.node_visits
    # ...but no rope-stack traffic at all.
    assert static.stats.stack_ops == 0 < auto.stats.stack_ops
    assert static.stats.global_transactions < auto.stats.global_transactions
