"""Benchmark: regenerate Table 2 (work expansion of lockstep warps).

Times the lockstep launch per pair and records mean (std) work
expansion for sorted and unsorted inputs, Table 2's cells.
"""

import pytest

from benchmarks.conftest import ALL_PAIRS
from repro.gpusim.executors import LockstepExecutor, TraversalLaunch
from repro.gpusim.device import TESLA_C2070


@pytest.mark.parametrize("bench,input_name", ALL_PAIRS)
def test_table2_work_expansion(benchmark, runner, bench, input_name):
    app_s, compiled_s = runner.app_for(bench, input_name, True)
    app_u, compiled_u = runner.app_for(bench, input_name, False)

    def lockstep_run(app, compiled):
        launch = TraversalLaunch(
            kernel=compiled.lockstep,
            tree=app.tree,
            ctx=app.make_ctx(),
            n_points=app.n_points,
            device=TESLA_C2070,
        )
        return LockstepExecutor(launch).run()

    res_s = benchmark.pedantic(
        lockstep_run, args=(app_s, compiled_s), rounds=1, iterations=1
    )
    res_u = lockstep_run(app_u, compiled_u)

    w_s = res_s.work_expansion_per_warp()
    w_u = res_u.work_expansion_per_warp()
    benchmark.extra_info.update(
        {
            "sorted.mean": round(float(w_s.mean()), 3),
            "sorted.std": round(float(w_s.std()), 3),
            "unsorted.mean": round(float(w_u.mean()), 3),
            "unsorted.std": round(float(w_u.std()), 3),
        }
    )
    # Section 6.3's definition guarantees expansion >= 1.
    assert (w_s >= 1.0 - 1e-9).all()
    assert (w_u >= 1.0 - 1e-9).all()
