"""Benchmark: regenerate Figures 10 and 11 (CPU vs GPU thread sweeps).

One target per benchmark (all its inputs, both traversal types): the
measured series — ``T_gpu / T_cpu(threads)`` for threads 1..32 — lands
in ``extra_info``, including the CPU/GPU crossover thread count per
curve (the quantity the paper's figures are read for).
"""

import pytest

from repro.harness.config import BENCHMARKS, CPU_THREAD_SWEEP
from repro.harness.figures import figure_series


@pytest.mark.parametrize("sorted_points", [True, False], ids=["fig10", "fig11"])
@pytest.mark.parametrize("bench", sorted(BENCHMARKS))
def test_figure_panel(benchmark, runner, bench, sorted_points):
    series = benchmark.pedantic(
        figure_series,
        args=(runner, sorted_points),
        kwargs={"benches": [bench]},
        rounds=1,
        iterations=1,
    )
    assert len(series) == 2 * len(BENCHMARKS[bench])  # L and N per input
    for s in series:
        assert len(s.cpu_over_gpu) == len(CPU_THREAD_SWEEP)
        key = f"{s.input_name}.{s.traversal_type}"
        benchmark.extra_info[f"{key}.final_ratio"] = round(s.cpu_over_gpu[-1], 4)
        benchmark.extra_info[f"{key}.crossover"] = s.crossover_threads or 0
        # CPU relative performance cannot shrink with more threads.
        assert s.cpu_over_gpu[-1] >= s.cpu_over_gpu[0] * 0.999
