"""Benchmark: regenerate Table 1 (performance summary).

One benchmark target per benchmark/input pair; each run performs the
full Table-1 measurement for that pair — the four GPU variants (autoropes
lockstep / non-lockstep, recursive masked / unmasked) on sorted and
unsorted inputs plus the CPU thread sweep — and records the paper's
columns in ``extra_info``.
"""

import pytest

from benchmarks.conftest import ALL_PAIRS
from repro.harness.runner import ExperimentRunner


@pytest.mark.parametrize("bench,input_name", ALL_PAIRS)
def test_table1_row(benchmark, scale, bench, input_name):
    def measure():
        # fresh runner: benchmark the full measurement, not the cache.
        r = ExperimentRunner(scale=scale)
        return (
            r.run(bench, input_name, sorted_points=True),
            r.run(bench, input_name, sorted_points=False),
        )

    s, u = benchmark.pedantic(measure, rounds=1, iterations=1)
    info = {}
    for tag, res in (("sorted", s), ("unsorted", u)):
        for ttype, lockstep in (("L", True), ("N", False)):
            v = res.variant(lockstep)
            if v is None:
                continue
            info[f"{tag}.{ttype}.time_ms"] = round(v.time_ms, 4)
            info[f"{tag}.{ttype}.avg_nodes"] = round(v.avg_nodes, 1)
            info[f"{tag}.{ttype}.speedup_vs1"] = round(
                res.speedup_vs_cpu(lockstep, 1), 2
            )
            info[f"{tag}.{ttype}.speedup_vs32"] = round(
                res.speedup_vs_cpu(lockstep, 32), 2
            )
            info[f"{tag}.{ttype}.improv_vs_recurse_pct"] = round(
                res.improvement_vs_recursive(lockstep), 1
            )
    benchmark.extra_info.update(info)

    # Table 1's headline shape: lockstep visits at least as many nodes
    # per point as non-lockstep, and some autoropes variant beats the
    # matching recursive baseline.
    assert s.lockstep.avg_nodes >= s.nonlockstep.avg_nodes * 0.999
    assert (
        s.improvement_vs_recursive(True) > 0
        or s.improvement_vs_recursive(False) > 0
        or u.improvement_vs_recursive(True) > 0
        or u.improvement_vs_recursive(False) > 0
    )
