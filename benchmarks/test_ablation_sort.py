"""Ablation: point sorting and profiling-based variant selection
(Section 4.4).

Times the four (sorted x variant) corners for Point Correlation and
checks that the run-time profiler — sampling neighboring points'
traversal similarity — picks the faster variant on both inputs.
"""

import pytest

from repro.core.profiling import sample_similarity
from repro.cpusim.recursive import RecursiveInterpreter
from repro.gpusim.device import TESLA_C2070
from repro.gpusim.executors import (
    AutoropesExecutor,
    LockstepExecutor,
    TraversalLaunch,
)


def _run(app, kernel, lockstep):
    launch = TraversalLaunch(
        kernel=kernel,
        tree=app.tree,
        ctx=app.make_ctx(),
        n_points=app.n_points,
        device=TESLA_C2070,
    )
    exe = LockstepExecutor(launch) if lockstep else AutoropesExecutor(launch)
    return exe.run()


@pytest.mark.parametrize("sorted_points", [True, False], ids=["sorted", "unsorted"])
@pytest.mark.parametrize("variant", ["lockstep", "nonlockstep"])
def test_sort_by_variant(benchmark, runner, sorted_points, variant):
    app, compiled = runner.app_for("pc", "covtype", sorted_points)
    lockstep = variant == "lockstep"
    kernel = compiled.lockstep if lockstep else compiled.autoropes
    res = benchmark.pedantic(
        lambda: _run(app, kernel, lockstep), rounds=1, iterations=1
    )
    benchmark.extra_info["model_time_ms"] = round(res.time_ms, 4)
    benchmark.extra_info["avg_nodes_per_point"] = round(res.avg_nodes_per_point, 1)


def test_profiler_detects_sortedness(runner):
    """Sorted inputs show higher neighbor-traversal similarity than
    shuffled inputs — the signal Section 4.4's policy keys on."""
    sims = {}
    for sorted_points in (True, False):
        app, compiled = runner.app_for("pc", "covtype", sorted_points)
        interp = RecursiveInterpreter(app.spec, app.tree, app.make_ctx())
        sims[sorted_points] = sample_similarity(
            interp.run_point, app.n_points, n_samples=8, seed=11
        )
    assert sims[True].mean_jaccard > sims[False].mean_jaccard


def test_sorting_pays_for_lockstep(runner):
    """Sorting speeds the lockstep variant up more than it speeds the
    non-lockstep variant (it shrinks the warp union)."""
    app_s, c_s = runner.app_for("pc", "covtype", True)
    app_u, c_u = runner.app_for("pc", "covtype", False)
    lock_gain = _run(app_u, c_u.lockstep, True).time_ms / _run(
        app_s, c_s.lockstep, True
    ).time_ms
    non_gain = _run(app_u, c_u.autoropes, False).time_ms / _run(
        app_s, c_s.autoropes, False
    ).time_ms
    assert lock_gain >= non_gain * 0.9
