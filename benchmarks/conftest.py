"""Shared fixtures for the benchmark suite.

Benchmarks default to the ``tiny`` experiment scale so the whole suite
finishes in minutes; set ``REPRO_BENCH_SCALE=small`` (or ``medium``) to
time the larger configurations the EXPERIMENTS.md report uses.

Every benchmark stores its paper-comparable quantities (times, speedups,
work expansion, crossovers) in ``benchmark.extra_info`` so the JSON
output doubles as a machine-readable reproduction record.
"""

import os

import pytest

from repro.harness.config import SCALES
from repro.harness.runner import ExperimentRunner


def bench_scale():
    name = os.environ.get("REPRO_BENCH_SCALE", "tiny").lower()
    return SCALES[name]


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


@pytest.fixture(scope="session")
def runner(scale):
    """One shared runner: experiments cache across benchmarks, so each
    (bench, input, sorted) triple is simulated once per session."""
    return ExperimentRunner(scale=scale)


ALL_PAIRS = [
    (bench, input_name)
    for bench, inputs in (
        ("bh", ("plummer", "random")),
        ("pc", ("covtype", "mnist", "random", "geocity")),
        ("knn", ("covtype", "mnist", "random", "geocity")),
        ("nn", ("covtype", "mnist", "random", "geocity")),
        ("vp", ("covtype", "mnist", "random", "geocity")),
    )
    for input_name in inputs
]
