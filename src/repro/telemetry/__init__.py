"""Unified telemetry layer: metrics, span tracing, flight recorder.

One facade — :class:`Telemetry` — bundles the three subsystems so the
service layer threads a single handle instead of three:

* :class:`~repro.telemetry.metrics.MetricsRegistry` — named counters /
  gauges / histograms with Prometheus text + JSON export;
* :class:`~repro.telemetry.tracing.Tracer` — logical-clock spans with
  Chrome ``trace_event`` export;
* :class:`~repro.telemetry.flight.FlightRecorder` — bounded rings of
  recent spans per session, frozen into dumps on failure.

Zero cost when off: :data:`NULL_TELEMETRY` is a singleton whose
``enabled`` is False and whose subsystem handles are all None.  Every
instrumented call site does ``if telemetry.enabled:`` (one attribute
read and branch) and nothing else on the off path — no span objects,
no label tuples, no dict updates.  The executor hot loops are never
touched at all; per-step data rides the existing
:class:`repro.gpusim.trace.StepTrace` mechanism, sampled *after* the
launch returns.

Construction is config-driven::

    tel = Telemetry.from_config(TelemetryConfig(enabled=True))

and each subsystem can be disabled independently (``trace=False``
keeps metrics but skips span bookkeeping, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .metrics import (
    Counter,
    DEFAULT_MS_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    expose_export_text,
    merge_labeled_exports,
    sum_exports,
)
from .tracing import Span, TraceContext, Tracer, derive_trace_id
from .flight import FlightRecorder
from .logging import LEVELS, EventLog, level_rank
from .otlp import OTLPExporter
from .profile import KernelProfiler, LaunchProfile
from .slo import SLOConfig, SLOTracker

__all__ = [
    "Telemetry",
    "TelemetryConfig",
    "TelemetrySnapshot",
    "NULL_TELEMETRY",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "TraceContext",
    "derive_trace_id",
    "OTLPExporter",
    "Span",
    "FlightRecorder",
    "EventLog",
    "LEVELS",
    "level_rank",
    "KernelProfiler",
    "LaunchProfile",
    "SLOConfig",
    "SLOTracker",
    "DEFAULT_MS_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "expose_export_text",
    "merge_labeled_exports",
    "sum_exports",
]


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs for the telemetry layer.

    ``enabled`` is the master switch; the per-subsystem flags only
    matter when it is True.  ``step_events`` caps how many StepTrace
    samples a launch span carries (decimated, first/last kept);
    ``flight_capacity`` is the per-session ring size and
    ``flight_max_dumps`` bounds how many failure dumps are retained.
    ``max_spans`` bounds tracer memory on long-running services: the
    tracer keeps the most recent spans in a ring, evicting the oldest
    and counting evictions in ``tracer_spans_dropped_total``.
    """

    enabled: bool = False
    trace: bool = True
    metrics: bool = True
    flight: bool = True
    #: structured event log (the logging pillar); ``log_capacity``
    #: bounds its drop-oldest ring.
    log: bool = True
    step_events: int = 32
    flight_capacity: int = 64
    flight_max_dumps: int = 32
    max_spans: int = 100_000
    log_capacity: int = 10_000
    #: continuous kernel profiler: profile every N-th GPU launch
    #: (0 = profiler off; 1 = every launch).
    profile_sample_rate: int = 0
    #: hot-op entries exported per session (gauges + /profilez).
    profile_top_k: int = 10

    def __post_init__(self) -> None:
        if self.step_events < 0:
            raise ValueError(f"step_events must be >= 0, got {self.step_events}")
        if self.flight_capacity < 1:
            raise ValueError(
                f"flight_capacity must be >= 1, got {self.flight_capacity}"
            )
        if self.max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {self.max_spans}")
        if self.log_capacity < 1:
            raise ValueError(
                f"log_capacity must be >= 1, got {self.log_capacity}"
            )
        if self.profile_sample_rate < 0:
            raise ValueError(
                f"profile_sample_rate must be >= 0, got {self.profile_sample_rate}"
            )
        if self.profile_top_k < 1:
            raise ValueError(
                f"profile_top_k must be >= 1, got {self.profile_top_k}"
            )

    def with_(self, **kwargs) -> "TelemetryConfig":
        return replace(self, **kwargs)


@dataclass(frozen=True)
class TelemetrySnapshot:
    """JSON-safe summary embedded in :class:`repro.service.ServiceStats`.

    ``metrics`` is the registry's full JSON export; the rest are scalar
    roll-ups so a snapshot stays readable without the full payload.
    Everything here survives ``json.dumps`` → ``json.loads`` without
    ``NaN``/``Infinity`` tokens (histogram bounds are finite by
    construction).
    """

    enabled: bool = False
    spans_recorded: int = 0
    spans_dropped: int = 0
    flight_dumps: int = 0
    flight_dumps_dropped: int = 0
    log_records: int = 0
    log_records_dropped: int = 0
    metrics: dict = field(default_factory=dict)
    #: kernel-profiler roll-up (empty dict when the profiler is off).
    profile: dict = field(default_factory=dict)


class Telemetry:
    """Facade bundling registry + tracer + flight recorder + profiler."""

    __slots__ = (
        "enabled", "config", "registry", "tracer", "flight", "profiler", "log",
    )

    def __init__(
        self,
        config: TelemetryConfig,
        registry: Optional[MetricsRegistry],
        tracer: Optional[Tracer],
        flight: Optional[FlightRecorder],
        profiler: Optional[KernelProfiler] = None,
        log: Optional[EventLog] = None,
    ) -> None:
        self.config = config
        self.enabled = bool(config.enabled)
        self.registry = registry
        self.tracer = tracer
        self.flight = flight
        self.profiler = profiler
        self.log = log

    @classmethod
    def from_config(cls, config: TelemetryConfig) -> "Telemetry":
        if not config.enabled:
            return NULL_TELEMETRY
        registry = MetricsRegistry() if config.metrics else None
        tracer = Tracer(max_spans=config.max_spans) if config.trace else None
        if tracer is not None and registry is not None:
            # Satellite contract: ring evictions are observable as a
            # counter, not just a tracer attribute.
            dropped = registry.counter(
                "tracer_spans_dropped_total",
                "finished spans evicted from the tracer's bounded ring",
            )
            tracer.on_drop = dropped.inc
        flight = (
            FlightRecorder(
                capacity=config.flight_capacity,
                max_dumps=config.flight_max_dumps,
            )
            if config.flight
            else None
        )
        profiler = (
            KernelProfiler(
                sample_rate=config.profile_sample_rate,
                top_k=config.profile_top_k,
                registry=registry,
            )
            if config.profile_sample_rate > 0
            else None
        )
        log = None
        if config.log:
            log = EventLog(capacity=config.log_capacity, tracer=tracer)
            if registry is not None:
                log.on_drop = registry.counter(
                    "log_records_dropped_total",
                    "log records evicted from the event log's bounded ring",
                ).inc
        return cls(config, registry, tracer, flight, profiler, log)

    @classmethod
    def disabled(cls) -> "Telemetry":
        return NULL_TELEMETRY

    @classmethod
    def on(cls, **kwargs) -> "Telemetry":
        """Shorthand for tests: a fully enabled instance."""
        return cls.from_config(TelemetryConfig(enabled=True, **kwargs))

    # -- span helpers ----------------------------------------------------

    def finish_span(self, session: Optional[str], span: Span, t_ms: float,
                    status: str = "ok", **args) -> None:
        """End an open span and feed it to the flight ring."""
        if self.tracer is not None:
            self.tracer.end(span.span_id, t_ms, status, **args)
        else:
            span.finish(t_ms, status, **args)
        if self.flight is not None and session is not None:
            self.flight.record(session, span.to_dict())

    def snapshot(self) -> TelemetrySnapshot:
        if not self.enabled:
            return TelemetrySnapshot()
        return TelemetrySnapshot(
            enabled=True,
            spans_recorded=len(self.tracer) if self.tracer is not None else 0,
            spans_dropped=self.tracer.dropped if self.tracer is not None else 0,
            flight_dumps=len(self.flight.dumps) if self.flight is not None else 0,
            flight_dumps_dropped=(
                self.flight.dumps_dropped if self.flight is not None else 0
            ),
            log_records=self.log.recorded if self.log is not None else 0,
            log_records_dropped=(
                self.log.dropped if self.log is not None else 0
            ),
            metrics=self.registry.to_dict() if self.registry is not None else {},
            profile=(
                self.profiler.snapshot() if self.profiler is not None else {}
            ),
        )


#: The do-nothing singleton every un-instrumented service shares.
NULL_TELEMETRY = Telemetry(
    TelemetryConfig(enabled=False), registry=None, tracer=None, flight=None
)
