"""OTLP/JSON span egress over plain urllib — stdlib only, never blocking.

:class:`OTLPExporter` ships finished spans (the plain-dict form
:meth:`repro.telemetry.tracing.Span.to_dict` produces, optionally
tagged with a ``worker``) to an OpenTelemetry collector's
``/v1/traces`` HTTP endpoint as OTLP/JSON.  Design constraints, in
order:

1. **The serve path never blocks.**  :meth:`export` appends to a
   bounded in-memory buffer and returns; the HTTP POST happens on a
   background flush thread (or an explicit :meth:`flush` call in
   deterministic tests).  A full buffer or an unreachable collector
   *drops* spans and counts the drops — backpressure never reaches the
   query path.
2. **Stdlib only.**  ``urllib.request`` for the POST, ``json`` for the
   payload.  No OpenTelemetry SDK.
3. **Deterministic identity.**  OTLP wants 32-hex trace ids and 16-hex
   span ids; ours are human-readable strings (``t0``, ``b3:launch``).
   :func:`otlp_span_id` derives the hex form with the same SHA-1 family
   used everywhere else, so the mapping is stable across processes and
   runs, and parent links survive the re-encoding.

Timestamps: spans live on the *logical* clock (modeled ms).  The
exporter encodes ``t_ms * 1e6`` as ``...UnixNano`` — a collector sees
the fleet's own timeline starting at epoch, which keeps two same-seed
runs byte-comparable instead of smearing wall clock over them.

Drop/egress accounting is exposed two ways: :meth:`stats` (a strict-
JSON dict for ``/statsz``) and :meth:`sync_metrics`, which mirrors the
cumulative totals into ``otlp_*`` counters on a metrics registry so
the drop counters are scrapable from ``/metrics``.
"""

from __future__ import annotations

import hashlib
import json
import math
import threading
import urllib.error
import urllib.request
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

DEFAULT_FLUSH_MS = 1000.0
DEFAULT_MAX_BUFFER = 8192
DEFAULT_TIMEOUT_S = 2.0

#: OTLP status codes (proto enum): 0 unset, 1 ok, 2 error.
_STATUS_OK = 1
_STATUS_ERROR = 2

_HEX_DIGITS = frozenset("0123456789abcdef")


def otlp_trace_id(trace_id) -> str:
    """32-hex OTLP trace id; already-hex ids pass through unchanged."""
    s = str(trace_id or "")
    if len(s) == 32 and set(s) <= _HEX_DIGITS:
        return s
    return hashlib.sha1(f"trace:{s}".encode()).hexdigest()[:32]


def otlp_span_id(span_id) -> str:
    """Deterministic 16-hex OTLP span id for one of our span ids."""
    return hashlib.sha1(f"span:{span_id}".encode()).hexdigest()[:16]


def _attr(key: str, value) -> dict:
    if isinstance(value, bool):
        v = {"boolValue": value}
    elif isinstance(value, int):
        v = {"intValue": str(value)}
    elif isinstance(value, float):
        v = (
            {"doubleValue": value}
            if math.isfinite(value)
            else {"stringValue": str(value)}
        )
    elif value is None:
        v = {"stringValue": ""}
    else:
        v = {"stringValue": str(value)}
    return {"key": str(key), "value": v}


def _nanos(t_ms) -> str:
    return str(int(float(t_ms or 0.0) * 1e6))


def span_to_otlp(span: dict) -> dict:
    """One ``Span.to_dict()`` payload -> one OTLP/JSON span object.

    OTLP span ids are salted with the span's trace id: local span keys
    like ``b0`` repeat on every worker (each worker numbers its own
    batches), and only the trace id disambiguates them once the fleet
    merges streams.  Parent links use the *same* trace salt, which is
    sound because parentage never crosses a trace boundary — a child
    either inherits its parent's trace or adopts the ticket context
    both were stamped with.
    """
    trace_key = str(span.get("trace_id") or "")
    attrs = [_attr(k, v) for k, v in sorted(span.get("args", {}).items())]
    for key in ("track", "worker"):
        if span.get(key) is not None:
            attrs.append(_attr(key, span[key]))
    attrs.append(_attr("span.key", span.get("span_id")))
    t0 = span.get("t_start_ms") or 0.0
    t1 = span.get("t_end_ms")
    status = span.get("status", "ok")
    out = {
        "traceId": otlp_trace_id(span.get("trace_id")),
        "spanId": otlp_span_id(f"{trace_key}:{span.get('span_id')}"),
        "name": str(span.get("name", "")),
        "kind": 1,  # SPAN_KIND_INTERNAL
        "startTimeUnixNano": _nanos(t0),
        "endTimeUnixNano": _nanos(t1 if t1 is not None else t0),
        "attributes": attrs,
        "events": [
            {
                "timeUnixNano": _nanos(ev.get("t_ms")),
                "name": str(ev.get("name", "")),
                "attributes": [
                    _attr(k, v) for k, v in sorted(ev.get("args", {}).items())
                ],
            }
            for ev in span.get("events", [])
        ],
        "status": (
            {"code": _STATUS_OK}
            if status == "ok"
            else {"code": _STATUS_ERROR, "message": str(status)}
        ),
    }
    parent = span.get("parent_id")
    if parent is not None:
        out["parentSpanId"] = otlp_span_id(f"{trace_key}:{parent}")
    return out


def encode_batch(spans: List[dict], service_name: str = "repro") -> dict:
    """Wrap span dicts in the OTLP/JSON ``resourceSpans`` envelope."""
    return {
        "resourceSpans": [
            {
                "resource": {
                    "attributes": [_attr("service.name", service_name)]
                },
                "scopeSpans": [
                    {
                        "scope": {"name": "repro.telemetry"},
                        "spans": [span_to_otlp(s) for s in spans],
                    }
                ],
            }
        ]
    }


class OTLPExporter:
    """Bounded, background, drop-counting OTLP/JSON span shipper."""

    def __init__(
        self,
        endpoint: str,
        flush_ms: float = DEFAULT_FLUSH_MS,
        max_buffer: int = DEFAULT_MAX_BUFFER,
        service_name: str = "repro",
        timeout_s: float = DEFAULT_TIMEOUT_S,
        source: Optional[Callable[[], List[dict]]] = None,
    ) -> None:
        if flush_ms <= 0:
            raise ValueError(f"flush_ms must be positive, got {flush_ms}")
        if max_buffer < 1:
            raise ValueError(f"max_buffer must be >= 1, got {max_buffer}")
        self.endpoint = str(endpoint)
        self.flush_ms = float(flush_ms)
        self.max_buffer = int(max_buffer)
        self.service_name = service_name
        self.timeout_s = float(timeout_s)
        #: optional pull hook: called at each flush to harvest spans
        #: (e.g. a tracer outbox drained under the server lock).
        self.source = source
        self._buf: Deque[dict] = deque()
        self._lock = threading.Lock()
        self._halt = threading.Event()
        self._thread: Optional[threading.Thread] = None
        # Cumulative egress accounting (strict-JSON ints).
        self.spans_exported = 0
        self.spans_dropped = 0
        self.posts_ok = 0
        self.post_failures = 0
        self._synced: Dict[str, float] = {}

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Start the background flush thread (idempotent)."""
        if self._thread is not None:
            return
        self._halt.clear()
        self._thread = threading.Thread(
            target=self._flush_loop, name="otlp-exporter", daemon=True
        )
        self._thread.start()

    def stop(self, flush: bool = True) -> None:
        """Stop the flush thread; optionally attempt one final flush."""
        self._halt.set()
        if self._thread is not None:
            self._thread.join(timeout=max(5.0, 2 * self.timeout_s))
            self._thread = None
        if flush:
            self.flush()

    def _flush_loop(self) -> None:
        while not self._halt.wait(self.flush_ms / 1000.0):
            self.flush()

    # -- buffering -------------------------------------------------------

    def export(self, spans: List[dict]) -> None:
        """Enqueue finished spans; never blocks, overflow drops oldest."""
        if not spans:
            return
        with self._lock:
            for span in spans:
                if len(self._buf) >= self.max_buffer:
                    self._buf.popleft()
                    self.spans_dropped += 1
                self._buf.append(span)

    def pending(self) -> int:
        with self._lock:
            return len(self._buf)

    # -- shipping --------------------------------------------------------

    def flush(self) -> int:
        """Harvest the source, POST everything buffered; returns the
        number of spans delivered.  An unreachable collector drops the
        batch (counted), it never raises and never retries in place —
        the buffer belongs to the *next* spans."""
        source = self.source
        if source is not None:
            try:
                self.export(source())
            except Exception:
                pass  # harvesting must never kill the flush loop
        with self._lock:
            if not self._buf:
                return 0
            batch = list(self._buf)
            self._buf.clear()
        body = json.dumps(
            encode_batch(batch, self.service_name), allow_nan=False
        ).encode()
        req = urllib.request.Request(
            self.endpoint,
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                resp.read()
        except (urllib.error.URLError, OSError, ValueError):
            with self._lock:
                self.post_failures += 1
                self.spans_dropped += len(batch)
            return 0
        with self._lock:
            self.posts_ok += 1
            self.spans_exported += len(batch)
        return len(batch)

    # -- observability ---------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "endpoint": self.endpoint,
                "pending": len(self._buf),
                "spans_exported": self.spans_exported,
                "spans_dropped": self.spans_dropped,
                "posts_ok": self.posts_ok,
                "post_failures": self.post_failures,
            }

    def sync_metrics(self, registry) -> None:
        """Mirror cumulative egress totals into ``otlp_*`` counters.

        Counters only go up, so the mirror applies *deltas* since the
        last sync — safe to call on every ``/metrics`` scrape.
        """
        snap = self.stats()
        for name, help_text, key in (
            ("otlp_spans_exported_total",
             "spans delivered to the OTLP collector", "spans_exported"),
            ("otlp_spans_dropped_total",
             "spans dropped: buffer overflow or collector unreachable",
             "spans_dropped"),
            ("otlp_posts_total",
             "OTLP HTTP posts accepted by the collector", "posts_ok"),
            ("otlp_post_failures_total",
             "OTLP HTTP posts that failed (collector unreachable)",
             "post_failures"),
        ):
            counter = registry.counter(name, help_text)
            delta = snap[key] - self._synced.get(key, 0)
            if delta > 0:
                counter.inc(delta)
                self._synced[key] = snap[key]
