"""OTLP/JSON egress over plain urllib — stdlib only, never blocking.

:class:`OTLPExporter` ships all three telemetry signals to an
OpenTelemetry collector as OTLP/JSON over HTTP:

* **traces** — finished spans (the plain-dict form
  :meth:`repro.telemetry.tracing.Span.to_dict` produces, optionally
  tagged with a ``worker``) to ``/v1/traces``;
* **logs** — structured :class:`repro.telemetry.logging.EventLog`
  records to ``/v1/logs``, trace/span ids carried through;
* **metrics** — a cumulative snapshot of a
  :meth:`~repro.telemetry.metrics.MetricsRegistry.to_dict` export to
  ``/v1/metrics`` on every flush (counters as monotonic sums, gauges
  as gauges, histograms with bucket counts and exemplars).

The three per-signal URLs derive from one configured endpoint
(:func:`signal_url`), so ``--otlp-endpoint http://host:4318/v1/traces``
ships everything.  Design constraints, in order:

1. **The serve path never blocks.**  :meth:`export` / :meth:`export_logs`
   append to bounded in-memory buffers and return; the HTTP POSTs
   happen on a background flush thread (or an explicit :meth:`flush`
   call in deterministic tests).  A full buffer or an unreachable
   collector *drops* the batch and counts the drops per signal —
   backpressure never reaches the query path.
2. **Stdlib only.**  ``urllib.request`` for the POST, ``json`` for the
   payload.  No OpenTelemetry SDK.
3. **Deterministic identity.**  OTLP wants 32-hex trace ids and 16-hex
   span ids; ours are human-readable strings (``t0``, ``b3:launch``).
   :func:`otlp_span_id` derives the hex form with the same SHA-1 family
   used everywhere else, so the mapping is stable across processes and
   runs, and parent links survive the re-encoding.

Timestamps: spans live on the *logical* clock (modeled ms).  The
exporter encodes ``t_ms * 1e6`` as ``...UnixNano`` — a collector sees
the fleet's own timeline starting at epoch, which keeps two same-seed
runs byte-comparable instead of smearing wall clock over them.

Drop/egress accounting is exposed two ways: :meth:`stats` (a strict-
JSON dict for ``/statsz``) and :meth:`sync_metrics`, which mirrors the
cumulative totals into ``otlp_*`` counters on a metrics registry so
the drop counters are scrapable from ``/metrics``.
"""

from __future__ import annotations

import hashlib
import json
import math
import threading
import urllib.error
import urllib.request
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

DEFAULT_FLUSH_MS = 1000.0
DEFAULT_MAX_BUFFER = 8192
DEFAULT_TIMEOUT_S = 2.0

#: OTLP status codes (proto enum): 0 unset, 1 ok, 2 error.
_STATUS_OK = 1
_STATUS_ERROR = 2

_HEX_DIGITS = frozenset("0123456789abcdef")

#: the three OTLP/HTTP signal paths, all derived from one endpoint.
SIGNALS = ("traces", "metrics", "logs")

#: OTLP severity numbers (proto enum) for our four log levels.
_SEVERITY_NUMBER = {"debug": 5, "info": 9, "warn": 13, "error": 17}


def signal_url(endpoint: str, signal: str) -> str:
    """Per-signal collector URL from the one configured endpoint.

    ``http://h:4318/v1/traces`` -> ``http://h:4318/v1/logs`` etc.; an
    endpoint without a recognized ``/v1/<signal>`` suffix gets one
    appended (the OTLP/HTTP default layout).
    """
    base = str(endpoint).rstrip("/")
    for known in SIGNALS:
        suffix = f"/v1/{known}"
        if base.endswith(suffix):
            base = base[: -len(suffix)]
            break
    return f"{base}/v1/{signal}"


def otlp_trace_id(trace_id) -> str:
    """32-hex OTLP trace id; already-hex ids pass through unchanged."""
    s = str(trace_id or "")
    if len(s) == 32 and set(s) <= _HEX_DIGITS:
        return s
    return hashlib.sha1(f"trace:{s}".encode()).hexdigest()[:32]


def otlp_span_id(span_id) -> str:
    """Deterministic 16-hex OTLP span id for one of our span ids."""
    return hashlib.sha1(f"span:{span_id}".encode()).hexdigest()[:16]


def _attr(key: str, value) -> dict:
    if isinstance(value, bool):
        v = {"boolValue": value}
    elif isinstance(value, int):
        v = {"intValue": str(value)}
    elif isinstance(value, float):
        v = (
            {"doubleValue": value}
            if math.isfinite(value)
            else {"stringValue": str(value)}
        )
    elif value is None:
        v = {"stringValue": ""}
    else:
        v = {"stringValue": str(value)}
    return {"key": str(key), "value": v}


def _nanos(t_ms) -> str:
    return str(int(float(t_ms or 0.0) * 1e6))


def span_to_otlp(span: dict) -> dict:
    """One ``Span.to_dict()`` payload -> one OTLP/JSON span object.

    OTLP span ids are salted with the span's trace id: local span keys
    like ``b0`` repeat on every worker (each worker numbers its own
    batches), and only the trace id disambiguates them once the fleet
    merges streams.  Parent links use the *same* trace salt, which is
    sound because parentage never crosses a trace boundary — a child
    either inherits its parent's trace or adopts the ticket context
    both were stamped with.
    """
    trace_key = str(span.get("trace_id") or "")
    attrs = [_attr(k, v) for k, v in sorted(span.get("args", {}).items())]
    for key in ("track", "worker"):
        if span.get(key) is not None:
            attrs.append(_attr(key, span[key]))
    attrs.append(_attr("span.key", span.get("span_id")))
    t0 = span.get("t_start_ms") or 0.0
    t1 = span.get("t_end_ms")
    status = span.get("status", "ok")
    out = {
        "traceId": otlp_trace_id(span.get("trace_id")),
        "spanId": otlp_span_id(f"{trace_key}:{span.get('span_id')}"),
        "name": str(span.get("name", "")),
        "kind": 1,  # SPAN_KIND_INTERNAL
        "startTimeUnixNano": _nanos(t0),
        "endTimeUnixNano": _nanos(t1 if t1 is not None else t0),
        "attributes": attrs,
        "events": [
            {
                "timeUnixNano": _nanos(ev.get("t_ms")),
                "name": str(ev.get("name", "")),
                "attributes": [
                    _attr(k, v) for k, v in sorted(ev.get("args", {}).items())
                ],
            }
            for ev in span.get("events", [])
        ],
        "status": (
            {"code": _STATUS_OK}
            if status == "ok"
            else {"code": _STATUS_ERROR, "message": str(status)}
        ),
    }
    parent = span.get("parent_id")
    if parent is not None:
        out["parentSpanId"] = otlp_span_id(f"{trace_key}:{parent}")
    return out


def encode_batch(spans: List[dict], service_name: str = "repro") -> dict:
    """Wrap span dicts in the OTLP/JSON ``resourceSpans`` envelope."""
    return {
        "resourceSpans": [
            {
                "resource": {
                    "attributes": [_attr("service.name", service_name)]
                },
                "scopeSpans": [
                    {
                        "scope": {"name": "repro.telemetry"},
                        "spans": [span_to_otlp(s) for s in spans],
                    }
                ],
            }
        ]
    }


def record_to_otlp(rec: dict) -> dict:
    """One :class:`~repro.telemetry.logging.EventLog` record -> one
    OTLP/JSON ``logRecord``.  The record's trace/span ids (when
    stamped) re-encode through the same SHA-1 family as spans, so a
    collector joins logs to their spans on identical ids."""
    level = str(rec.get("level", "info"))
    attrs = [
        _attr(k, v) for k, v in sorted(rec.get("fields", {}).items())
    ]
    attrs.append(_attr("event", rec.get("event")))
    attrs.append(_attr("seq", int(rec.get("seq", 0))))
    if rec.get("worker") is not None:
        attrs.append(_attr("worker", rec["worker"]))
    out = {
        "timeUnixNano": _nanos(rec.get("t_ms")),
        "observedTimeUnixNano": _nanos(rec.get("t_ms")),
        "severityNumber": _SEVERITY_NUMBER.get(level, 9),
        "severityText": level.upper(),
        "body": {"stringValue": str(rec.get("event", ""))},
        "attributes": attrs,
    }
    trace_id = rec.get("trace_id")
    if trace_id is not None:
        out["traceId"] = otlp_trace_id(trace_id)
        span_id = rec.get("span_id")
        if span_id is not None:
            out["spanId"] = otlp_span_id(f"{trace_id}:{span_id}")
    return out


def encode_log_batch(records: List[dict], service_name: str = "repro") -> dict:
    """Wrap log records in the OTLP/JSON ``resourceLogs`` envelope."""
    return {
        "resourceLogs": [
            {
                "resource": {
                    "attributes": [_attr("service.name", service_name)]
                },
                "scopeLogs": [
                    {
                        "scope": {"name": "repro.telemetry"},
                        "logRecords": [record_to_otlp(r) for r in records],
                    }
                ],
            }
        ]
    }


def _metric_attrs(labels: dict) -> List[dict]:
    return [_attr(k, v) for k, v in sorted((labels or {}).items())]


def encode_metrics_export(
    export: dict, service_name: str = "repro", t_ms: float = 0.0
):
    """A ``MetricsRegistry.to_dict()``-shaped export -> the OTLP/JSON
    ``resourceMetrics`` envelope; returns ``(payload, n_data_points)``.

    Counters become cumulative monotonic sums, gauges stay gauges,
    histograms carry bucket counts, explicit bounds, and any
    OpenMetrics exemplars (trace-linked) their buckets collected.
    """
    now = _nanos(t_ms)
    metrics = []
    points = 0
    for name in sorted(export):
        family = export[name]
        kind = family.get("kind")
        entry = {"name": name, "description": family.get("help", "")}
        data_points = []
        if kind == "histogram":
            for series in family.get("series", []):
                dp = {
                    "attributes": _metric_attrs(series.get("labels")),
                    "startTimeUnixNano": "0",
                    "timeUnixNano": now,
                    "count": str(int(series["count"])),
                    "sum": float(series["sum"]),
                    "bucketCounts": [str(int(c)) for c in series["counts"]],
                    "explicitBounds": [float(b) for b in series["bounds"]],
                }
                exemplars = [
                    {
                        "timeUnixNano": now,
                        "asDouble": float(ex["value"]),
                        "traceId": otlp_trace_id(ex.get("trace_id")),
                    }
                    for ex in (series.get("exemplars") or [])
                    if ex
                ]
                if exemplars:
                    dp["exemplars"] = exemplars
                data_points.append(dp)
            entry["histogram"] = {
                "dataPoints": data_points,
                "aggregationTemporality": 2,  # CUMULATIVE
            }
        else:
            for series in family.get("series", []):
                data_points.append(
                    {
                        "attributes": _metric_attrs(series.get("labels")),
                        "startTimeUnixNano": "0",
                        "timeUnixNano": now,
                        "asDouble": float(series["value"]),
                    }
                )
            if kind == "counter":
                entry["sum"] = {
                    "dataPoints": data_points,
                    "aggregationTemporality": 2,
                    "isMonotonic": True,
                }
            else:
                entry["gauge"] = {"dataPoints": data_points}
        points += len(data_points)
        metrics.append(entry)
    payload = {
        "resourceMetrics": [
            {
                "resource": {
                    "attributes": [_attr("service.name", service_name)]
                },
                "scopeMetrics": [
                    {
                        "scope": {"name": "repro.telemetry"},
                        "metrics": metrics,
                    }
                ],
            }
        ]
    }
    return payload, points


class OTLPExporter:
    """Bounded, background, drop-counting OTLP/JSON shipper for all
    three signals (spans, log records, metric snapshots)."""

    def __init__(
        self,
        endpoint: str,
        flush_ms: float = DEFAULT_FLUSH_MS,
        max_buffer: int = DEFAULT_MAX_BUFFER,
        service_name: str = "repro",
        timeout_s: float = DEFAULT_TIMEOUT_S,
        source: Optional[Callable[[], List[dict]]] = None,
    ) -> None:
        if flush_ms <= 0:
            raise ValueError(f"flush_ms must be positive, got {flush_ms}")
        if max_buffer < 1:
            raise ValueError(f"max_buffer must be >= 1, got {max_buffer}")
        self.endpoint = str(endpoint)
        self._urls = {s: signal_url(endpoint, s) for s in SIGNALS}
        self.flush_ms = float(flush_ms)
        self.max_buffer = int(max_buffer)
        self.service_name = service_name
        self.timeout_s = float(timeout_s)
        #: optional pull hook: called at each flush to harvest spans
        #: (e.g. a tracer outbox drained under the server lock).
        self.source = source
        #: optional pull hook for log records (an EventLog outbox).
        self.log_source: Optional[Callable[[], List[dict]]] = None
        #: optional pull hook returning a ``registry.to_dict()``-shaped
        #: export; when set, each flush ships a cumulative metrics
        #: snapshot to ``/v1/metrics``.
        self.metrics_source: Optional[Callable[[], Optional[dict]]] = None
        #: optional logical-clock hook stamping metric data points.
        self.clock: Optional[Callable[[], float]] = None
        self._buf: Deque[dict] = deque()
        self._log_buf: Deque[dict] = deque()
        self._lock = threading.Lock()
        self._halt = threading.Event()
        self._thread: Optional[threading.Thread] = None
        # Cumulative egress accounting (strict-JSON ints).
        self.spans_exported = 0
        self.spans_dropped = 0
        self.logs_exported = 0
        self.logs_dropped = 0
        self.metric_points_exported = 0
        self._posts = {s: 0 for s in SIGNALS}
        self._failures = {s: 0 for s in SIGNALS}
        self._synced: Dict[str, float] = {}

    @property
    def posts_ok(self) -> int:
        return sum(self._posts.values())

    @property
    def post_failures(self) -> int:
        return sum(self._failures.values())

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Start the background flush thread (idempotent)."""
        if self._thread is not None:
            return
        self._halt.clear()
        self._thread = threading.Thread(
            target=self._flush_loop, name="otlp-exporter", daemon=True
        )
        self._thread.start()

    def stop(self, flush: bool = True) -> None:
        """Stop the flush thread; optionally attempt one final flush."""
        self._halt.set()
        if self._thread is not None:
            self._thread.join(timeout=max(5.0, 2 * self.timeout_s))
            self._thread = None
        if flush:
            self.flush()

    def _flush_loop(self) -> None:
        while not self._halt.wait(self.flush_ms / 1000.0):
            self.flush()

    # -- buffering -------------------------------------------------------

    def export(self, spans: List[dict]) -> None:
        """Enqueue finished spans; never blocks, overflow drops oldest."""
        if not spans:
            return
        with self._lock:
            for span in spans:
                if len(self._buf) >= self.max_buffer:
                    self._buf.popleft()
                    self.spans_dropped += 1
                self._buf.append(span)

    def export_logs(self, records: List[dict]) -> None:
        """Enqueue log records; same bounded never-block contract."""
        if not records:
            return
        with self._lock:
            for rec in records:
                if len(self._log_buf) >= self.max_buffer:
                    self._log_buf.popleft()
                    self.logs_dropped += 1
                self._log_buf.append(rec)

    def pending(self) -> int:
        with self._lock:
            return len(self._buf)

    def pending_logs(self) -> int:
        with self._lock:
            return len(self._log_buf)

    # -- shipping --------------------------------------------------------

    def _post(self, signal: str, payload: dict) -> bool:
        """POST one signal batch; True on 2xx, False (counted) on any
        failure.  Never raises and never retries in place."""
        body = json.dumps(payload, allow_nan=False).encode()
        req = urllib.request.Request(
            self._urls[signal],
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                resp.read()
        except (urllib.error.URLError, OSError, ValueError):
            with self._lock:
                self._failures[signal] += 1
            return False
        with self._lock:
            self._posts[signal] += 1
        return True

    def flush(self) -> int:
        """Harvest the sources, POST everything buffered (one request
        per signal); returns the number of *spans* delivered.  An
        unreachable collector drops the batch (counted) — the buffers
        belong to the *next* telemetry."""
        for harvest, sink in (
            (self.source, self.export),
            (self.log_source, self.export_logs),
        ):
            if harvest is not None:
                try:
                    sink(harvest())
                except Exception:
                    pass  # harvesting must never kill the flush loop
        with self._lock:
            span_batch = list(self._buf)
            self._buf.clear()
            log_batch = list(self._log_buf)
            self._log_buf.clear()
        delivered = 0
        if span_batch:
            if self._post("traces", encode_batch(span_batch, self.service_name)):
                with self._lock:
                    self.spans_exported += len(span_batch)
                delivered = len(span_batch)
            else:
                with self._lock:
                    self.spans_dropped += len(span_batch)
        if log_batch:
            if self._post("logs", encode_log_batch(log_batch, self.service_name)):
                with self._lock:
                    self.logs_exported += len(log_batch)
            else:
                with self._lock:
                    self.logs_dropped += len(log_batch)
        if self.metrics_source is not None:
            try:
                export = self.metrics_source()
            except Exception:
                export = None  # snapshotting must never kill the loop
            if export:
                t_ms = 0.0
                if self.clock is not None:
                    try:
                        t_ms = float(self.clock())
                    except Exception:
                        t_ms = 0.0
                payload, points = encode_metrics_export(
                    export, self.service_name, t_ms=t_ms
                )
                if self._post("metrics", payload):
                    with self._lock:
                        self.metric_points_exported += points
        return delivered

    # -- observability ---------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "endpoint": self.endpoint,
                "pending": len(self._buf),
                "pending_logs": len(self._log_buf),
                "spans_exported": self.spans_exported,
                "spans_dropped": self.spans_dropped,
                "logs_exported": self.logs_exported,
                "logs_dropped": self.logs_dropped,
                "metric_points_exported": self.metric_points_exported,
                "posts_ok": sum(self._posts.values()),
                "post_failures": sum(self._failures.values()),
                "posts_by_signal": dict(self._posts),
                "post_failures_by_signal": dict(self._failures),
            }

    def sync_metrics(self, registry) -> None:
        """Mirror cumulative egress totals into ``otlp_*`` counters.

        Counters only go up, so the mirror applies *deltas* since the
        last sync — safe to call on every ``/metrics`` scrape.  Posts
        and failures carry a ``signal`` label so each of the three
        pipelines is observable on its own.
        """
        snap = self.stats()
        for name, help_text, key in (
            ("otlp_spans_exported_total",
             "spans delivered to the OTLP collector", "spans_exported"),
            ("otlp_spans_dropped_total",
             "spans dropped: buffer overflow or collector unreachable",
             "spans_dropped"),
            ("otlp_logs_exported_total",
             "log records delivered to the OTLP collector",
             "logs_exported"),
            ("otlp_logs_dropped_total",
             "log records dropped: buffer overflow or collector "
             "unreachable", "logs_dropped"),
            ("otlp_metric_points_exported_total",
             "metric data points delivered to the OTLP collector",
             "metric_points_exported"),
        ):
            counter = registry.counter(name, help_text)
            delta = snap[key] - self._synced.get(key, 0)
            if delta > 0:
                counter.inc(delta)
                self._synced[key] = snap[key]
        for name, help_text, field in (
            ("otlp_posts_total",
             "OTLP HTTP posts accepted by the collector",
             "posts_by_signal"),
            ("otlp_post_failures_total",
             "OTLP HTTP posts that failed (collector unreachable)",
             "post_failures_by_signal"),
        ):
            counter = registry.counter(name, help_text, labels=("signal",))
            for signal, total in snap[field].items():
                synced_key = f"{field}:{signal}"
                delta = total - self._synced.get(synced_key, 0)
                if delta > 0:
                    counter.inc(delta, signal=signal)
                    self._synced[synced_key] = total
