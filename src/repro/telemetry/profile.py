"""Continuous kernel profiler: per-op and per-depth cost attribution.

The paper's argument is quantitative — lockstep trades work expansion
for coalesced accesses (Sections 4/6) — but the aggregate
:class:`~repro.gpusim.stats.KernelStats` a launch returns cannot say
*which kernel op* paid for the trade.  This module attributes the
simulated architectural events (instruction issue and divergence
waste, global transactions and their L2 hits, stack traffic) to the
individual ops of the compiled program, and node visits to tree
depths, continuously while the service runs:

* a :class:`LaunchProfile` rides one sampled launch via
  ``TraversalLaunch(op_profile=...)``.  Executors call :meth:`~
  LaunchProfile.sync` once per traversal step and :meth:`~
  LaunchProfile.note` after each op's own work; the profile measures
  the *delta* of the shared stats counters since the previous mark, so
  attribution costs one tuple of attribute reads per op and never
  perturbs the counters themselves (stats stay bit-identical with
  profiling on or off).  Labels come from
  :func:`repro.core.compile.op_label` and are engine-agnostic: the
  compiled walker and the interp baseline produce the same series for
  the same kernel position, so hot-op rankings are comparable across
  engines.
* a :class:`KernelProfiler` (held by the
  :class:`~repro.telemetry.Telemetry` facade) decides which launches
  to sample (every ``sample_rate``-th), folds finished profiles into
  per-session aggregates, ranks "hot ops" by modeled cycles, and
  exports the top-K through the metrics registry and the
  ``/profilez`` endpoint of serve mode.

Costs between two op marks that belong to no op — stack pops at the
top of a step, the initial root push — accumulate under
:data:`OVERHEAD_LABEL`, so per-op cycles always sum to the launch
total.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.compile import op_label

#: KernelStats counters the profiler attributes per op, in vector order.
PROFILE_COUNTERS = (
    "warp_instructions",
    "divergent_instructions",
    "wasted_lane_fraction",
    "global_transactions",
    "l2_hit_transactions",
    "dram_bytes",
    "bytes_requested",
    "shared_accesses",
    "stack_ops",
)

#: label for inter-op costs (stack pops, pushes of the root, guard
#: bookkeeping) so attributed cycles reconcile with launch totals.
OVERHEAD_LABEL = "(step-overhead)"

_N = len(PROFILE_COUNTERS)


def depth_map(tree) -> np.ndarray:
    """Per-node depth for a :class:`~repro.trees.linearize.LinearTree`.

    Computed once by a vectorized BFS over the child arrays and cached
    on the tree instance (node ids are stable for the tree's lifetime,
    and every session keeps one tree).
    """
    cached = getattr(tree, "_profile_depth_of", None)
    if cached is not None:
        return cached
    n = tree.n_nodes
    depth_of = np.zeros(n, dtype=np.int64)
    child_arrays = [tree.children[name] for name in tree.child_names]
    frontier = np.array([tree.root], dtype=np.int64)
    d = 0
    while frontier.size and d <= n:
        d += 1
        nxt = [arr[frontier] for arr in child_arrays]
        frontier = np.concatenate([c[c >= 0] for c in nxt]) if nxt else (
            np.empty(0, dtype=np.int64)
        )
        depth_of[frontier] = d
    tree._profile_depth_of = depth_of
    return depth_of


class LaunchProfile:
    """Cost-attribution collector for one sampled kernel launch.

    Works by cursor deltas: every :meth:`note`/:meth:`sync` reads the
    launch's shared counters, charges the change since the previous
    mark to a label, and moves the cursor.  The executors therefore
    only need one call per op — no per-op counter plumbing.
    """

    __slots__ = (
        "_cursor",
        "ops",
        "op_visits",
        "_labels",
        "depth_of",
        "n_depths",
        "depth_visits",
        "depth_lane_visits",
    )

    def __init__(self, depth_of: Optional[np.ndarray] = None) -> None:
        self._cursor = (0.0,) * _N
        #: label -> accumulated counter vector (PROFILE_COUNTERS order).
        self.ops: Dict[str, List[float]] = {}
        #: label -> number of times the op executed (was noted).
        self.op_visits: Dict[str, int] = {}
        self._labels: Dict[int, str] = {}
        self.depth_of = depth_of
        if depth_of is not None:
            self.n_depths = int(depth_of.max()) + 1 if depth_of.size else 1
            self.depth_visits = np.zeros(self.n_depths, dtype=np.int64)
            self.depth_lane_visits = np.zeros(self.n_depths, dtype=np.float64)
        else:
            self.n_depths = 0
            self.depth_visits = None
            self.depth_lane_visits = None

    def sync(self, stats) -> None:
        """Charge everything since the last mark to step overhead.

        Executors call this once per step, right after the stack pop,
        so pop traffic and loop bookkeeping never pollute the first
        op's attribution.
        """
        self._attribute(OVERHEAD_LABEL, stats)

    def note(self, op, stats) -> None:
        """Charge everything since the last mark to ``op``.

        ``op`` is a compiled op record or an interp AST statement; the
        engine-agnostic label is resolved once per object and cached by
        identity (op objects live on the memoized program/kernel, the
        profile lives for one launch).
        """
        label = self._labels.get(id(op))
        if label is None:
            label = self._labels[id(op)] = op_label(op)
        self._attribute(label, stats)
        self.op_visits[label] = self.op_visits.get(label, 0) + 1

    def _attribute(self, label: str, stats) -> None:
        cur = tuple(float(getattr(stats, f)) for f in PROFILE_COUNTERS)
        prev = self._cursor
        self._cursor = cur
        vec = self.ops.get(label)
        if vec is None:
            vec = self.ops[label] = [0.0] * _N
        for i in range(_N):
            vec[i] += cur[i] - prev[i]

    def note_depth(self, node, mask, lane_counts=None) -> None:
        """Bin this step's node visits by tree depth.

        ``node`` holds per-row node ids, ``mask`` selects the rows that
        visited a real node this step.  ``lane_counts`` (lockstep) adds
        per-row live-lane counts so warp-level visits and per-lane
        useful visits are tracked separately — their ratio per depth is
        the work-expansion profile.  Per-thread executors omit it (one
        row = one visit).
        """
        if self.depth_of is None:
            return
        sel = node[mask]
        if sel.size == 0:
            return
        d = self.depth_of[sel]
        binc = np.bincount(d, minlength=self.n_depths)
        self.depth_visits += binc
        if lane_counts is None:
            self.depth_lane_visits += binc
        else:
            self.depth_lane_visits += np.bincount(
                d,
                weights=np.asarray(lane_counts, dtype=np.float64)[mask],
                minlength=self.n_depths,
            )


def op_cycles(vec: List[float], device=None) -> float:
    """Modeled serial cycles for one op's counter vector.

    Mirrors :class:`~repro.gpusim.cost.CostModel`'s two roofs without
    the overlap term (per-op overlap is not attributable): per-SM issue
    cycles plus memory-system service cycles.  With no device the
    generic weights still rank deterministically — but the dispatcher
    always passes the configured device, so rankings use the same
    knobs as the launch timing.
    """
    wi = vec[0]
    gt = vec[3]
    l2 = vec[4]
    shared = vec[7]
    if device is not None:
        compute = (
            wi * device.issue_cycles + shared * device.shared_access_cycles
        ) / device.num_sms
        memory = (gt - l2) * device.dram_cycles_per_transaction + (
            l2 * device.dram_cycles_per_transaction * device.l2_hit_cost_fraction
        )
    else:
        compute = wi + 2.0 * shared
        memory = (gt - l2) * 32.0 + l2 * 8.0
    return float(compute + memory)


class _SessionProfile:
    """Per-session aggregate of folded launch profiles."""

    __slots__ = ("ops", "op_visits", "depth_visits", "depth_lane_visits",
                 "launches", "device")

    def __init__(self) -> None:
        self.ops: Dict[str, List[float]] = {}
        self.op_visits: Dict[str, int] = {}
        self.depth_visits: List[float] = []
        self.depth_lane_visits: List[float] = []
        self.launches = 0
        self.device = None

    def fold(self, profile: LaunchProfile, device=None) -> None:
        self.launches += 1
        if device is not None:
            self.device = device
        for label, vec in profile.ops.items():
            agg = self.ops.get(label)
            if agg is None:
                agg = self.ops[label] = [0.0] * _N
            for i in range(_N):
                agg[i] += vec[i]
        for label, n in profile.op_visits.items():
            self.op_visits[label] = self.op_visits.get(label, 0) + n
        if profile.depth_visits is not None:
            if len(self.depth_visits) < profile.n_depths:
                grow = profile.n_depths - len(self.depth_visits)
                self.depth_visits.extend([0.0] * grow)
                self.depth_lane_visits.extend([0.0] * grow)
            for i in range(profile.n_depths):
                self.depth_visits[i] += float(profile.depth_visits[i])
                self.depth_lane_visits[i] += float(profile.depth_lane_visits[i])


class KernelProfiler:
    """Continuous profiler: samples launches, aggregates, ranks, exports.

    ``sample_rate=N`` profiles every N-th GPU launch (the first launch
    is always sampled, so short runs still produce a profile);
    ``top_k`` bounds both the gauge export and the default
    ``/profilez`` ranking.  Thread safety is the caller's job (serve
    mode holds the service lock around both dispatch and snapshots).
    """

    def __init__(self, sample_rate: int = 1, top_k: int = 10, registry=None):
        if sample_rate < 1:
            raise ValueError(f"sample_rate must be >= 1, got {sample_rate}")
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        self.sample_rate = int(sample_rate)
        self.top_k = int(top_k)
        self.registry = registry
        self.launches_seen = 0
        self.launches_sampled = 0
        self._sessions: Dict[str, _SessionProfile] = {}
        if registry is not None:
            self._g_cycles = registry.gauge(
                "profile_hot_op_cycles",
                "modeled cycles attributed to the hottest kernel ops",
                labels=("session", "op"),
            )
            self._g_share = registry.gauge(
                "profile_hot_op_share",
                "fraction of the session's attributed cycles per hot op",
                labels=("session", "op"),
            )
            self._c_sampled = registry.counter(
                "profile_launches_sampled_total",
                "kernel launches profiled",
                labels=("session",),
            )
        else:
            self._g_cycles = None
            self._g_share = None
            self._c_sampled = None

    # -- sampling ---------------------------------------------------------

    def should_sample(self) -> bool:
        """Advance the launch counter; True for sampled launches."""
        self.launches_seen += 1
        return (self.launches_seen - 1) % self.sample_rate == 0

    def begin(self, tree=None) -> LaunchProfile:
        """A fresh collector for one launch (with depth attribution
        when the launch's tree is provided)."""
        return LaunchProfile(
            depth_of=depth_map(tree) if tree is not None else None
        )

    # -- aggregation ------------------------------------------------------

    def fold(self, session: str, profile: LaunchProfile, device=None) -> None:
        """Fold a finished launch profile into the session aggregate
        and refresh the top-K gauges."""
        self.launches_sampled += 1
        agg = self._sessions.get(session)
        if agg is None:
            agg = self._sessions[session] = _SessionProfile()
        agg.fold(profile, device=device)
        if self._c_sampled is not None:
            self._c_sampled.inc(session=session)
        if self._g_cycles is not None:
            for entry in self.hot_ops(session):
                self._g_cycles.set(
                    entry["cycles"], session=session, op=entry["op"]
                )
                self._g_share.set(
                    entry["share"], session=session, op=entry["op"]
                )

    def sessions(self) -> List[str]:
        return sorted(self._sessions)

    def hot_ops(self, session: str, k: Optional[int] = None) -> List[dict]:
        """Ranked per-op attribution for one session, hottest first.

        Each entry is JSON-safe: the op label, its modeled cycles and
        share of the session total, visit count, and every attributed
        counter by name.  Ties rank by label for determinism.
        """
        agg = self._sessions.get(session)
        if agg is None:
            return []
        k = self.top_k if k is None else k
        scored = [
            (op_cycles(vec, agg.device), label, vec)
            for label, vec in agg.ops.items()
        ]
        total = sum(c for c, _, _ in scored)
        scored.sort(key=lambda e: (-e[0], e[1]))
        out = []
        for cycles, label, vec in scored[:k]:
            entry = {
                "op": label,
                "cycles": cycles,
                "share": cycles / total if total > 0 else 0.0,
                "visits": agg.op_visits.get(label, 0),
            }
            entry.update(
                {name: vec[i] for i, name in enumerate(PROFILE_COUNTERS)}
            )
            out.append(entry)
        return out

    def depth_profile(self, session: str) -> dict:
        """Per-depth visit histogram for one session (JSON-safe)."""
        agg = self._sessions.get(session)
        if agg is None or not agg.depth_visits:
            return {"visits": [], "lane_visits": []}
        return {
            "visits": list(agg.depth_visits),
            "lane_visits": list(agg.depth_lane_visits),
        }

    def snapshot(self) -> dict:
        """Full JSON-safe export (the ``/profilez`` payload)."""
        return {
            "sample_rate": self.sample_rate,
            "top_k": self.top_k,
            "launches_seen": self.launches_seen,
            "launches_sampled": self.launches_sampled,
            "sessions": {
                name: {
                    "launches": agg.launches,
                    "ops": self.hot_ops(name),
                    "depths": self.depth_profile(name),
                }
                for name, agg in sorted(self._sessions.items())
            },
        }
