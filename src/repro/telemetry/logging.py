"""Structured, levelled event log on the service's logical clock.

The third telemetry pillar beside metrics and spans: every load-bearing
decision in the stack (admission shed, retry, breaker transition,
plan-cache invalidation, chaos draw, supervisor restart, scatter retry,
drain verdict) records one JSON-safe dict — a *log record* — into a
bounded drop-oldest ring.  Records join the other two pillars on the
trace id: when a :class:`~repro.telemetry.tracing.TraceContext` is
active on the attached tracer, its trace/span ids are stamped onto the
record automatically, so a ticket's logs, spans, and latency exemplars
all share one id.

Design constraints, matching the rest of :mod:`repro.telemetry`:

1. **Zero cost when off.**  An :class:`EventLog` only exists when
   telemetry is enabled; every call site guards with one attribute
   read (``telemetry.log is not None``) and allocates nothing on the
   off path.
2. **Determinism.**  Timestamps are modeled milliseconds, never wall
   time; fields are stored in sorted key order; a monotone ``seq``
   disambiguates same-timestamp records.  Two same-seed runs produce
   bit-identical record streams.
3. **Bounded.**  The ring drops oldest at capacity and counts drops
   (``log_records_dropped_total`` via the ``on_drop`` hook); the
   optional outbox — finished records awaiting shipment over a worker
   reply pipe, exactly like the tracer's span outbox — is bounded the
   same way.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

#: severity order, least to most severe.  A level *filter* is a floor:
#: ``level="warn"`` selects warn and error records.
LEVELS = ("debug", "info", "warn", "error")
_LEVEL_RANK = {name: rank for rank, name in enumerate(LEVELS)}

DEFAULT_LOG_CAPACITY = 10_000
DEFAULT_OUTBOX_CAPACITY = 4096


def level_rank(level: str) -> int:
    """Numeric severity of ``level``; raises ``ValueError`` on junk."""
    try:
        return _LEVEL_RANK[level]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {LEVELS}"
        ) from None


class EventLog:
    """Bounded ring of structured log records, trace-correlated.

    Records are plain dicts (JSON-safe by construction)::

        {"seq": 17, "t_ms": 42.5, "level": "warn", "event": "retry",
         "trace_id": "...", "span_id": "...", "fields": {...}}

    ``trace_id``/``span_id`` come from the attached tracer's active
    :class:`~repro.telemetry.tracing.TraceContext` unless the call
    passes them explicitly; with neither they are ``None`` — a record
    outside any trace.
    """

    __slots__ = (
        "capacity", "tracer", "_ring", "recorded", "dropped", "on_drop",
        "_seq", "_outbox", "outbox_capacity", "outbox_dropped",
    )

    def __init__(self, capacity: int = DEFAULT_LOG_CAPACITY, tracer=None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        #: optional Tracer whose active context stamps trace/span ids.
        self.tracer = tracer
        self._ring: Deque[dict] = deque()
        #: total records ever logged (ring evictions included).
        self.recorded = 0
        #: records evicted from the ring to make room.
        self.dropped = 0
        #: optional zero-arg callback fired per eviction — the Telemetry
        #: facade points it at a ``log_records_dropped_total`` counter.
        self.on_drop: Optional[Callable[[], None]] = None
        self._seq = 0
        self._outbox: Optional[Deque[dict]] = None
        self.outbox_capacity = 0
        self.outbox_dropped = 0

    def __len__(self) -> int:
        return len(self._ring)

    # -- recording -------------------------------------------------------

    def log(
        self,
        level: str,
        event: str,
        t_ms: float,
        trace_id: Optional[str] = None,
        span_id: Optional[str] = None,
        **fields,
    ) -> dict:
        """Record one event; returns the record dict."""
        level_rank(level)  # validate eagerly: a typo is a bug, not a record
        if trace_id is None and self.tracer is not None:
            ctx = self.tracer.context
            if ctx is not None:
                trace_id = ctx.trace_id
                if span_id is None:
                    span_id = ctx.parent_span_id
        rec = {
            "seq": self._seq,
            "t_ms": float(t_ms),
            "level": level,
            "event": str(event),
            "trace_id": trace_id,
            "span_id": span_id,
            "fields": {k: fields[k] for k in sorted(fields)},
        }
        self._seq += 1
        if len(self._ring) >= self.capacity:
            self._ring.popleft()
            self.dropped += 1
            if self.on_drop is not None:
                self.on_drop()
        self._ring.append(rec)
        self.recorded += 1
        self._ship(rec)
        return rec

    def debug(self, event: str, t_ms: float, **fields) -> dict:
        return self.log("debug", event, t_ms, **fields)

    def info(self, event: str, t_ms: float, **fields) -> dict:
        return self.log("info", event, t_ms, **fields)

    def warn(self, event: str, t_ms: float, **fields) -> dict:
        return self.log("warn", event, t_ms, **fields)

    def error(self, event: str, t_ms: float, **fields) -> dict:
        return self.log("error", event, t_ms, **fields)

    # -- outbox (cross-process shipment) --------------------------------

    def enable_outbox(self, capacity: int = DEFAULT_OUTBOX_CAPACITY) -> None:
        """Start collecting records for shipment over a reply pipe."""
        if self._outbox is None:
            self._outbox = deque()
        self.outbox_capacity = int(capacity)

    @property
    def outbox_enabled(self) -> bool:
        return self._outbox is not None

    def drain_outbox(self) -> List[dict]:
        """Return and clear every record awaiting shipment."""
        if not self._outbox:
            return []
        out = list(self._outbox)
        self._outbox.clear()
        return out

    def _ship(self, rec: dict) -> None:
        box = self._outbox
        if box is None:
            return
        if len(box) >= self.outbox_capacity:
            box.popleft()
            self.outbox_dropped += 1
        box.append(rec)

    # -- reading ---------------------------------------------------------

    def records(
        self,
        level: Optional[str] = None,
        trace_id: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[dict]:
        """Filtered view of the ring, oldest first.

        ``level`` is a severity floor; ``trace_id`` an exact match;
        ``limit`` keeps the *newest* N matches (the interesting end).
        """
        floor = level_rank(level) if level is not None else 0
        out = [
            rec for rec in self._ring
            if _LEVEL_RANK[rec["level"]] >= floor
            and (trace_id is None or rec["trace_id"] == trace_id)
        ]
        if limit is not None and limit >= 0:
            out = out[-limit:] if limit else []
        return out

    def to_dict(self) -> dict:
        return {
            "records": list(self._ring),
            "recorded": self.recorded,
            "dropped": self.dropped,
            "outbox_dropped": self.outbox_dropped,
        }
