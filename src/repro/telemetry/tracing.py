"""Structured span tracing on the service's logical clock.

Spans are intervals of modeled time (milliseconds on the service
clock, the same clock :class:`repro.service.DynamicBatcher` stamps
waits with).  A span belongs to a *track* (``"query"``, ``"batch"``,
``"launch"``, ...), carries a correlation id (the query's trace id or
the batch id), free-form args, and a list of instant *events* inside
it.  The tracer keeps finished spans in submission order and exports
them as Chrome ``trace_event`` JSON for chrome://tracing / Perfetto.

Why async events ("b"/"e"/"n") instead of complete ("X") events: the
service's modeled execution time does not advance the arrival clock,
so batch and query spans overlap freely on one timeline; duration
events would force bogus nesting, async events render each id as its
own row.  Timestamps are microseconds (``ts = t_ms * 1000``).

The tracer is only ever constructed when tracing is enabled, so the
off path carries no span objects at all.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: process/thread ids used in the Chrome export; one synthetic "process"
#: per track keeps the timeline grouped by span kind.
_TRACK_PIDS = {"query": 1, "batch": 2, "launch": 3, "service": 4}
_DEFAULT_PID = 9


class Span:
    """One interval on the logical clock, with instant events inside."""

    __slots__ = (
        "name", "track", "span_id", "t_start", "t_end", "args",
        "events", "status",
    )

    def __init__(
        self,
        name: str,
        track: str,
        span_id: str,
        t_start: float,
        args: Optional[dict] = None,
    ) -> None:
        self.name = name
        self.track = track
        self.span_id = span_id
        self.t_start = float(t_start)
        self.t_end: Optional[float] = None
        self.args: dict = dict(args) if args else {}
        self.events: List[dict] = []
        self.status = "ok"

    @property
    def open(self) -> bool:
        return self.t_end is None

    def event(self, name: str, t_ms: float, **args) -> None:
        """Record an instant event inside this span."""
        self.events.append({"name": name, "t_ms": float(t_ms), "args": args})

    def finish(self, t_ms: float, status: str = "ok", **args) -> None:
        self.t_end = float(t_ms)
        self.status = status
        if args:
            self.args.update(args)

    def duration_ms(self) -> Optional[float]:
        if self.t_end is None:
            return None
        return self.t_end - self.t_start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "track": self.track,
            "span_id": self.span_id,
            "t_start_ms": self.t_start,
            "t_end_ms": self.t_end,
            "status": self.status,
            "args": dict(self.args),
            "events": [dict(e) for e in self.events],
        }


class Tracer:
    """Creates spans, retains finished ones, exports Chrome JSON."""

    def __init__(self, max_spans: int = 100_000) -> None:
        self.max_spans = int(max_spans)
        self._spans: List[Span] = []
        self._open: Dict[str, Span] = {}
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._spans)

    def begin(
        self,
        name: str,
        track: str,
        span_id: str,
        t_ms: float,
        **args,
    ) -> Span:
        """Open a span.  ``span_id`` must be unique among open spans."""
        span = Span(name, track, span_id, t_ms, args)
        if len(self._spans) >= self.max_spans:
            self.dropped += 1
            return span  # still usable by the caller, just not retained
        self._spans.append(span)
        self._open[span_id] = span
        return span

    def end(self, span_id: str, t_ms: float, status: str = "ok", **args) -> Optional[Span]:
        span = self._open.pop(span_id, None)
        if span is not None:
            span.finish(t_ms, status, **args)
        return span

    def get_open(self, span_id: str) -> Optional[Span]:
        return self._open.get(span_id)

    def complete(
        self,
        name: str,
        track: str,
        span_id: str,
        t_start: float,
        t_end: float,
        status: str = "ok",
        **args,
    ) -> Span:
        """Record an already-finished span in one call."""
        span = self.begin(name, track, span_id, t_start, **args)
        span.finish(t_end, status)
        self._open.pop(span_id, None)
        return span

    def instant(self, name: str, track: str, t_ms: float, **args) -> None:
        """A standalone instant marker (renders as an "i" event)."""
        span = Span(name, track, f"instant:{name}:{len(self._spans)}", t_ms, args)
        span.finish(t_ms)
        if len(self._spans) >= self.max_spans:
            self.dropped += 1
            return
        self._spans.append(span)

    def spans(self, track: Optional[str] = None) -> List[Span]:
        if track is None:
            return list(self._spans)
        return [s for s in self._spans if s.track == track]

    # -- export ----------------------------------------------------------

    def chrome_trace(self, close_open_at: Optional[float] = None) -> dict:
        """Export as a Chrome ``trace_event`` JSON object.

        ``close_open_at``: logical time used to close any still-open
        spans in the export (the spans themselves stay open); when
        None, open spans are emitted begin-only, which the viewers
        render as running to the end of the timeline.
        """
        events: List[dict] = []
        # Name the synthetic processes so the viewer labels the rows.
        for track, pid in sorted(_TRACK_PIDS.items(), key=lambda kv: kv[1]):
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": track},
                }
            )
        for span in self._spans:
            pid = _TRACK_PIDS.get(span.track, _DEFAULT_PID)
            is_instant = span.span_id.startswith("instant:")
            if is_instant:
                events.append(
                    {
                        "name": span.name,
                        "cat": span.track,
                        "ph": "i",
                        "s": "p",
                        "ts": span.t_start * 1000.0,
                        "pid": pid,
                        "tid": 0,
                        "args": dict(span.args),
                    }
                )
                continue
            base = {
                "name": span.name,
                "cat": span.track,
                "id": span.span_id,
                "pid": pid,
                "tid": 0,
            }
            events.append(
                {**base, "ph": "b", "ts": span.t_start * 1000.0, "args": dict(span.args)}
            )
            for ev in span.events:
                events.append(
                    {
                        **base,
                        "ph": "n",
                        "name": ev["name"],
                        "ts": ev["t_ms"] * 1000.0,
                        "args": dict(ev["args"]),
                    }
                )
            t_end = span.t_end
            if t_end is None and close_open_at is not None:
                t_end = max(float(close_open_at), span.t_start)
            if t_end is not None:
                events.append(
                    {
                        **base,
                        "ph": "e",
                        "ts": t_end * 1000.0,
                        "args": {"status": span.status},
                    }
                )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_dict(self) -> dict:
        return {
            "spans": [s.to_dict() for s in self._spans],
            "dropped": self.dropped,
        }
