"""Structured span tracing on the service's logical clock.

Spans are intervals of modeled time (milliseconds on the service
clock, the same clock :class:`repro.service.DynamicBatcher` stamps
waits with).  A span belongs to a *track* (``"query"``, ``"batch"``,
``"launch"``, ...), carries a correlation id (the query's trace id or
the batch id), free-form args, and a list of instant *events* inside
it.  The tracer keeps the most recent finished spans in a bounded ring
(oldest evicted first, evictions counted) and exports them as Chrome
``trace_event`` JSON for chrome://tracing / Perfetto.

Why async events ("b"/"e"/"n") instead of complete ("X") events: the
service's modeled execution time does not advance the arrival clock,
so batch and query spans overlap freely on one timeline; duration
events would force bogus nesting, async events render each id as its
own row.  Timestamps are microseconds (``ts = t_ms * 1000``).

Distributed tracing (the fleet layer) rides on three additions:

* every span carries a ``trace_id`` and optional ``parent_id``.  With
  no cross-process context the trace id is derived deterministically
  from ``(trace_seed, span_id)`` — same seed, same ids, every run;
* a :class:`TraceContext` (trace id + parent span id + logical-clock
  offset) can be *activated* on the tracer: while active, new spans
  join that trace and parent under the context's span — this is how a
  worker's ``submit -> batch -> launch`` spans parent under the fleet
  router's ticket span;
* an optional bounded *outbox* collects finished spans as dicts so a
  worker can piggyback them onto wire replies (and a periodic drain
  exchange) back to the router's trace assembler.

The tracer is only ever constructed when tracing is enabled, so the
off path carries no span objects at all.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

#: process/thread ids used in the Chrome export; one synthetic "process"
#: per track keeps the timeline grouped by span kind.
_TRACK_PIDS = {"query": 1, "batch": 2, "launch": 3, "service": 4}
_DEFAULT_PID = 9

#: default outbox ring capacity (finished spans awaiting shipment).
DEFAULT_OUTBOX_CAPACITY = 4096


def derive_trace_id(seed, key) -> str:
    """Deterministic 32-hex trace id from a seed and a stable key.

    SHA-1 over ``"{seed}:{key}"`` — the same derivation family as
    :func:`repro.fleet.worker.derive_seed`, so trace identity is a pure
    function of (fleet seed, ticket id) and two same-seed runs produce
    bit-identical span trees.
    """
    return hashlib.sha1(f"{seed}:{key}".encode()).hexdigest()[:32]


@dataclass(frozen=True)
class TraceContext:
    """Cross-process trace propagation: what the router stamps on a
    request frame and a worker's tracer adopts for the frame's duration.

    ``trace_id`` — the 32-hex trace every span created under this
    context joins; ``parent_span_id`` — the span id new top-level spans
    parent under (the router's ticket span); ``clock_offset_ms`` — the
    router's logical clock at stamp time, carried so a reassembled
    timeline can place worker spans on the fleet clock (workers already
    share it via the frame's ``now``, so this is informational).
    """

    trace_id: str
    parent_span_id: str
    clock_offset_ms: float = 0.0

    @classmethod
    def derive(cls, seed, key: str, parent_span_id: str,
               clock_offset_ms: float = 0.0) -> "TraceContext":
        return cls(
            trace_id=derive_trace_id(seed, key),
            parent_span_id=str(parent_span_id),
            clock_offset_ms=float(clock_offset_ms),
        )

    def to_wire(self) -> dict:
        """Plain-dict form for a pipe frame (primitives only)."""
        return {
            "trace_id": self.trace_id,
            "parent_span_id": self.parent_span_id,
            "clock_offset_ms": self.clock_offset_ms,
        }

    @classmethod
    def from_wire(cls, payload: Optional[dict]) -> Optional["TraceContext"]:
        if not payload:
            return None
        return cls(
            trace_id=str(payload["trace_id"]),
            parent_span_id=str(payload["parent_span_id"]),
            clock_offset_ms=float(payload.get("clock_offset_ms", 0.0)),
        )


class Span:
    """One interval on the logical clock, with instant events inside."""

    __slots__ = (
        "name", "track", "span_id", "t_start", "t_end", "args",
        "events", "status", "trace_id", "parent_id",
    )

    def __init__(
        self,
        name: str,
        track: str,
        span_id: str,
        t_start: float,
        args: Optional[dict] = None,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
    ) -> None:
        self.name = name
        self.track = track
        self.span_id = span_id
        self.t_start = float(t_start)
        self.t_end: Optional[float] = None
        self.args: dict = dict(args) if args else {}
        self.events: List[dict] = []
        self.status = "ok"
        self.trace_id = trace_id
        self.parent_id = parent_id

    @property
    def open(self) -> bool:
        return self.t_end is None

    def event(self, name: str, t_ms: float, **args) -> None:
        """Record an instant event inside this span."""
        self.events.append({"name": name, "t_ms": float(t_ms), "args": args})

    def finish(self, t_ms: float, status: str = "ok", **args) -> None:
        self.t_end = float(t_ms)
        self.status = status
        if args:
            self.args.update(args)

    def duration_ms(self) -> Optional[float]:
        if self.t_end is None:
            return None
        return self.t_end - self.t_start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "track": self.track,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "t_start_ms": self.t_start,
            "t_end_ms": self.t_end,
            "status": self.status,
            "args": dict(self.args),
            "events": [dict(e) for e in self.events],
        }


class Tracer:
    """Creates spans, retains the most recent finished ones in a ring,
    exports Chrome JSON, and optionally ships finished spans via an
    outbox for cross-process assembly."""

    def __init__(self, max_spans: int = 100_000, trace_seed: int = 0) -> None:
        self.max_spans = int(max_spans)
        self.trace_seed = trace_seed
        self._spans: Deque[Span] = deque()
        self._open: Dict[str, Span] = {}
        #: spans evicted from the ring to make room (satellite: the
        #: finished-span list must not grow for the life of the process).
        self.dropped = 0
        #: optional zero-arg callback fired per eviction — the Telemetry
        #: facade points it at a ``tracer_spans_dropped_total`` counter.
        self.on_drop: Optional[Callable[[], None]] = None
        #: active cross-process context (None outside a stamped frame).
        self._ctx: Optional[TraceContext] = None
        self._outbox: Optional[Deque[dict]] = None
        self.outbox_capacity = 0
        self.outbox_dropped = 0

    def __len__(self) -> int:
        return len(self._spans)

    # -- context propagation --------------------------------------------

    @property
    def context(self) -> Optional[TraceContext]:
        return self._ctx

    def activate(self, ctx: Optional[TraceContext]) -> Optional[TraceContext]:
        """Install ``ctx`` as the active trace context; returns the
        previous one so callers can restore it in a finally block."""
        prev = self._ctx
        self._ctx = ctx
        return prev

    def local_trace_id(self, key: str) -> str:
        """The trace id a span gets with no context active: derived
        from (trace_seed, span id), so it is stable across runs."""
        return derive_trace_id(self.trace_seed, key)

    # -- outbox (cross-process shipment) --------------------------------

    def enable_outbox(self, capacity: int = DEFAULT_OUTBOX_CAPACITY) -> None:
        """Start collecting finished spans (as dicts) for shipment."""
        if self._outbox is None:
            self._outbox = deque()
        self.outbox_capacity = int(capacity)

    @property
    def outbox_enabled(self) -> bool:
        return self._outbox is not None

    def drain_outbox(self) -> List[dict]:
        """Return and clear every finished span awaiting shipment."""
        if not self._outbox:
            return []
        out = list(self._outbox)
        self._outbox.clear()
        return out

    def _ship(self, span: Span) -> None:
        box = self._outbox
        if box is None:
            return
        if len(box) >= self.outbox_capacity:
            box.popleft()
            self.outbox_dropped += 1
        box.append(span.to_dict())

    # -- span lifecycle --------------------------------------------------

    def _retain(self, span: Span) -> None:
        """Ring-buffer retention: evict the oldest when at capacity."""
        if len(self._spans) >= self.max_spans:
            evicted = self._spans.popleft()
            self._open.pop(evicted.span_id, None)
            self.dropped += 1
            if self.on_drop is not None:
                self.on_drop()
        self._spans.append(span)

    def _resolve_identity(
        self, span_id: str, parent_id: Optional[str], trace_id: Optional[str]
    ) -> tuple:
        """(trace_id, parent_id) for a new span: explicit > context >
        inherited-from-open-parent > locally derived."""
        if trace_id is not None:
            return trace_id, parent_id
        ctx = self._ctx
        if ctx is not None:
            return ctx.trace_id, (
                parent_id if parent_id is not None else ctx.parent_span_id
            )
        if parent_id is not None:
            parent = self._open.get(parent_id)
            if parent is not None and parent.trace_id is not None:
                return parent.trace_id, parent_id
        return self.local_trace_id(span_id), parent_id

    def begin(
        self,
        name: str,
        track: str,
        span_id: str,
        t_ms: float,
        parent_id: Optional[str] = None,
        trace_id: Optional[str] = None,
        **args,
    ) -> Span:
        """Open a span.  ``span_id`` must be unique among open spans."""
        trace_id, parent_id = self._resolve_identity(span_id, parent_id, trace_id)
        span = Span(name, track, span_id, t_ms, args,
                    trace_id=trace_id, parent_id=parent_id)
        self._retain(span)
        self._open[span_id] = span
        return span

    def end(self, span_id: str, t_ms: float, status: str = "ok", **args) -> Optional[Span]:
        span = self._open.pop(span_id, None)
        if span is not None:
            span.finish(t_ms, status, **args)
            self._ship(span)
        return span

    def get_open(self, span_id: str) -> Optional[Span]:
        return self._open.get(span_id)

    def complete(
        self,
        name: str,
        track: str,
        span_id: str,
        t_start: float,
        t_end: float,
        status: str = "ok",
        parent_id: Optional[str] = None,
        trace_id: Optional[str] = None,
        **args,
    ) -> Span:
        """Record an already-finished span in one call."""
        span = self.begin(name, track, span_id, t_start,
                          parent_id=parent_id, trace_id=trace_id, **args)
        span.finish(t_end, status)
        self._open.pop(span_id, None)
        self._ship(span)
        return span

    def instant(self, name: str, track: str, t_ms: float, **args) -> None:
        """A standalone instant marker (renders as an "i" event)."""
        span_id = f"instant:{name}:{len(self._spans) + self.dropped}"
        span = Span(name, track, span_id, t_ms, args,
                    trace_id=self.local_trace_id(span_id))
        span.finish(t_ms)
        self._retain(span)

    def spans(self, track: Optional[str] = None) -> List[Span]:
        if track is None:
            return list(self._spans)
        return [s for s in self._spans if s.track == track]

    # -- export ----------------------------------------------------------

    def chrome_trace(self, close_open_at: Optional[float] = None) -> dict:
        """Export as a Chrome ``trace_event`` JSON object.

        ``close_open_at``: logical time used to close any still-open
        spans in the export (the spans themselves stay open); when
        None, open spans are emitted begin-only, which the viewers
        render as running to the end of the timeline.
        """
        events: List[dict] = []
        # Name the synthetic processes so the viewer labels the rows.
        for track, pid in sorted(_TRACK_PIDS.items(), key=lambda kv: kv[1]):
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": track},
                }
            )
        for span in self._spans:
            pid = _TRACK_PIDS.get(span.track, _DEFAULT_PID)
            is_instant = span.span_id.startswith("instant:")
            if is_instant:
                events.append(
                    {
                        "name": span.name,
                        "cat": span.track,
                        "ph": "i",
                        "s": "p",
                        "ts": span.t_start * 1000.0,
                        "pid": pid,
                        "tid": 0,
                        "args": dict(span.args),
                    }
                )
                continue
            base = {
                "name": span.name,
                "cat": span.track,
                "id": span.span_id,
                "pid": pid,
                "tid": 0,
            }
            events.append(
                {**base, "ph": "b", "ts": span.t_start * 1000.0, "args": dict(span.args)}
            )
            for ev in span.events:
                events.append(
                    {
                        **base,
                        "ph": "n",
                        "name": ev["name"],
                        "ts": ev["t_ms"] * 1000.0,
                        "args": dict(ev["args"]),
                    }
                )
            t_end = span.t_end
            if t_end is None and close_open_at is not None:
                t_end = max(float(close_open_at), span.t_start)
            if t_end is not None:
                events.append(
                    {
                        **base,
                        "ph": "e",
                        "ts": t_end * 1000.0,
                        "args": {"status": span.status},
                    }
                )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_dict(self) -> dict:
        return {
            "spans": [s.to_dict() for s in self._spans],
            "dropped": self.dropped,
        }
