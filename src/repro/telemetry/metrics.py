"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry replaces ad-hoc counter attributes scattered across the
service with named, typed, labelled instruments that export two ways:

* :meth:`MetricsRegistry.expose_text` — Prometheus text exposition
  (``# HELP`` / ``# TYPE`` preamble, one line per labelled series),
  suitable for a scrape endpoint or a file sink;
* :meth:`MetricsRegistry.to_dict` — a JSON-round-trippable dict the
  stats snapshot embeds and the CLI writes with ``--metrics-out``.

Design constraints, in order:

1. **Zero cost when off.**  The registry only exists when telemetry is
   enabled; callers guard every update with one ``enabled`` check, so
   the disabled path never allocates a label tuple.
2. **JSON safety.**  Histogram bucket bounds are *finite* floats; the
   implicit overflow bucket is a separate count, and the text
   exposition renders it as ``le="+Inf"``.  No value in any export is
   ``NaN``/``inf`` — the same invariant :mod:`repro.service.stats`
   enforces.
3. **Determinism.**  Series iterate in sorted label order, so two runs
   over the same trace produce byte-identical expositions.

All instruments are cumulative over the registry's lifetime; the
service's logical clock never appears here (timestamps belong to the
tracer, not the metrics).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: default latency-ish buckets, in modeled milliseconds.
DEFAULT_MS_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
)

#: default batch-size buckets (powers of two up to the common caps).
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


def _label_key(label_names: Tuple[str, ...], labels: Mapping[str, str]) -> LabelKey:
    if set(labels) != set(label_names):
        raise ValueError(
            f"expected labels {label_names}, got {tuple(sorted(labels))}"
        )
    return tuple((k, str(labels[k])) for k in label_names)


def _fmt_value(v: float) -> str:
    """Prometheus-style number: integers render without the dot."""
    f = float(v)
    return str(int(f)) if f.is_integer() else repr(f)


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double-quote, and line-feed must be escaped inside the
    double-quoted label value (in that order — escaping the backslash
    first keeps the other two escapes from being re-escaped).
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def escape_help_text(text: str) -> str:
    """Escape ``# HELP`` text: backslash and line-feed only (the
    exposition format leaves double-quotes alone outside label values)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _series_suffix(key: LabelKey, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    body = ",".join(f'{k}="{escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


#: OpenMetrics exposition content type.  The scrape surface speaks
#: OpenMetrics (not the legacy ``text/plain; version=0.0.4`` format)
#: because exemplars are an OpenMetrics feature: a real Prometheus
#: parses the `` # {trace_id="..."} v`` bucket suffixes only under
#: this negotiated format — the legacy parser rejects the line.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)


def metadata_name(name: str, kind: str) -> str:
    """The OpenMetrics *family* name for ``# HELP`` / ``# TYPE`` lines.

    OpenMetrics counters drop the ``_total`` suffix in metadata — the
    family is ``service_queries``, its sample ``service_queries_total``
    — while every other kind uses the instrument name verbatim.
    """
    if kind == "counter" and name.endswith("_total"):
        return name[: -len("_total")]
    return name


def _metadata_lines(name: str, kind: str, help_text: str) -> List[str]:
    family = metadata_name(name, kind)
    lines = []
    if help_text:
        lines.append(f"# HELP {family} {escape_help_text(help_text)}")
    lines.append(f"# TYPE {family} {kind}")
    return lines


def _fmt_exemplar(exemplar: Optional[dict]) -> str:
    """OpenMetrics exemplar suffix for a ``_bucket`` sample line:
    `` # {trace_id="..."} value`` — the link from a latency bucket to
    the trace that landed in it.  Empty string when there is none."""
    if not exemplar:
        return ""
    trace_id = escape_label_value(exemplar.get("trace_id", ""))
    return f' # {{trace_id="{trace_id}"}} {_fmt_value(exemplar.get("value", 0.0))}'


class Instrument:
    """Base class: a named metric family with fixed label names."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: Tuple[str, ...] = ()):
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)

    def _check(self, value: float, what: str) -> float:
        value = float(value)
        if math.isnan(value) or math.isinf(value):
            raise ValueError(f"{self.name}: {what} must be finite, got {value}")
        return value


class Counter(Instrument):
    """Monotone counter (per label set)."""

    kind = "counter"

    def __init__(self, name, help, label_names=()):
        super().__init__(name, help, label_names)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, n: float = 1.0, **labels: str) -> None:
        n = self._check(n, "increment")
        if n < 0:
            raise ValueError(f"{self.name}: counters only go up, got {n}")
        key = _label_key(self.label_names, labels)
        self._values[key] = self._values.get(key, 0.0) + n

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(self.label_names, labels), 0.0)

    def total(self) -> float:
        """Sum over every labelled series."""
        return sum(self._values.values())

    def series(self) -> List[dict]:
        return [
            {"labels": dict(key), "value": v}
            for key, v in sorted(self._values.items())
        ]

    def expose(self) -> Iterable[str]:
        for key, v in sorted(self._values.items()):
            yield f"{self.name}{_series_suffix(key)} {_fmt_value(v)}"


class Gauge(Instrument):
    """Point-in-time value (per label set)."""

    kind = "gauge"

    def __init__(self, name, help, label_names=()):
        super().__init__(name, help, label_names)
        self._values: Dict[LabelKey, float] = {}

    def set(self, v: float, **labels: str) -> None:
        self._values[_label_key(self.label_names, labels)] = self._check(v, "value")

    def inc(self, n: float = 1.0, **labels: str) -> None:
        key = _label_key(self.label_names, labels)
        self._values[key] = self._values.get(key, 0.0) + self._check(n, "delta")

    def dec(self, n: float = 1.0, **labels: str) -> None:
        self.inc(-n, **labels)

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(self.label_names, labels), 0.0)

    def series(self) -> List[dict]:
        return [
            {"labels": dict(key), "value": v}
            for key, v in sorted(self._values.items())
        ]

    def expose(self) -> Iterable[str]:
        for key, v in sorted(self._values.items()):
            yield f"{self.name}{_series_suffix(key)} {_fmt_value(v)}"


class _HistogramState:
    __slots__ = ("counts", "sum", "count", "exemplars")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets  # len(bounds) + 1 (overflow last)
        self.sum = 0.0
        self.count = 0
        #: lazily-allocated per-bucket exemplars ({trace_id, value}),
        #: last-write-wins; None until the first exemplar arrives so
        #: exemplar-free histograms pay nothing.
        self.exemplars: Optional[List[Optional[dict]]] = None


class Histogram(Instrument):
    """Fixed-boundary histogram (per label set).

    ``bounds`` are the *finite* upper bucket edges, ascending; an
    implicit overflow bucket catches everything above the last edge
    (rendered as ``le="+Inf"`` in the text exposition, kept as a plain
    count in the JSON export so the payload stays strict-JSON).
    """

    kind = "histogram"

    def __init__(self, name, help, bounds: Tuple[float, ...], label_names=()):
        super().__init__(name, help, label_names)
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError(f"{self.name}: need at least one bucket bound")
        if any(math.isnan(b) or math.isinf(b) for b in bounds):
            raise ValueError(f"{self.name}: bucket bounds must be finite")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"{self.name}: bounds must be strictly ascending")
        self.bounds = bounds
        self._series: Dict[LabelKey, _HistogramState] = {}

    def observe(self, v: float, exemplar: Optional[str] = None, **labels: str) -> None:
        """Record one observation; ``exemplar`` optionally links the
        bucket it lands in to a trace id (OpenMetrics exemplars)."""
        v = self._check(v, "observation")
        key = _label_key(self.label_names, labels)
        state = self._series.get(key)
        if state is None:
            state = self._series[key] = _HistogramState(len(self.bounds) + 1)
        # Linear scan: bucket lists are short (~10) and observations
        # cluster low, so this beats bisect's call overhead in practice.
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if v <= bound:
                idx = i
                break
        state.counts[idx] += 1
        state.sum += v
        state.count += 1
        if exemplar is not None:
            if state.exemplars is None:
                state.exemplars = [None] * len(state.counts)
            state.exemplars[idx] = {"trace_id": str(exemplar), "value": v}

    def state(self, **labels: str) -> Optional[_HistogramState]:
        return self._series.get(_label_key(self.label_names, labels))

    def series(self) -> List[dict]:
        out = []
        for key, st in sorted(self._series.items()):
            entry = {
                "labels": dict(key),
                "bounds": list(self.bounds),
                "counts": list(st.counts),
                "sum": st.sum,
                "count": st.count,
            }
            if st.exemplars is not None:
                entry["exemplars"] = [
                    dict(e) if e else None for e in st.exemplars
                ]
            out.append(entry)
        return out

    def expose(self) -> Iterable[str]:
        for key, st in sorted(self._series.items()):
            ex = st.exemplars
            cum = 0
            for i, (bound, n) in enumerate(zip(self.bounds, st.counts)):
                cum += n
                suffix = _series_suffix(key, (("le", _fmt_value(bound)),))
                tail = _fmt_exemplar(ex[i]) if ex is not None else ""
                yield f"{self.name}_bucket{suffix} {cum}{tail}"
            cum += st.counts[-1]
            suffix = _series_suffix(key, (("le", "+Inf"),))
            tail = _fmt_exemplar(ex[-1]) if ex is not None else ""
            yield f"{self.name}_bucket{suffix} {cum}{tail}"
            yield f"{self.name}_sum{_series_suffix(key)} {_fmt_value(st.sum)}"
            yield f"{self.name}_count{_series_suffix(key)} {st.count}"


# -- fleet merging --------------------------------------------------------
#
# The sharded serve fleet (repro.fleet) runs one MetricsRegistry per
# worker process; the router aggregates their JSON exports
# (registry.to_dict()) without ever holding live Instrument objects.
# Two views, both deterministic:
#
# * merge_labeled_exports — every series keeps its identity and gains a
#   `worker` label (the /metrics scrape surface: per-worker series, no
#   double counting, sums are the scraper's job);
# * sum_exports — counters and gauges summed, histograms merged
#   bucket-wise across workers per label set (the /statsz aggregate).


def _export_series_key(labels: Mapping[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _merge_exemplars(
    a: Optional[List[Optional[dict]]], b: Optional[List[Optional[dict]]]
) -> Optional[List[Optional[dict]]]:
    """Bucket-wise exemplar union for summed histograms: where both
    sides carry one, keep the larger observation (trace id as the
    deterministic tie-break)."""
    if a is None and b is None:
        return None
    if a is None:
        return [dict(e) if e else None for e in b]
    if b is None:
        return [dict(e) if e else None for e in a]
    out: List[Optional[dict]] = []
    for ea, eb in zip(a, b):
        if ea is None or eb is None:
            keep = ea or eb
        else:
            keep = max(
                ea, eb,
                key=lambda e: (float(e["value"]), str(e["trace_id"])),
            )
        out.append(dict(keep) if keep else None)
    return out


def merge_labeled_exports(
    exports: Mapping[str, dict], label: str = "worker"
) -> dict:
    """Merge per-worker ``registry.to_dict()`` exports, tagging every
    series with the worker id under ``label``.

    Families present on several workers must agree on kind (a protocol
    drift between worker builds is an error, not a silent union).
    Series order is deterministic: sorted by (worker, labels).
    """
    merged: Dict[str, dict] = {}
    for worker in sorted(exports):
        export = exports[worker] or {}
        for name in sorted(export):
            family = export[name]
            slot = merged.get(name)
            if slot is None:
                slot = merged[name] = {
                    "kind": family["kind"],
                    "help": family.get("help", ""),
                    "series": [],
                }
            elif slot["kind"] != family["kind"]:
                raise ValueError(
                    f"metric {name!r}: kind mismatch across workers "
                    f"({slot['kind']} vs {family['kind']})"
                )
            for series in family.get("series", []):
                tagged = dict(series)
                labels = dict(series.get("labels", {}))
                if label in labels:
                    raise ValueError(
                        f"metric {name!r}: series already carries a "
                        f"{label!r} label"
                    )
                labels[label] = str(worker)
                tagged["labels"] = labels
                slot["series"].append(tagged)
    for family in merged.values():
        family["series"].sort(key=lambda s: _export_series_key(s["labels"]))
    return merged


def sum_exports(exports: Mapping[str, dict]) -> dict:
    """Fleet-wide totals: counters/gauges summed and histograms merged
    bucket-wise across workers, per label set.

    Gauges sum too — the fleet gauges in play (queue depths, alert
    flags) are additive or max-1 indicators where a sum reads as "how
    many workers"; non-additive gauges belong on the labeled view.
    Histogram merges require identical bucket bounds (same code on
    every worker) and add counts, sums, and totals elementwise.
    """
    out: Dict[str, dict] = {}
    for worker in sorted(exports):
        export = exports[worker] or {}
        for name in sorted(export):
            family = export[name]
            slot = out.get(name)
            if slot is None:
                slot = out[name] = {
                    "kind": family["kind"],
                    "help": family.get("help", ""),
                    "_series": {},
                }
            elif slot["kind"] != family["kind"]:
                raise ValueError(
                    f"metric {name!r}: kind mismatch across workers "
                    f"({slot['kind']} vs {family['kind']})"
                )
            for series in family.get("series", []):
                key = _export_series_key(series.get("labels", {}))
                acc = slot["_series"].get(key)
                if family["kind"] == "histogram":
                    if acc is None:
                        acc = slot["_series"][key] = {
                            "labels": dict(series.get("labels", {})),
                            "bounds": list(series["bounds"]),
                            "counts": list(series["counts"]),
                            "sum": float(series["sum"]),
                            "count": int(series["count"]),
                        }
                        merged_ex = _merge_exemplars(
                            None, series.get("exemplars")
                        )
                        if merged_ex is not None:
                            acc["exemplars"] = merged_ex
                    else:
                        if acc["bounds"] != list(series["bounds"]):
                            raise ValueError(
                                f"metric {name!r}: bucket bounds differ "
                                "across workers"
                            )
                        acc["counts"] = [
                            a + b for a, b in zip(acc["counts"], series["counts"])
                        ]
                        acc["sum"] += float(series["sum"])
                        acc["count"] += int(series["count"])
                        merged_ex = _merge_exemplars(
                            acc.get("exemplars"), series.get("exemplars")
                        )
                        if merged_ex is not None:
                            acc["exemplars"] = merged_ex
                else:
                    if acc is None:
                        slot["_series"][key] = {
                            "labels": dict(series.get("labels", {})),
                            "value": float(series["value"]),
                        }
                    else:
                        acc["value"] += float(series["value"])
    for family in out.values():
        series = family.pop("_series")
        family["series"] = [series[key] for key in sorted(series)]
    return out


def expose_export_text(export: Mapping[str, dict]) -> str:
    """Prometheus text exposition of a ``to_dict()``-shaped export.

    The live-registry path (:meth:`MetricsRegistry.expose_text`) and
    this one render the same format; this one exists so the fleet
    router can expose merged worker exports it only holds as dicts.
    """
    lines: List[str] = []
    for name in sorted(export):
        family = export[name]
        lines.extend(
            _metadata_lines(name, family["kind"], family.get("help", ""))
        )
        for series in family.get("series", []):
            key = _export_series_key(series.get("labels", {}))
            if family["kind"] == "histogram":
                ex = series.get("exemplars")
                cum = 0
                for i, (bound, n) in enumerate(
                    zip(series["bounds"], series["counts"])
                ):
                    cum += n
                    suffix = _series_suffix(key, (("le", _fmt_value(bound)),))
                    tail = _fmt_exemplar(ex[i]) if ex else ""
                    lines.append(f"{name}_bucket{suffix} {cum}{tail}")
                cum += series["counts"][-1]
                tail = _fmt_exemplar(ex[-1]) if ex else ""
                lines.append(
                    f"{name}_bucket{_series_suffix(key, (('le', '+Inf'),))} "
                    f"{cum}{tail}"
                )
                lines.append(
                    f"{name}_sum{_series_suffix(key)} {_fmt_value(series['sum'])}"
                )
                lines.append(f"{name}_count{_series_suffix(key)} {series['count']}")
            else:
                lines.append(
                    f"{name}{_series_suffix(key)} {_fmt_value(series['value'])}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class MetricsRegistry:
    """Names instruments, enforces one definition per name, exports."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def _register(self, cls, name: str, help: str, **kwargs) -> Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        inst = cls(name, help, **kwargs)
        self._instruments[name] = inst
        return inst

    def counter(self, name: str, help: str = "", labels: Tuple[str, ...] = ()) -> Counter:
        return self._register(Counter, name, help, label_names=labels)

    def gauge(self, name: str, help: str = "", labels: Tuple[str, ...] = ()) -> Gauge:
        return self._register(Gauge, name, help, label_names=labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_MS_BUCKETS,
        labels: Tuple[str, ...] = (),
    ) -> Histogram:
        return self._register(Histogram, name, help, bounds=buckets, label_names=labels)

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    # -- exports ---------------------------------------------------------

    def expose_text(self) -> str:
        """OpenMetrics text exposition of every instrument."""
        lines: List[str] = []
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            lines.extend(_metadata_lines(name, inst.kind, inst.help))
            lines.extend(inst.expose())
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    def to_dict(self) -> dict:
        """JSON-round-trippable view: {name: {kind, help, series}}."""
        return {
            name: {
                "kind": inst.kind,
                "help": inst.help,
                "series": inst.series(),
            }
            for name, inst in sorted(self._instruments.items())
        }
