"""Flight recorder: bounded rings of recent spans, dumped on failure.

Every session gets a ring of the last ``capacity`` finished spans
(stored as plain dicts, so dumps are JSON-safe by construction).  When
a :class:`repro.service.resilience.ServiceError` surfaces or a chaos
fault is injected, the service calls :meth:`FlightRecorder.dump` and
the recorder freezes a causal timeline — the spans leading up to the
failure, plus the trigger — into its ``dumps`` list.  The CLI writes
them out with ``--flight-out``; tests assert one dump per injected
fault.

The ring holds dicts rather than :class:`~repro.telemetry.tracing.Span`
objects on purpose: a dump must reflect the span *at failure time*,
not pick up events appended later.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional


class FlightRecorder:
    """Per-session span rings plus frozen failure dumps."""

    def __init__(self, capacity: int = 64, max_dumps: int = 32) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.max_dumps = int(max_dumps)
        self._rings: Dict[str, Deque[dict]] = {}
        self.dumps: List[dict] = []
        self.dumps_dropped = 0

    def record(self, session: str, span_dict: dict) -> None:
        """Append a finished span (as a dict) to the session's ring."""
        ring = self._rings.get(session)
        if ring is None:
            ring = self._rings[session] = deque(maxlen=self.capacity)
        ring.append(span_dict)

    def ring(self, session: str) -> List[dict]:
        return list(self._rings.get(session, ()))

    def sessions(self) -> List[str]:
        return sorted(self._rings)

    def dump(
        self,
        session: str,
        reason: str,
        t_ms: float,
        detail: Optional[dict] = None,
    ) -> Optional[dict]:
        """Freeze the session's ring into a failure timeline.

        Returns the dump dict, or None if the dump budget is spent
        (``dumps_dropped`` still counts the event either way).
        """
        if len(self.dumps) >= self.max_dumps:
            self.dumps_dropped += 1
            return None
        payload = {
            "session": session,
            "reason": reason,
            "t_ms": float(t_ms),
            "detail": dict(detail) if detail else {},
            "timeline": self.ring(session),
        }
        self.dumps.append(payload)
        return payload

    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "rings": {name: list(ring) for name, ring in sorted(self._rings.items())},
            "dumps": list(self.dumps),
            "dumps_dropped": self.dumps_dropped,
        }

    def format_dump(self, dump: dict, max_spans: int = 12) -> str:
        """Human-readable one-dump timeline for terminal output.

        Shows the *last* ``max_spans`` spans — the causal run-up to the
        failure; the JSON dump keeps the full ring.
        """
        lines = [
            f"flight dump · session={dump['session']} reason={dump['reason']} "
            f"t={dump['t_ms']:.3f}ms"
        ]
        for k, v in sorted(dump.get("detail", {}).items()):
            lines.append(f"  {k}: {v}")
        timeline = dump.get("timeline", [])
        if len(timeline) > max_spans:
            lines.append(f"  ... ({len(timeline) - max_spans} earlier spans)")
            timeline = timeline[-max_spans:]
        for span in timeline:
            t0 = span.get("t_start_ms")
            t1 = span.get("t_end_ms")
            dur = "" if t1 is None or t0 is None else f" +{t1 - t0:.3f}ms"
            lines.append(
                f"  [{t0:9.3f}]{dur} {span.get('track')}/{span.get('name')}"
                f" ({span.get('status')})"
            )
        return "\n".join(lines)
