"""Declarative SLOs with multi-window burn-rate tracking.

An :class:`SLOConfig` states the service's objectives — a per-query
latency bound that a target fraction of queries must meet, and an
allowed error-rate budget.  A per-session :class:`SLOTracker` consumes
query resolutions on the service's *logical* clock and computes
**burn rates** over two sliding windows, in the multi-window
multi-burn-rate style of SRE alerting:

``burn = bad_fraction / error_budget``

A burn rate of 1.0 means the session is consuming its error budget
exactly as fast as the objective allows; 10.0 means ten times too
fast.  The *fast* window reacts to acute incidents (a latency spike, a
failing backend) and drives paging-grade alerts — serve mode degrades
``/healthz`` and freezes a flight-recorder snapshot the moment a
fast-burn alert *starts*; the *slow* window catches smouldering
degradation and only flips a warning gauge.

Everything is deterministic and wall-clock-free: windows and burn
rates live on the same logical milliseconds the batcher and the cost
models use, so tests can replay the exact schedule that tripped an
alert.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Deque, Dict, List, Optional, Tuple

#: objective keys tracked per session.
OBJECTIVES = ("latency", "errors")


@dataclass(frozen=True)
class SLOConfig:
    """Service-level objectives for one service instance.

    ``latency_ms`` + ``latency_target``: at least ``latency_target`` of
    queries must resolve within ``latency_ms`` modeled milliseconds
    (``None`` disables the latency objective).  ``error_rate`` is the
    error *budget*: the allowed fraction of failed queries (``None``
    disables it).  Windows are logical-clock milliseconds; burn-rate
    thresholds follow the usual multi-window convention (a high
    threshold on the short window, a low one on the long window).
    ``min_events`` suppresses alerts until a window holds enough
    resolutions to make a fraction meaningful.
    """

    latency_ms: Optional[float] = None
    latency_target: float = 0.99
    error_rate: Optional[float] = None
    fast_window_ms: float = 50.0
    slow_window_ms: float = 500.0
    fast_burn_threshold: float = 14.0
    slow_burn_threshold: float = 2.0
    min_events: int = 10

    def __post_init__(self) -> None:
        if self.latency_ms is not None and self.latency_ms <= 0:
            raise ValueError("latency_ms must be positive (or None)")
        if not 0.0 < self.latency_target < 1.0:
            raise ValueError(
                f"latency_target must be in (0, 1), got {self.latency_target}"
            )
        if self.error_rate is not None and not 0.0 < self.error_rate < 1.0:
            raise ValueError(
                f"error_rate must be in (0, 1) or None, got {self.error_rate}"
            )
        if self.fast_window_ms <= 0 or self.slow_window_ms <= 0:
            raise ValueError("SLO windows must be positive")
        if self.fast_window_ms > self.slow_window_ms:
            raise ValueError(
                "fast_window_ms must not exceed slow_window_ms "
                f"({self.fast_window_ms} > {self.slow_window_ms})"
            )
        if self.fast_burn_threshold <= 0 or self.slow_burn_threshold <= 0:
            raise ValueError("burn-rate thresholds must be positive")
        if self.min_events < 1:
            raise ValueError("min_events must be >= 1")

    @property
    def enabled_objectives(self) -> Tuple[str, ...]:
        out = []
        if self.latency_ms is not None:
            out.append("latency")
        if self.error_rate is not None:
            out.append("errors")
        return tuple(out)

    def budget(self, objective: str) -> float:
        """The error budget (allowed bad fraction) for an objective."""
        if objective == "latency":
            return 1.0 - self.latency_target
        if objective == "errors":
            if self.error_rate is None:
                raise ValueError("error-rate objective is disabled")
            return self.error_rate
        raise ValueError(f"unknown objective {objective!r}")

    def with_(self, **kwargs) -> "SLOConfig":
        return replace(self, **kwargs)


@dataclass(frozen=True)
class BurnStatus:
    """One objective's burn state at evaluation time (JSON-safe)."""

    objective: str
    budget: float
    #: events / bad events inside each window.
    fast_events: int
    fast_bad: int
    slow_events: int
    slow_bad: int
    burn_fast: float
    burn_slow: float
    fast_alert: bool
    slow_alert: bool

    def to_dict(self) -> dict:
        return {
            "objective": self.objective,
            "budget": self.budget,
            "fast_events": self.fast_events,
            "fast_bad": self.fast_bad,
            "slow_events": self.slow_events,
            "slow_bad": self.slow_bad,
            "burn_fast": self.burn_fast,
            "burn_slow": self.burn_slow,
            "fast_alert": self.fast_alert,
            "slow_alert": self.slow_alert,
        }


class SLOTracker:
    """Sliding-window burn-rate tracker for one session.

    :meth:`record` takes each query resolution; :meth:`evaluate`
    recomputes both windows at a given logical time and reports, per
    objective, the burn rates plus which alerts *newly fired* (the
    off→on transitions, so callers freeze exactly one flight dump per
    incident, not one per evaluation).
    """

    def __init__(self, config: SLOConfig) -> None:
        self.config = config
        #: (t_ms, bad_latency, bad_error) per resolved query.
        self._events: Deque[Tuple[float, bool, bool]] = deque()
        self._fast_active: Dict[str, bool] = {o: False for o in OBJECTIVES}
        self.fast_alerts_fired = 0
        self.events_recorded = 0

    def record(
        self, t_ms: float, latency_ms: Optional[float], ok: bool
    ) -> None:
        """One query resolution: ``latency_ms`` is None for failures
        (a failed query cannot meet the latency objective either)."""
        cfg = self.config
        bad_latency = (
            cfg.latency_ms is not None
            and (latency_ms is None or latency_ms > cfg.latency_ms)
        )
        bad_error = cfg.error_rate is not None and not ok
        self._events.append((float(t_ms), bad_latency, bad_error))
        self.events_recorded += 1

    def _trim(self, now: float) -> None:
        horizon = now - self.config.slow_window_ms
        ev = self._events
        while ev and ev[0][0] < horizon:
            ev.popleft()

    def evaluate(self, now: float) -> List[BurnStatus]:
        """Burn status per enabled objective at logical time ``now``.

        A ``fast_alert`` requires the fast *and* slow windows both over
        their thresholds (the standard guard against a handful of bad
        events in an otherwise idle window) plus ``min_events`` in the
        fast window.
        """
        cfg = self.config
        self._trim(now)
        fast_edge = now - cfg.fast_window_ms
        out: List[BurnStatus] = []
        for objective in cfg.enabled_objectives:
            bad_idx = 1 if objective == "latency" else 2
            slow_events = slow_bad = fast_events = fast_bad = 0
            for t, bl, be in self._events:
                bad = (bl, be)[bad_idx - 1]
                slow_events += 1
                slow_bad += bad
                if t >= fast_edge:
                    fast_events += 1
                    fast_bad += bad
            budget = cfg.budget(objective)
            burn_fast = (
                (fast_bad / fast_events) / budget if fast_events else 0.0
            )
            burn_slow = (
                (slow_bad / slow_events) / budget if slow_events else 0.0
            )
            fast_alert = (
                fast_events >= cfg.min_events
                and burn_fast >= cfg.fast_burn_threshold
                and burn_slow >= cfg.slow_burn_threshold
            )
            slow_alert = (
                slow_events >= cfg.min_events
                and burn_slow >= cfg.slow_burn_threshold
            )
            out.append(
                BurnStatus(
                    objective=objective,
                    budget=budget,
                    fast_events=fast_events,
                    fast_bad=fast_bad,
                    slow_events=slow_events,
                    slow_bad=slow_bad,
                    burn_fast=burn_fast,
                    burn_slow=burn_slow,
                    fast_alert=fast_alert,
                    slow_alert=slow_alert,
                )
            )
        return out

    def newly_fired(self, statuses: List[BurnStatus]) -> List[BurnStatus]:
        """The fast alerts that just transitioned off→on.

        Also updates the latched state, so a sustained burn fires once
        and re-arms only after the burn clears.
        """
        fired = []
        for st in statuses:
            was = self._fast_active[st.objective]
            self._fast_active[st.objective] = st.fast_alert
            if st.fast_alert and not was:
                self.fast_alerts_fired += 1
                fired.append(st)
        return fired

    def any_fast_alert(self) -> bool:
        return any(self._fast_active.values())

    def snapshot(self, now: float) -> dict:
        """JSON-safe view for ``ServiceStats.slo`` and ``/statsz``."""
        return {
            "now_ms": float(now),
            "events_recorded": self.events_recorded,
            "events_windowed": len(self._events),
            "fast_alerts_fired": self.fast_alerts_fired,
            "objectives": [st.to_dict() for st in self.evaluate(now)],
        }
