"""The online traversal query service: the synchronous client facade.

:class:`TraversalService` ties the subsystem together — session
registry (tree + plan, built once), per-session dynamic batchers,
batch spatial reordering, and the adaptive dispatcher — behind a small
synchronous API:

* :meth:`register` — build a (app, dataset) session;
* :meth:`submit` — enqueue one query, flushing on a full batch;
* :meth:`advance` — move the logical clock, flushing expired windows;
* :meth:`query` / :meth:`query_many` — synchronous wrappers that force
  the answer out immediately (a degenerate flush when the batch is not
  yet full);
* :meth:`stats` — the :class:`~repro.service.stats.ServiceStats`
  snapshot.

The clock is logical and monotone, in modeled milliseconds; callers
(or the load generator in ``python -m repro.service``) advance it with
arrival timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cpusim.threads import CPUConfig, OPTERON_6176
from repro.gpusim.device import DeviceConfig, TESLA_C2070
from repro.points.sorting import kd_bucket_order, morton_order
from repro.service.batcher import Batch, DynamicBatcher, QueryTicket
from repro.service.dispatch import BACKENDS, AdaptiveDispatcher
from repro.service.sessions import SessionRegistry, TreeSession
from repro.service.stats import BackendStats, ServiceStats

SORT_MODES = ("arrival", "morton", "tree")


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for one :class:`TraversalService` instance."""

    #: flush a session's queue at this many pending queries.
    max_batch: int = 64
    #: ... or when the oldest pending query has waited this long.
    max_wait_ms: float = 2.0
    #: batch spatial reorder: "arrival" (none), "morton", or "tree"
    #: (kd-bucket descent; falls back to morton for non-kd trees).
    sort: str = "morton"
    #: force every batch to one backend ("lockstep" | "nonlockstep" |
    #: "cpu"); None means adaptive similarity-profiled routing.
    backend: Optional[str] = None
    #: batches smaller than this skip the GPU entirely.
    min_gpu_batch: int = 8
    #: neighbor pairs sampled per batch by the similarity profiler.
    similarity_samples: int = 4
    #: mean-Jaccard threshold above which lockstep is chosen.
    similarity_threshold: float = 0.5
    #: CPU-backend thread count (the modeled Opteron's).
    cpu_threads: int = 8
    device: DeviceConfig = TESLA_C2070
    cpu: CPUConfig = field(default_factory=lambda: OPTERON_6176)
    seed: int = 7

    def __post_init__(self) -> None:
        if self.sort not in SORT_MODES:
            raise ValueError(f"sort must be one of {SORT_MODES}, got {self.sort!r}")
        if self.backend is not None and self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS} or None, got {self.backend!r}"
            )

    def with_(self, **changes) -> "ServiceConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


class TraversalService:
    """Online traversal query engine over the compiled-plan pipeline."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.registry = SessionRegistry()
        self.dispatcher = AdaptiveDispatcher(self.config)
        self._batchers: Dict[str, DynamicBatcher] = {}
        self._backend_stats: Dict[str, BackendStats] = {
            b: BackendStats(b) for b in BACKENDS
        }
        self.now_ms = 0.0
        self._next_ticket = 0
        self._next_batch = 0
        self._submitted = 0
        self._completed = 0
        self._all_latencies: List[float] = []

    # -- sessions --------------------------------------------------------

    def register(self, name: str, app: str, data: np.ndarray, **build_kwargs) -> TreeSession:
        """Build (or reuse) a session and give it a batching queue."""
        session = self.registry.register(name, app, data, **build_kwargs)
        self._batchers[name] = DynamicBatcher(
            max_batch=self.config.max_batch, max_wait_ms=self.config.max_wait_ms
        )
        return session

    @property
    def plan_cache(self):
        return self.registry.plans

    # -- clock -----------------------------------------------------------

    def _tick(self, now: Optional[float]) -> float:
        if now is not None:
            if now < self.now_ms:
                raise ValueError(
                    f"clock must be monotone: now={now} < current {self.now_ms}"
                )
            self.now_ms = now
        return self.now_ms

    # -- query paths -------------------------------------------------------

    def submit(
        self, session: str, coord: Sequence[float], now: Optional[float] = None
    ) -> QueryTicket:
        """Enqueue one query; dispatches immediately on a full batch."""
        t = self._tick(now)
        sess = self.registry.get(session)
        coord_arr = np.asarray(coord, dtype=np.float64).reshape(-1)
        if coord_arr.shape != (sess.dim,):
            raise ValueError(
                f"query for {session!r} must have {sess.dim} coords, "
                f"got shape {coord_arr.shape}"
            )
        ticket = QueryTicket(
            id=self._next_ticket, session=session, coords=coord_arr, t_submit=t
        )
        self._next_ticket += 1
        self._submitted += 1
        batcher = self._batchers[session]
        if batcher.add(ticket):
            self._dispatch(session, batcher.take_full(t), t, "full")
        return ticket

    def advance(self, now: float) -> int:
        """Advance the clock; flush every expired window. Returns the
        number of batches dispatched."""
        self._tick(now)
        dispatched = 0
        for name, batcher in self._batchers.items():
            while True:
                deadline = batcher.timeout_deadline()
                taken = batcher.poll(now)
                if taken is None:
                    break
                self._dispatch(name, taken, deadline, "timeout")
                dispatched += 1
        return dispatched

    def flush(self, session: Optional[str] = None, now: Optional[float] = None) -> int:
        """Force-flush pending queries (all sessions by default)."""
        t = self._tick(now)
        names = [session] if session is not None else list(self._batchers)
        dispatched = 0
        for name in names:
            taken = self._batchers[name].take_all(t)
            if taken is not None:
                self._dispatch(name, taken, t, "forced")
                dispatched += 1
        return dispatched

    def query(
        self, session: str, coord: Sequence[float], now: Optional[float] = None
    ) -> QueryTicket:
        """Synchronous single query: submit, then force the answer out."""
        ticket = self.submit(session, coord, now)
        if not ticket.done:
            self.flush(session)
        return ticket

    def query_many(
        self, session: str, coords: np.ndarray, now: Optional[float] = None
    ) -> List[QueryTicket]:
        """Synchronous bulk path: full batches dispatch as they fill,
        the ragged remainder is force-flushed."""
        coords = np.asarray(coords, dtype=np.float64)
        if coords.ndim != 2:
            raise ValueError("query_many expects an (n, d) array")
        tickets = [self.submit(session, c, now) for c in coords]
        self.flush(session)
        return tickets

    @property
    def queue_depth(self) -> int:
        return sum(b.queue_depth for b in self._batchers.values())

    # -- dispatch ----------------------------------------------------------

    def _batch_order(self, sess: TreeSession, coords: np.ndarray) -> np.ndarray:
        mode = self.config.sort
        if mode == "arrival" or len(coords) < 2:
            return np.arange(len(coords))
        if mode == "tree":
            try:
                return kd_bucket_order(sess.tree, coords)
            except KeyError:
                return morton_order(coords)
        return morton_order(coords)

    def _dispatch(
        self, session: str, tickets: List[QueryTicket], t_flush: float, reason: str
    ) -> Batch:
        sess = self.registry.get(session)
        batch = Batch(
            id=self._next_batch,
            session=session,
            tickets=tickets,
            t_flush=t_flush,
            reason=reason,
        )
        self._next_batch += 1
        coords = batch.coords
        # Spatial reorder: make warp membership match tree locality
        # *before* similarity profiling and launch (Section 4.4).
        order = self._batch_order(sess, coords)
        coords = coords[order]
        decision = self.dispatcher.decide(sess, coords)
        outcome = self.dispatcher.execute(sess, coords, decision.backend)
        # Resolve tickets: row i of the executed batch is the order[i]-th
        # submitted ticket.
        waits: List[float] = []
        for row, tidx in enumerate(order):
            ticket = tickets[int(tidx)]
            ticket.result = sess.extract(outcome.out, row)
            ticket.backend = decision.backend
            ticket.batch_id = batch.id
            ticket.batch_size = batch.size
            ticket.exec_ms = outcome.exec_ms
            waits.append(ticket.wait_ms)
            self._all_latencies.append(ticket.latency_ms)
        self._completed += batch.size
        self._backend_stats[decision.backend].record_batch(
            n_queries=batch.size,
            exec_ms=outcome.exec_ms,
            waits_ms=waits,
            occupancy=batch.size / self.config.max_batch,
            avg_nodes=outcome.avg_nodes,
            work_expansion=outcome.work_expansion,
        )
        return batch

    # -- observability ----------------------------------------------------

    def stats(self) -> ServiceStats:
        from repro.service.stats import percentile

        counters = [b.counters for b in self._batchers.values()]
        backends = {b: s.snapshot() for b, s in self._backend_stats.items()}
        return ServiceStats(
            sort=self.config.sort,
            sessions=len(self.registry),
            queries_submitted=self._submitted,
            queries_completed=self._completed,
            queue_depth=self.queue_depth,
            batches=self._next_batch,
            flush_full=sum(c.flush_full for c in counters),
            flush_timeout=sum(c.flush_timeout for c in counters),
            flush_forced=sum(c.flush_forced for c in counters),
            plan_cache=self.registry.plans.stats(),
            backends=backends,
            total_exec_ms=sum(s.total_exec_ms for s in backends.values()),
            p50_latency_ms=percentile(self._all_latencies, 50),
            p95_latency_ms=percentile(self._all_latencies, 95),
        )
