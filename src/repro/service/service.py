"""The online traversal query service: the synchronous client facade.

:class:`TraversalService` ties the subsystem together — session
registry (tree + plan, built once), per-session dynamic batchers,
batch spatial reordering, the adaptive dispatcher, and the resilience
layer — behind a small synchronous API:

* :meth:`register` / :meth:`unregister` — session lifecycle;
* :meth:`submit` — validate + admit + enqueue one query, flushing on a
  full batch;
* :meth:`advance` — move the logical clock, flushing expired windows;
* :meth:`query` / :meth:`query_many` — synchronous wrappers that force
  the answer out immediately (a degenerate flush when the batch is not
  yet full);
* :meth:`stats` — the :class:`~repro.service.stats.ServiceStats`
  snapshot.

The clock is logical and monotone, in modeled milliseconds; callers
(or the load generator in ``python -m repro.service``) advance it with
arrival timestamps.

Failure semantics (see ``docs/RESILIENCE.md``): a submitted query is
never lost.  Every ticket resolves — with a result, or with a typed
:class:`~repro.service.resilience.ServiceError` (deadline, budget,
backend exhaustion, load shedding).  Malformed queries (NaN/inf
coordinates, wrong dimensionality) are rejected at the boundary with
:class:`~repro.service.resilience.InvalidQuery` before they can reach
Morton ordering or an executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cpusim.threads import CPUConfig, OPTERON_6176
from repro.gpusim.device import DeviceConfig, TESLA_C2070
from repro.gpusim.faults import ChaosConfig
from repro.points.sorting import kd_bucket_order, morton_order
from repro.service.batcher import Batch, DynamicBatcher, QueryTicket
from repro.service.dispatch import BACKENDS, AdaptiveDispatcher
from repro.service.resilience import (
    DeadlineExceeded,
    InvalidQuery,
    Overloaded,
    ServiceError,
)
from repro.service.memo import MemoSnapshot, TraversalMemo
from repro.service.sessions import SessionRegistry, TreeSession
from repro.service.stats import BackendStats, ResilienceCounters, ServiceStats
from repro.telemetry import (
    DEFAULT_SIZE_BUCKETS,
    SLOConfig,
    SLOTracker,
    Telemetry,
    TelemetryConfig,
)

SORT_MODES = ("arrival", "morton", "tree")
SHED_POLICIES = ("reject-new", "drop-oldest")
ENGINES = ("compiled", "interp", "codegen")


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for one :class:`TraversalService` instance."""

    #: flush a session's queue at this many pending queries.
    max_batch: int = 64
    #: ... or when the oldest pending query has waited this long.
    max_wait_ms: float = 2.0
    #: batch spatial reorder: "arrival" (none), "morton", or "tree"
    #: (kd-bucket descent; falls back to morton for non-kd trees).
    sort: str = "morton"
    #: force every batch to one backend ("lockstep" | "nonlockstep" |
    #: "cpu"); None means adaptive similarity-profiled routing.
    backend: Optional[str] = None
    #: batches smaller than this skip the GPU entirely.
    min_gpu_batch: int = 8
    #: neighbor pairs sampled per batch by the similarity profiler.
    similarity_samples: int = 4
    #: mean-Jaccard threshold above which lockstep is chosen.
    similarity_threshold: float = 0.5
    #: CPU-backend thread count (the modeled Opteron's).
    cpu_threads: int = 8
    device: DeviceConfig = TESLA_C2070
    cpu: CPUConfig = field(default_factory=lambda: OPTERON_6176)
    seed: int = 7

    # -- resilience ------------------------------------------------------

    #: per-query end-to-end latency deadline in modeled ms (None = off);
    #: a query whose wait + retries + execution exceed it resolves with
    #: DeadlineExceeded instead of a late result.
    deadline_ms: Optional[float] = None
    #: executor watchdog: max traversal steps per launch before the
    #: batch fails with BudgetExhausted (None = unbounded).
    visit_budget: Optional[int] = 100_000
    #: execution tries per backend before moving down the fallback chain.
    retry_max_attempts: int = 3
    #: backoff before the first retry, in modeled ms.
    retry_backoff_ms: float = 0.5
    retry_backoff_multiplier: float = 2.0
    #: jitter fraction of each backoff (deterministic, seeded).
    retry_jitter: float = 0.25
    #: consecutive failures that trip a backend's circuit breaker.
    breaker_threshold: int = 3
    #: logical ms an open breaker waits before half-open probing.
    breaker_cooldown_ms: float = 20.0
    #: probe batches admitted in the half-open state.
    breaker_half_open_trials: int = 1
    #: per-session pending-queue cap (None = unbounded).
    max_queue_depth: Optional[int] = None
    #: what to shed at the cap: "reject-new" (refuse the submit with
    #: Overloaded) or "drop-oldest" (oldest queued ticket resolves with
    #: Overloaded, the new query is admitted).
    shed_policy: str = "reject-new"
    #: consecutive failing batches per session before the compiled plan
    #: is invalidated and recompiled.
    plan_failure_threshold: int = 3
    #: deterministic fault injection (None = chaos off).
    chaos: Optional[ChaosConfig] = None

    # -- execution engine ------------------------------------------------

    #: GPU execution engine for dispatched batches: ``"compiled"`` (the
    #: plan-compiled op programs with frontier compaction),
    #: ``"codegen"`` (emitted + exec-compiled specialized NumPy loops,
    #: cached in the shared plan cache), or ``"interp"`` (the per-step
    #: AST interpreter baseline).  Individual sessions may override
    #: this at register time.
    engine: str = "compiled"
    #: frontier-compaction trigger passed to every GPU launch (see
    #: TraversalLaunch.compact_threshold); session-overridable.
    compact_threshold: float = 0.9

    # -- memoization -----------------------------------------------------

    #: per-session memo of traversal results keyed by (plan epoch,
    #: quantized coords); 0 disables memoization entirely.
    memo_capacity: int = 256
    #: memo coordinate quantization grid (0 = exact bitwise match, the
    #: safe default: no radius/NN boundary effects).
    memo_quantum: float = 0.0

    # -- telemetry -------------------------------------------------------

    #: telemetry layer (metrics registry + span tracing + flight
    #: recorder); disabled by default — the off path costs one branch
    #: per batch and nothing per step.
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)

    # -- service-level objectives ----------------------------------------

    #: declarative latency / error-rate objectives with multi-window
    #: burn-rate alerting per session (None = no SLO tracking).  Fast
    #: burns degrade :meth:`TraversalService.health` and freeze a
    #: flight-recorder snapshot; burn rates export as gauges.
    slo: Optional[SLOConfig] = None

    def __post_init__(self) -> None:
        if self.sort not in SORT_MODES:
            raise ValueError(f"sort must be one of {SORT_MODES}, got {self.sort!r}")
        if self.backend is not None and self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS} or None, got {self.backend!r}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"shed_policy must be one of {SHED_POLICIES}, "
                f"got {self.shed_policy!r}"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive (or None)")
        if self.visit_budget is not None and self.visit_budget < 1:
            raise ValueError("visit_budget must be >= 1 (or None)")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1 (or None)")
        if self.plan_failure_threshold < 1:
            raise ValueError("plan_failure_threshold must be >= 1")
        if self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if not 0.0 <= self.compact_threshold <= 1.0:
            raise ValueError("compact_threshold must be in [0, 1]")
        if self.memo_capacity < 0:
            raise ValueError("memo_capacity must be >= 0")
        if self.memo_quantum < 0:
            raise ValueError("memo_quantum must be >= 0")

    def with_(self, **changes) -> "ServiceConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


class TraversalService:
    """Online traversal query engine over the compiled-plan pipeline."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.registry = SessionRegistry()
        self.telemetry = Telemetry.from_config(self.config.telemetry)
        if self.telemetry.tracer is not None:
            # Local trace identity derives from the service seed, so a
            # standalone run's span tree is as reproducible as a fleet's.
            self.telemetry.tracer.trace_seed = self.config.seed
        self.dispatcher = AdaptiveDispatcher(
            self.config, self.telemetry, plans=self.registry.plans
        )
        self._batchers: Dict[str, DynamicBatcher] = {}
        self._memos: Dict[str, TraversalMemo] = {}
        self._backend_stats: Dict[str, BackendStats] = {
            b: BackendStats(b) for b in BACKENDS
        }
        self.resilience = ResilienceCounters()
        self.now_ms = 0.0
        self._next_ticket = 0
        self._next_batch = 0
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._plan_failures: Dict[str, int] = {}
        self._all_latencies: List[float] = []
        self._slo: Dict[str, SLOTracker] = {}
        self._register_instruments()

    # -- telemetry plumbing ----------------------------------------------

    def _register_instruments(self) -> None:
        """Register the service's metric families (telemetry only).

        ``self._m`` is None when telemetry/metrics are off — every
        update site guards on that one check, so the disabled path does
        no label-tuple or dict work at all.
        """
        tel = self.telemetry
        if not tel.enabled or tel.registry is None:
            self._m = None
            return
        reg = tel.registry
        self._m = {
            "queries": reg.counter(
                "service_queries_total", "queries admitted", labels=("session",)
            ),
            "results": reg.counter(
                "service_query_results_total",
                "query resolutions by outcome (ok or error code)",
                labels=("outcome",),
            ),
            "batches": reg.counter(
                "service_batches_total", "dispatched batches",
                labels=("session", "reason"),
            ),
            "batch_size": reg.histogram(
                "service_batch_size", "queries per dispatched batch",
                buckets=DEFAULT_SIZE_BUCKETS, labels=("backend",),
            ),
            "exec_ms": reg.histogram(
                "service_exec_ms", "modeled batch execution time (ms)",
                labels=("backend",),
            ),
            "wait_ms": reg.histogram(
                "service_wait_ms", "queue wait per query (ms)"
            ),
            "queue_depth": reg.gauge(
                "service_queue_depth", "pending queries", labels=("session",)
            ),
            "retries": reg.counter(
                "service_retries_total", "execution retries", labels=("backend",)
            ),
            "degraded": reg.counter(
                "service_degraded_batches_total",
                "batches served by a fallback backend",
            ),
            "faults": reg.counter(
                "service_faults_injected_total", "chaos faults armed",
                labels=("fault",),
            ),
            "plan_events": reg.counter(
                "plan_cache_events_total",
                "plan-cache hits / misses / invalidations",
                labels=("event",),
            ),
            "plan_ops": reg.gauge(
                "plan_ops", "compiled-program op counts per session plan",
                labels=("session", "variant", "op"),
            ),
            "memo": reg.counter(
                "memo_lookups_total", "traversal-memo lookups",
                labels=("session", "outcome"),
            ),
            "kernel": reg.counter(
                "kernel_counters_total",
                "kernel counters folded per backend (visits, traffic, ...)",
                labels=("backend", "counter"),
            ),
            "slo_burn": reg.gauge(
                "slo_burn_rate",
                "error-budget burn rate per objective and window",
                labels=("session", "objective", "window"),
            ),
            "slo_alert": reg.gauge(
                "slo_alert_active",
                "1 while a burn-rate alert is firing",
                labels=("session", "objective", "severity"),
            ),
            "slo_fired": reg.counter(
                "slo_fast_burn_total",
                "fast-burn alert activations (off-to-on transitions)",
                labels=("session", "objective"),
            ),
        }
        self.registry.plans.on_event = self._on_plan_event

    def _on_plan_event(self, event: str) -> None:
        self._m["plan_events"].inc(event=event)
        # Invalidations and epoch bumps are load-bearing (cached state
        # was thrown away); cache hits/misses stay counter-only noise.
        if event == "invalidate" and self.telemetry.log is not None:
            self.telemetry.log.warn("plan.invalidated", self.now_ms)

    def _publish_plan_gauges(self, session: TreeSession) -> None:
        """Static per-plan shape gauges (op histogram per variant)."""
        from repro.core.compile import program_for

        gauge = self._m["plan_ops"]
        variants = [("autoropes", False)]
        if session.plan.lockstep is not None:
            variants.append(("lockstep", True))
        for variant, lockstep in variants:
            prog = program_for(session.plan.kernel(lockstep=lockstep))
            for op, n in prog.op_histogram().items():
                gauge.set(n, session=session.name, variant=variant, op=op)

    def _tel_query_end(
        self, ticket: QueryTicket, t_end: float, status: str, **args
    ) -> None:
        """Finish a ticket's query span and feed the flight ring."""
        tracer = self.telemetry.tracer
        if tracer is None:
            return
        span = tracer.get_open(f"q{ticket.id}")
        if span is None:
            return
        self.telemetry.finish_span(ticket.session, span, t_end, status, **args)

    # -- sessions --------------------------------------------------------

    def register(
        self,
        name: str,
        app: str,
        data: np.ndarray,
        *,
        engine: Optional[str] = None,
        compact_threshold: Optional[float] = None,
        **build_kwargs,
    ) -> TreeSession:
        """Build (or reuse) a session and give it a batching queue.

        ``engine`` / ``compact_threshold`` override the service-wide
        execution knobs for this session only (None = inherit config).
        """
        session = self.registry.register(
            name, app, data,
            engine=engine, compact_threshold=compact_threshold,
            **build_kwargs,
        )
        self._batchers[name] = DynamicBatcher(
            max_batch=self.config.max_batch, max_wait_ms=self.config.max_wait_ms
        )
        if self.config.memo_capacity > 0:
            self._memos[name] = TraversalMemo(
                capacity=self.config.memo_capacity,
                quantum=self.config.memo_quantum,
            )
        if self.config.slo is not None:
            self._slo[name] = SLOTracker(self.config.slo)
        if self._m is not None:
            self._publish_plan_gauges(session)
        return session

    def unregister(self, name: str, now: Optional[float] = None) -> bool:
        """Drain and remove a session; idempotent.

        Pending queries are flushed first (drain-or-fail: they resolve
        with results or typed errors, never silently vanish), then the
        batcher and registry entry go away.  Returns False when the
        session was already gone — calling twice is safe.
        """
        if name not in self._batchers:
            return self.registry.unregister(name)
        self.flush(name, now=now)
        self._batchers.pop(name, None)
        self._memos.pop(name, None)
        self._slo.pop(name, None)
        self._plan_failures.pop(name, None)
        self.registry.unregister(name)
        return True

    @property
    def plan_cache(self):
        return self.registry.plans

    # -- clock -----------------------------------------------------------

    def _tick(self, now: Optional[float]) -> float:
        if now is not None:
            if now < self.now_ms:
                raise ValueError(
                    f"clock must be monotone: now={now} < current {self.now_ms}"
                )
            self.now_ms = now
        return self.now_ms

    # -- validation / admission ------------------------------------------

    def _validate_coords(self, sess: TreeSession, coords) -> np.ndarray:
        """Boundary validation: shape and finiteness, or InvalidQuery."""
        coord_arr = np.asarray(coords, dtype=np.float64).reshape(-1)
        if coord_arr.shape != (sess.dim,):
            raise InvalidQuery(
                f"query for {sess.name!r} must have {sess.dim} coords, "
                f"got shape {coord_arr.shape}",
                session=sess.name,
            )
        if not np.all(np.isfinite(coord_arr)):
            raise InvalidQuery(
                f"query for {sess.name!r} has non-finite coords "
                f"{coord_arr.tolist()}",
                session=sess.name,
            )
        return coord_arr

    def _admit(self, session: str, batcher: DynamicBatcher, t: float) -> None:
        """Admission control at the queue-depth cap (load shedding)."""
        cap = self.config.max_queue_depth
        if cap is None or batcher.queue_depth < cap:
            return
        log = self.telemetry.log if self.telemetry.enabled else None
        if self.config.shed_policy == "reject-new":
            batcher.counters.shed_rejected += 1
            self.resilience.shed_rejected += 1
            self.resilience.count_error(Overloaded.code)
            if log is not None:
                log.warn(
                    "admission.shed", t, session=session,
                    policy="reject-new", cap=cap,
                )
            raise Overloaded(
                f"session {session!r} queue at cap {cap}; query rejected "
                "(shed_policy=reject-new)",
                session=session,
            )
        dropped = batcher.drop_oldest(t)
        if dropped is not None:
            dropped.error = Overloaded(
                f"session {session!r} queue at cap {cap}; oldest query "
                "shed (shed_policy=drop-oldest)",
                session=session,
            )
            self.resilience.shed_dropped += 1
            self.resilience.count_error(Overloaded.code)
            self._failed += 1
            if log is not None:
                log.warn(
                    "admission.shed", t, session=session,
                    policy="drop-oldest", cap=cap, ticket=dropped.id,
                )
            slo = self._slo.get(session)
            if slo is not None:
                slo.record(t, None, False)
                self._evaluate_slo(session, slo, t)
            if self.telemetry.enabled:
                self._tel_query_end(dropped, t, Overloaded.code, shed=True)
                if self._m is not None:
                    self._m["results"].inc(outcome=Overloaded.code)

    # -- query paths -------------------------------------------------------

    def submit(
        self, session: str, coord: Sequence[float], now: Optional[float] = None
    ) -> QueryTicket:
        """Enqueue one query; dispatches immediately on a full batch.

        Raises :class:`InvalidQuery` for malformed coordinates and
        :class:`Overloaded` when admission control rejects the query
        (``shed_policy="reject-new"`` at the queue cap).
        """
        t = self._tick(now)
        sess = self.registry.get(session)
        coord_arr = self._validate_coords(sess, coord)
        memo = self._memos.get(session)
        if memo is not None:
            cached = memo.lookup(sess.plan_epoch, coord_arr)
            if self._m is not None:
                self._m["memo"].inc(
                    session=session,
                    outcome="hit" if cached is not None else "miss",
                )
            if cached is not None:
                return self._serve_memo_hit(session, coord_arr, cached, t)
        batcher = self._batchers[session]
        self._admit(session, batcher, t)
        ticket = QueryTicket(
            id=self._next_ticket, session=session, coords=coord_arr, t_submit=t
        )
        self._next_ticket += 1
        self._submitted += 1
        if self.telemetry.enabled:
            tracer = self.telemetry.tracer
            if tracer is not None:
                tracer.begin(
                    "query", "query", f"q{ticket.id}", t, session=session
                )
            if self._m is not None:
                self._m["queries"].inc(session=session)
                self._m["queue_depth"].set(
                    batcher.queue_depth + 1, session=session
                )
        if batcher.add(ticket):
            self._dispatch(session, batcher.take_full(t), t, "full")
        return ticket

    def _serve_memo_hit(
        self, session: str, coord_arr: np.ndarray, cached, t: float
    ) -> QueryTicket:
        """Resolve a repeated query from the memo — no batch, no
        dispatch, zero modeled latency."""
        ticket = QueryTicket(
            id=self._next_ticket, session=session, coords=coord_arr, t_submit=t
        )
        self._next_ticket += 1
        self._submitted += 1
        self._completed += 1
        ticket.result = cached
        ticket.backend = "memo"
        self._all_latencies.append(0.0)
        slo = self._slo.get(session)
        if slo is not None:
            slo.record(t, 0.0, True)
        tel = self.telemetry
        if tel.enabled:
            tracer = tel.tracer
            if tracer is not None:
                span = tracer.complete(
                    "query", "query", f"q{ticket.id}", t, t,
                    session=session, backend="memo",
                )
                if tel.flight is not None:
                    tel.flight.record(session, span.to_dict())
            if self._m is not None:
                self._m["queries"].inc(session=session)
                self._m["results"].inc(outcome="ok")
        return ticket

    def advance(self, now: float) -> int:
        """Advance the clock; flush every expired window. Returns the
        number of batches dispatched."""
        self._tick(now)
        dispatched = 0
        for name, batcher in self._batchers.items():
            while True:
                deadline = batcher.timeout_deadline()
                taken = batcher.poll(now)
                if taken is None:
                    break
                self._dispatch(name, taken, deadline, "timeout")
                dispatched += 1
        return dispatched

    def flush(self, session: Optional[str] = None, now: Optional[float] = None) -> int:
        """Force-flush pending queries (all sessions by default).

        Exception-safe: a batch that fails resolves its tickets with
        typed errors and the remaining sessions still flush — queued
        queries are never left stranded behind a poisoned batch.
        """
        t = self._tick(now)
        names = [session] if session is not None else list(self._batchers)
        dispatched = 0
        for name in names:
            taken = self._batchers[name].take_all(t)
            if taken is not None:
                self._dispatch(name, taken, t, "forced")
                dispatched += 1
        return dispatched

    def query(
        self, session: str, coord: Sequence[float], now: Optional[float] = None
    ) -> QueryTicket:
        """Synchronous single query: submit, then force the answer out."""
        ticket = self.submit(session, coord, now)
        if not ticket.done:
            self.flush(session)
        return ticket

    def query_many(
        self, session: str, coords: np.ndarray, now: Optional[float] = None
    ) -> List[QueryTicket]:
        """Synchronous bulk path: full batches dispatch as they fill,
        the ragged remainder is force-flushed.

        The whole array is validated up front: one bad row rejects the
        call with :class:`InvalidQuery` before anything is enqueued, so
        a malformed bulk request never half-submits.
        """
        coords = np.asarray(coords, dtype=np.float64)
        if coords.ndim != 2:
            raise InvalidQuery(
                f"query_many expects an (n, d) array, got shape {coords.shape}",
                session=session,
            )
        sess = self.registry.get(session)
        if coords.shape[1] != sess.dim:
            raise InvalidQuery(
                f"query_many for {session!r} must have {sess.dim} coords "
                f"per row, got {coords.shape[1]}",
                session=session,
            )
        bad = ~np.all(np.isfinite(coords), axis=1)
        if bad.any():
            raise InvalidQuery(
                f"query_many for {session!r}: {int(bad.sum())} rows with "
                f"non-finite coords (first at index {int(np.argmax(bad))})",
                session=session,
            )
        tickets = [self.submit(session, c, now) for c in coords]
        self.flush(session)
        return tickets

    @property
    def queue_depth(self) -> int:
        return sum(b.queue_depth for b in self._batchers.values())

    # -- dispatch ----------------------------------------------------------

    def _batch_order(self, sess: TreeSession, coords: np.ndarray) -> np.ndarray:
        mode = self.config.sort
        if mode == "arrival" or len(coords) < 2:
            return np.arange(len(coords))
        if mode == "tree":
            try:
                return kd_bucket_order(sess.tree, coords)
            except KeyError:
                return morton_order(coords)
        return morton_order(coords)

    def _batch_deadline(self, tickets: List[QueryTicket]) -> Optional[float]:
        """Absolute logical time the earliest-submitted query expires."""
        if self.config.deadline_ms is None:
            return None
        return min(t.t_submit for t in tickets) + self.config.deadline_ms

    def _fail_batch(
        self, tickets: List[QueryTicket], batch: Batch, err: ServiceError
    ) -> None:
        """Resolve every ticket of a failed batch with the typed error."""
        for t in tickets:
            t.error = err
            t.batch_id = batch.id
            t.batch_size = batch.size
        self._failed += batch.size
        self.resilience.failed_batches += 1
        self.resilience.count_error(err.code, batch.size)

    def _note_plan_failure(self, session: str, failures: int) -> None:
        """Track consecutive failing batches; invalidate the plan past
        the threshold (a recompile clears poisoned cached state)."""
        if failures == 0:
            self._plan_failures[session] = 0
            return
        n = self._plan_failures.get(session, 0) + 1
        if n >= self.config.plan_failure_threshold:
            if self.telemetry.log is not None:
                self.telemetry.log.warn(
                    "plan.failure_threshold", self.now_ms,
                    session=session, consecutive_failures=n,
                )
            self.registry.refresh_plan(session)
            self.resilience.plan_invalidations += 1
            self._plan_failures[session] = 0
        else:
            self._plan_failures[session] = n

    def _dispatch(
        self, session: str, tickets: List[QueryTicket], t_flush: float, reason: str
    ) -> Batch:
        sess = self.registry.get(session)
        batch = Batch(
            id=self._next_batch,
            session=session,
            tickets=tickets,
            t_flush=t_flush,
            reason=reason,
        )
        self._next_batch += 1
        tel = self.telemetry
        tracer = tel.tracer if tel.enabled else None
        bspan = None
        if tracer is not None:
            bspan = tracer.begin(
                f"batch:{session}", "batch", f"b{batch.id}", t_flush,
                session=session, size=batch.size, reason=reason,
            )
        coords = batch.coords
        # Spatial reorder: make warp membership match tree locality
        # *before* similarity profiling and launch (Section 4.4).
        order = self._batch_order(sess, coords)
        coords = coords[order]
        if bspan is not None:
            bspan.event("order", t_flush, sort=self.config.sort)
        decision = self.dispatcher.decide(sess, coords)
        if bspan is not None:
            sim = decision.similarity
            bspan.event(
                "dispatch", t_flush,
                backend=decision.backend, reason=decision.reason,
                mean_jaccard=(sim.mean_jaccard if sim is not None else None),
            )
        try:
            r = self.dispatcher.execute_resilient(
                sess,
                coords,
                decision,
                batch_id=batch.id,
                now=t_flush,
                deadline=self._batch_deadline(tickets),
            )
        except ServiceError as err:
            self._fail_batch(tickets, batch, err)
            self._record_resilience(session, attempts=0, failures=None, r=None)
            if tel.log is not None:
                tel.log.error(
                    "batch.failed", t_flush,
                    trace_id=bspan.trace_id if bspan is not None else None,
                    span_id=f"b{batch.id}" if bspan is not None else None,
                    session=session, batch=batch.id, size=batch.size,
                    error=err.code,
                )
            slo = self._slo.get(session)
            if slo is not None:
                for _ in tickets:
                    slo.record(t_flush, None, False)
                self._evaluate_slo(session, slo, t_flush)
            if tel.enabled:
                for ticket in tickets:
                    self._tel_query_end(
                        ticket, t_flush, err.code, batch=batch.id
                    )
                if bspan is not None:
                    tel.finish_span(session, bspan, t_flush, err.code)
                if self._m is not None:
                    self._m["batches"].inc(session=session, reason=reason)
                    self._m["results"].inc(batch.size, outcome=err.code)
                    for name in getattr(err, "injected", ()):
                        self._m["faults"].inc(fault=name)
                if tel.flight is not None:
                    for name in getattr(err, "injected", ()):
                        tel.flight.dump(
                            session, f"chaos:{name}", t_flush,
                            detail={"batch": batch.id, "outcome": err.code},
                        )
                    tel.flight.dump(
                        session, err.code, t_flush, detail=err.to_dict()
                    )
            return batch
        outcome = r.outcome
        t_launch = t_flush + r.delay_ms
        t_done = t_launch + outcome.exec_ms
        if tracer is not None:
            largs = {
                "backend": r.backend, "batch": batch.id,
                "size": batch.size, "attempts": r.attempts,
            }
            if r.backend != "cpu":
                largs["engine"] = sess.engine or self.config.engine
            lspan = tracer.begin(
                f"launch:{r.backend}", "launch", f"b{batch.id}:launch",
                t_launch, parent_id=f"b{batch.id}", **largs,
            )
            if outcome.trace is not None and len(outcome.trace) > 0:
                # Interpolate decimated StepTrace samples across the
                # modeled execution window.
                n_steps = len(outcome.trace)
                for ev in outcome.trace.sample_events(tel.config.step_events):
                    frac = ev["step"] / max(1, n_steps - 1)
                    lspan.event(
                        "step", t_launch + frac * outcome.exec_ms, **ev
                    )
            tel.finish_span(session, lspan, t_done)
        # Resolve tickets: row i of the executed batch is the order[i]-th
        # submitted ticket.
        deadline_ms = self.config.deadline_ms
        memo = self._memos.get(session)
        waits: List[float] = []
        n_ok = 0
        for row, tidx in enumerate(order):
            ticket = tickets[int(tidx)]
            ticket.backend = r.backend
            ticket.batch_id = batch.id
            ticket.batch_size = batch.size
            ticket.exec_ms = outcome.exec_ms
            ticket.retry_ms = r.delay_ms
            ticket.attempts = r.attempts
            ticket.degraded = r.degraded
            if deadline_ms is not None and (
                ticket.wait_ms + r.delay_ms + outcome.exec_ms > deadline_ms
            ):
                ticket.error = DeadlineExceeded(
                    f"latency {ticket.wait_ms + r.delay_ms + outcome.exec_ms:.4f} ms "
                    f"exceeded deadline {deadline_ms} ms",
                    session=session,
                    batch_id=batch.id,
                    backend=r.backend,
                )
                self._failed += 1
                self.resilience.deadline_misses += 1
                self.resilience.count_error(DeadlineExceeded.code)
            else:
                ticket.result = sess.extract(outcome.out, row)
                n_ok += 1
                if memo is not None:
                    memo.store(sess.plan_epoch, ticket.coords, ticket.result)
            waits.append(ticket.wait_ms)
            self._all_latencies.append(ticket.latency_ms)
            if tel.enabled:
                self._tel_query_end(
                    ticket,
                    ticket.t_submit + ticket.latency_ms,
                    "ok" if ticket.ok else DeadlineExceeded.code,
                    backend=r.backend,
                    batch=batch.id,
                )
        self._completed += n_ok
        slo = self._slo.get(session)
        if slo is not None:
            # Every ticket resolved at t_done: wait + backoff + execution
            # all land at the same modeled instant for a batch.
            for ticket in tickets:
                slo.record(t_done, ticket.latency_ms, ticket.ok)
            self._evaluate_slo(session, slo, t_done)
        self._backend_stats[r.backend].record_batch(
            n_queries=batch.size,
            exec_ms=outcome.exec_ms,
            waits_ms=waits,
            occupancy=batch.size / self.config.max_batch,
            avg_nodes=outcome.avg_nodes,
            work_expansion=outcome.work_expansion,
        )
        self._record_resilience(
            session, attempts=r.attempts, failures=r.failures, r=r
        )
        if tel.enabled:
            if bspan is not None:
                tel.finish_span(
                    session, bspan, t_done, "ok",
                    backend=r.backend, attempts=r.attempts,
                    degraded=r.degraded,
                )
            if self._m is not None:
                m = self._m
                m["batches"].inc(session=session, reason=reason)
                m["batch_size"].observe(batch.size, backend=r.backend)
                # Exemplars tie the latency buckets back to the trace
                # that landed in them (the batch span's trace id, which
                # under a fleet context is the router ticket's trace).
                exemplar = bspan.trace_id if bspan is not None else None
                m["exec_ms"].observe(
                    outcome.exec_ms, exemplar=exemplar, backend=r.backend
                )
                for w in waits:
                    m["wait_ms"].observe(w, exemplar=exemplar)
                m["results"].inc(n_ok, outcome="ok")
                if n_ok < batch.size:
                    m["results"].inc(
                        batch.size - n_ok, outcome=DeadlineExceeded.code
                    )
                if r.attempts > 1:
                    m["retries"].inc(r.attempts - 1, backend=r.backend)
                if r.degraded:
                    m["degraded"].inc()
                for name in r.injected:
                    m["faults"].inc(fault=name)
                if outcome.kernel_stats:
                    for key, v in outcome.kernel_stats.items():
                        m["kernel"].inc(v, backend=r.backend, counter=key)
                m["queue_depth"].set(
                    self._batchers[session].queue_depth, session=session
                )
            if tel.flight is not None and r.injected:
                # Every injected fault ships its causal timeline, even
                # when retries/failover recovered the batch.
                for name in r.injected:
                    tel.flight.dump(
                        session, f"chaos:{name}", t_done,
                        detail={
                            "batch": batch.id, "backend": r.backend,
                            "attempts": r.attempts, "recovered": True,
                        },
                    )
        return batch

    def _record_resilience(self, session, attempts, failures, r) -> None:
        """Fold one batch's resilience facts into the counters."""
        res = self.resilience
        if r is None:
            # Total batch failure: the chain was exhausted.
            self._note_plan_failure(session, failures=1)
            return
        res.retries += max(0, attempts - 1)
        if r.degraded:
            res.degraded_batches += 1
        for backend, err in r.failures:
            res.count_backend_failure(backend)
        for name in r.injected:
            res.count_fault(name)
        self._note_plan_failure(session, failures=len(r.failures))

    # -- service-level objectives ------------------------------------------

    def _evaluate_slo(self, session: str, tracker: SLOTracker, now: float) -> None:
        """Re-evaluate burn rates after a resolution wave.

        Exports fast/slow burn rates and alert states as gauges, and on
        each fast-burn *activation* (off-to-on, latched so one incident
        fires once) bumps the counter and freezes a flight-recorder
        snapshot carrying the full burn status.
        """
        statuses = tracker.evaluate(now)
        m = self._m
        if m is not None:
            burn, alert = m["slo_burn"], m["slo_alert"]
            for st in statuses:
                burn.set(
                    st.burn_fast,
                    session=session, objective=st.objective, window="fast",
                )
                burn.set(
                    st.burn_slow,
                    session=session, objective=st.objective, window="slow",
                )
                alert.set(
                    1.0 if st.fast_alert else 0.0,
                    session=session, objective=st.objective, severity="fast",
                )
                alert.set(
                    1.0 if st.slow_alert else 0.0,
                    session=session, objective=st.objective, severity="slow",
                )
        fired = tracker.newly_fired(statuses)
        if not fired:
            return
        flight = self.telemetry.flight
        for st in fired:
            if m is not None:
                m["slo_fired"].inc(session=session, objective=st.objective)
            if flight is not None:
                flight.dump(
                    session, f"slo:fast-burn:{st.objective}", now,
                    detail=st.to_dict(),
                )

    def health(self) -> dict:
        """Readiness assessment (the ``/healthz`` payload).

        Degraded when any backend breaker is open, any session queue
        sits at its cap, or any SLO objective has a fast burn firing.
        Read-only: evaluates trackers without touching the alert latch,
        so probing health never swallows a flight-recorder freeze.
        """
        breakers = {
            b: snap.state
            for b, snap in self.dispatcher.breaker_snapshots().items()
        }
        open_breakers = sorted(b for b, s in breakers.items() if s == "open")
        cap = self.config.max_queue_depth
        saturated = sorted(
            name
            for name, b in self._batchers.items()
            if cap is not None and b.queue_depth >= cap
        )
        burning = []
        for name in sorted(self._slo):
            for st in self._slo[name].evaluate(self.now_ms):
                if st.fast_alert:
                    burning.append(
                        {
                            "session": name,
                            "objective": st.objective,
                            "burn_fast": st.burn_fast,
                            "burn_slow": st.burn_slow,
                        }
                    )
        ok = not open_breakers and not saturated and not burning
        return {
            "status": "ok" if ok else "degraded",
            "ok": ok,
            "now_ms": self.now_ms,
            "sessions": self.registry.names(),
            "queue_depth": self.queue_depth,
            "checks": {
                "breakers": {"states": breakers, "open": open_breakers},
                "queue": {
                    "depth": self.queue_depth,
                    "cap": cap,
                    "saturated_sessions": saturated,
                },
                "slo": {
                    "tracked_sessions": sorted(self._slo),
                    "fast_burns": burning,
                },
            },
        }

    # -- observability ----------------------------------------------------

    def stats(self) -> ServiceStats:
        from repro.service.stats import percentile

        counters = [b.counters for b in self._batchers.values()]
        backends = {b: s.snapshot() for b, s in self._backend_stats.items()}
        return ServiceStats(
            sort=self.config.sort,
            sessions=len(self.registry),
            queries_submitted=self._submitted,
            queries_completed=self._completed,
            queries_failed=self._failed,
            queue_depth=self.queue_depth,
            batches=self._next_batch,
            flush_full=sum(c.flush_full for c in counters),
            flush_timeout=sum(c.flush_timeout for c in counters),
            flush_forced=sum(c.flush_forced for c in counters),
            plan_cache=self.registry.plans.stats(),
            backends=backends,
            resilience=self.resilience.snapshot(
                self.dispatcher.breaker_snapshots()
            ),
            total_exec_ms=sum(s.total_exec_ms for s in backends.values()),
            p50_latency_ms=percentile(self._all_latencies, 50),
            p95_latency_ms=percentile(self._all_latencies, 95),
            memo=self._memo_snapshot(),
            telemetry=self.telemetry.snapshot(),
            slo={
                name: tracker.snapshot(self.now_ms)
                for name, tracker in sorted(self._slo.items())
            },
        )

    def _memo_snapshot(self) -> MemoSnapshot:
        merged = MemoSnapshot()
        for memo in self._memos.values():
            merged = merged.merged(memo.snapshot())
        return merged
