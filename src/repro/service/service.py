"""The online traversal query service: the synchronous client facade.

:class:`TraversalService` ties the subsystem together — session
registry (tree + plan, built once), per-session dynamic batchers,
batch spatial reordering, the adaptive dispatcher, and the resilience
layer — behind a small synchronous API:

* :meth:`register` / :meth:`unregister` — session lifecycle;
* :meth:`submit` — validate + admit + enqueue one query, flushing on a
  full batch;
* :meth:`advance` — move the logical clock, flushing expired windows;
* :meth:`query` / :meth:`query_many` — synchronous wrappers that force
  the answer out immediately (a degenerate flush when the batch is not
  yet full);
* :meth:`stats` — the :class:`~repro.service.stats.ServiceStats`
  snapshot.

The clock is logical and monotone, in modeled milliseconds; callers
(or the load generator in ``python -m repro.service``) advance it with
arrival timestamps.

Failure semantics (see ``docs/RESILIENCE.md``): a submitted query is
never lost.  Every ticket resolves — with a result, or with a typed
:class:`~repro.service.resilience.ServiceError` (deadline, budget,
backend exhaustion, load shedding).  Malformed queries (NaN/inf
coordinates, wrong dimensionality) are rejected at the boundary with
:class:`~repro.service.resilience.InvalidQuery` before they can reach
Morton ordering or an executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cpusim.threads import CPUConfig, OPTERON_6176
from repro.gpusim.device import DeviceConfig, TESLA_C2070
from repro.gpusim.faults import ChaosConfig
from repro.points.sorting import kd_bucket_order, morton_order
from repro.service.batcher import Batch, DynamicBatcher, QueryTicket
from repro.service.dispatch import BACKENDS, AdaptiveDispatcher
from repro.service.resilience import (
    DeadlineExceeded,
    InvalidQuery,
    Overloaded,
    ServiceError,
)
from repro.service.sessions import SessionRegistry, TreeSession
from repro.service.stats import BackendStats, ResilienceCounters, ServiceStats

SORT_MODES = ("arrival", "morton", "tree")
SHED_POLICIES = ("reject-new", "drop-oldest")


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for one :class:`TraversalService` instance."""

    #: flush a session's queue at this many pending queries.
    max_batch: int = 64
    #: ... or when the oldest pending query has waited this long.
    max_wait_ms: float = 2.0
    #: batch spatial reorder: "arrival" (none), "morton", or "tree"
    #: (kd-bucket descent; falls back to morton for non-kd trees).
    sort: str = "morton"
    #: force every batch to one backend ("lockstep" | "nonlockstep" |
    #: "cpu"); None means adaptive similarity-profiled routing.
    backend: Optional[str] = None
    #: batches smaller than this skip the GPU entirely.
    min_gpu_batch: int = 8
    #: neighbor pairs sampled per batch by the similarity profiler.
    similarity_samples: int = 4
    #: mean-Jaccard threshold above which lockstep is chosen.
    similarity_threshold: float = 0.5
    #: CPU-backend thread count (the modeled Opteron's).
    cpu_threads: int = 8
    device: DeviceConfig = TESLA_C2070
    cpu: CPUConfig = field(default_factory=lambda: OPTERON_6176)
    seed: int = 7

    # -- resilience ------------------------------------------------------

    #: per-query end-to-end latency deadline in modeled ms (None = off);
    #: a query whose wait + retries + execution exceed it resolves with
    #: DeadlineExceeded instead of a late result.
    deadline_ms: Optional[float] = None
    #: executor watchdog: max traversal steps per launch before the
    #: batch fails with BudgetExhausted (None = unbounded).
    visit_budget: Optional[int] = 100_000
    #: execution tries per backend before moving down the fallback chain.
    retry_max_attempts: int = 3
    #: backoff before the first retry, in modeled ms.
    retry_backoff_ms: float = 0.5
    retry_backoff_multiplier: float = 2.0
    #: jitter fraction of each backoff (deterministic, seeded).
    retry_jitter: float = 0.25
    #: consecutive failures that trip a backend's circuit breaker.
    breaker_threshold: int = 3
    #: logical ms an open breaker waits before half-open probing.
    breaker_cooldown_ms: float = 20.0
    #: probe batches admitted in the half-open state.
    breaker_half_open_trials: int = 1
    #: per-session pending-queue cap (None = unbounded).
    max_queue_depth: Optional[int] = None
    #: what to shed at the cap: "reject-new" (refuse the submit with
    #: Overloaded) or "drop-oldest" (oldest queued ticket resolves with
    #: Overloaded, the new query is admitted).
    shed_policy: str = "reject-new"
    #: consecutive failing batches per session before the compiled plan
    #: is invalidated and recompiled.
    plan_failure_threshold: int = 3
    #: deterministic fault injection (None = chaos off).
    chaos: Optional[ChaosConfig] = None

    def __post_init__(self) -> None:
        if self.sort not in SORT_MODES:
            raise ValueError(f"sort must be one of {SORT_MODES}, got {self.sort!r}")
        if self.backend is not None and self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS} or None, got {self.backend!r}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"shed_policy must be one of {SHED_POLICIES}, "
                f"got {self.shed_policy!r}"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive (or None)")
        if self.visit_budget is not None and self.visit_budget < 1:
            raise ValueError("visit_budget must be >= 1 (or None)")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1 (or None)")
        if self.plan_failure_threshold < 1:
            raise ValueError("plan_failure_threshold must be >= 1")

    def with_(self, **changes) -> "ServiceConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


class TraversalService:
    """Online traversal query engine over the compiled-plan pipeline."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.registry = SessionRegistry()
        self.dispatcher = AdaptiveDispatcher(self.config)
        self._batchers: Dict[str, DynamicBatcher] = {}
        self._backend_stats: Dict[str, BackendStats] = {
            b: BackendStats(b) for b in BACKENDS
        }
        self.resilience = ResilienceCounters()
        self.now_ms = 0.0
        self._next_ticket = 0
        self._next_batch = 0
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._plan_failures: Dict[str, int] = {}
        self._all_latencies: List[float] = []

    # -- sessions --------------------------------------------------------

    def register(self, name: str, app: str, data: np.ndarray, **build_kwargs) -> TreeSession:
        """Build (or reuse) a session and give it a batching queue."""
        session = self.registry.register(name, app, data, **build_kwargs)
        self._batchers[name] = DynamicBatcher(
            max_batch=self.config.max_batch, max_wait_ms=self.config.max_wait_ms
        )
        return session

    def unregister(self, name: str, now: Optional[float] = None) -> bool:
        """Drain and remove a session; idempotent.

        Pending queries are flushed first (drain-or-fail: they resolve
        with results or typed errors, never silently vanish), then the
        batcher and registry entry go away.  Returns False when the
        session was already gone — calling twice is safe.
        """
        if name not in self._batchers:
            return self.registry.unregister(name)
        self.flush(name, now=now)
        self._batchers.pop(name, None)
        self._plan_failures.pop(name, None)
        self.registry.unregister(name)
        return True

    @property
    def plan_cache(self):
        return self.registry.plans

    # -- clock -----------------------------------------------------------

    def _tick(self, now: Optional[float]) -> float:
        if now is not None:
            if now < self.now_ms:
                raise ValueError(
                    f"clock must be monotone: now={now} < current {self.now_ms}"
                )
            self.now_ms = now
        return self.now_ms

    # -- validation / admission ------------------------------------------

    def _validate_coords(self, sess: TreeSession, coords) -> np.ndarray:
        """Boundary validation: shape and finiteness, or InvalidQuery."""
        coord_arr = np.asarray(coords, dtype=np.float64).reshape(-1)
        if coord_arr.shape != (sess.dim,):
            raise InvalidQuery(
                f"query for {sess.name!r} must have {sess.dim} coords, "
                f"got shape {coord_arr.shape}",
                session=sess.name,
            )
        if not np.all(np.isfinite(coord_arr)):
            raise InvalidQuery(
                f"query for {sess.name!r} has non-finite coords "
                f"{coord_arr.tolist()}",
                session=sess.name,
            )
        return coord_arr

    def _admit(self, session: str, batcher: DynamicBatcher, t: float) -> None:
        """Admission control at the queue-depth cap (load shedding)."""
        cap = self.config.max_queue_depth
        if cap is None or batcher.queue_depth < cap:
            return
        if self.config.shed_policy == "reject-new":
            batcher.counters.shed_rejected += 1
            self.resilience.shed_rejected += 1
            self.resilience.count_error(Overloaded.code)
            raise Overloaded(
                f"session {session!r} queue at cap {cap}; query rejected "
                "(shed_policy=reject-new)",
                session=session,
            )
        dropped = batcher.drop_oldest(t)
        if dropped is not None:
            dropped.error = Overloaded(
                f"session {session!r} queue at cap {cap}; oldest query "
                "shed (shed_policy=drop-oldest)",
                session=session,
            )
            self.resilience.shed_dropped += 1
            self.resilience.count_error(Overloaded.code)
            self._failed += 1

    # -- query paths -------------------------------------------------------

    def submit(
        self, session: str, coord: Sequence[float], now: Optional[float] = None
    ) -> QueryTicket:
        """Enqueue one query; dispatches immediately on a full batch.

        Raises :class:`InvalidQuery` for malformed coordinates and
        :class:`Overloaded` when admission control rejects the query
        (``shed_policy="reject-new"`` at the queue cap).
        """
        t = self._tick(now)
        sess = self.registry.get(session)
        coord_arr = self._validate_coords(sess, coord)
        batcher = self._batchers[session]
        self._admit(session, batcher, t)
        ticket = QueryTicket(
            id=self._next_ticket, session=session, coords=coord_arr, t_submit=t
        )
        self._next_ticket += 1
        self._submitted += 1
        if batcher.add(ticket):
            self._dispatch(session, batcher.take_full(t), t, "full")
        return ticket

    def advance(self, now: float) -> int:
        """Advance the clock; flush every expired window. Returns the
        number of batches dispatched."""
        self._tick(now)
        dispatched = 0
        for name, batcher in self._batchers.items():
            while True:
                deadline = batcher.timeout_deadline()
                taken = batcher.poll(now)
                if taken is None:
                    break
                self._dispatch(name, taken, deadline, "timeout")
                dispatched += 1
        return dispatched

    def flush(self, session: Optional[str] = None, now: Optional[float] = None) -> int:
        """Force-flush pending queries (all sessions by default).

        Exception-safe: a batch that fails resolves its tickets with
        typed errors and the remaining sessions still flush — queued
        queries are never left stranded behind a poisoned batch.
        """
        t = self._tick(now)
        names = [session] if session is not None else list(self._batchers)
        dispatched = 0
        for name in names:
            taken = self._batchers[name].take_all(t)
            if taken is not None:
                self._dispatch(name, taken, t, "forced")
                dispatched += 1
        return dispatched

    def query(
        self, session: str, coord: Sequence[float], now: Optional[float] = None
    ) -> QueryTicket:
        """Synchronous single query: submit, then force the answer out."""
        ticket = self.submit(session, coord, now)
        if not ticket.done:
            self.flush(session)
        return ticket

    def query_many(
        self, session: str, coords: np.ndarray, now: Optional[float] = None
    ) -> List[QueryTicket]:
        """Synchronous bulk path: full batches dispatch as they fill,
        the ragged remainder is force-flushed.

        The whole array is validated up front: one bad row rejects the
        call with :class:`InvalidQuery` before anything is enqueued, so
        a malformed bulk request never half-submits.
        """
        coords = np.asarray(coords, dtype=np.float64)
        if coords.ndim != 2:
            raise InvalidQuery(
                f"query_many expects an (n, d) array, got shape {coords.shape}",
                session=session,
            )
        sess = self.registry.get(session)
        if coords.shape[1] != sess.dim:
            raise InvalidQuery(
                f"query_many for {session!r} must have {sess.dim} coords "
                f"per row, got {coords.shape[1]}",
                session=session,
            )
        bad = ~np.all(np.isfinite(coords), axis=1)
        if bad.any():
            raise InvalidQuery(
                f"query_many for {session!r}: {int(bad.sum())} rows with "
                f"non-finite coords (first at index {int(np.argmax(bad))})",
                session=session,
            )
        tickets = [self.submit(session, c, now) for c in coords]
        self.flush(session)
        return tickets

    @property
    def queue_depth(self) -> int:
        return sum(b.queue_depth for b in self._batchers.values())

    # -- dispatch ----------------------------------------------------------

    def _batch_order(self, sess: TreeSession, coords: np.ndarray) -> np.ndarray:
        mode = self.config.sort
        if mode == "arrival" or len(coords) < 2:
            return np.arange(len(coords))
        if mode == "tree":
            try:
                return kd_bucket_order(sess.tree, coords)
            except KeyError:
                return morton_order(coords)
        return morton_order(coords)

    def _batch_deadline(self, tickets: List[QueryTicket]) -> Optional[float]:
        """Absolute logical time the earliest-submitted query expires."""
        if self.config.deadline_ms is None:
            return None
        return min(t.t_submit for t in tickets) + self.config.deadline_ms

    def _fail_batch(
        self, tickets: List[QueryTicket], batch: Batch, err: ServiceError
    ) -> None:
        """Resolve every ticket of a failed batch with the typed error."""
        for t in tickets:
            t.error = err
            t.batch_id = batch.id
            t.batch_size = batch.size
        self._failed += batch.size
        self.resilience.failed_batches += 1
        self.resilience.count_error(err.code, batch.size)

    def _note_plan_failure(self, session: str, failures: int) -> None:
        """Track consecutive failing batches; invalidate the plan past
        the threshold (a recompile clears poisoned cached state)."""
        if failures == 0:
            self._plan_failures[session] = 0
            return
        n = self._plan_failures.get(session, 0) + 1
        if n >= self.config.plan_failure_threshold:
            self.registry.refresh_plan(session)
            self.resilience.plan_invalidations += 1
            self._plan_failures[session] = 0
        else:
            self._plan_failures[session] = n

    def _dispatch(
        self, session: str, tickets: List[QueryTicket], t_flush: float, reason: str
    ) -> Batch:
        sess = self.registry.get(session)
        batch = Batch(
            id=self._next_batch,
            session=session,
            tickets=tickets,
            t_flush=t_flush,
            reason=reason,
        )
        self._next_batch += 1
        coords = batch.coords
        # Spatial reorder: make warp membership match tree locality
        # *before* similarity profiling and launch (Section 4.4).
        order = self._batch_order(sess, coords)
        coords = coords[order]
        decision = self.dispatcher.decide(sess, coords)
        try:
            r = self.dispatcher.execute_resilient(
                sess,
                coords,
                decision,
                batch_id=batch.id,
                now=t_flush,
                deadline=self._batch_deadline(tickets),
            )
        except ServiceError as err:
            self._fail_batch(tickets, batch, err)
            self._record_resilience(session, attempts=0, failures=None, r=None)
            return batch
        outcome = r.outcome
        # Resolve tickets: row i of the executed batch is the order[i]-th
        # submitted ticket.
        deadline_ms = self.config.deadline_ms
        waits: List[float] = []
        n_ok = 0
        for row, tidx in enumerate(order):
            ticket = tickets[int(tidx)]
            ticket.backend = r.backend
            ticket.batch_id = batch.id
            ticket.batch_size = batch.size
            ticket.exec_ms = outcome.exec_ms
            ticket.retry_ms = r.delay_ms
            ticket.attempts = r.attempts
            ticket.degraded = r.degraded
            if deadline_ms is not None and (
                ticket.wait_ms + r.delay_ms + outcome.exec_ms > deadline_ms
            ):
                ticket.error = DeadlineExceeded(
                    f"latency {ticket.wait_ms + r.delay_ms + outcome.exec_ms:.4f} ms "
                    f"exceeded deadline {deadline_ms} ms",
                    session=session,
                    batch_id=batch.id,
                    backend=r.backend,
                )
                self._failed += 1
                self.resilience.deadline_misses += 1
                self.resilience.count_error(DeadlineExceeded.code)
            else:
                ticket.result = sess.extract(outcome.out, row)
                n_ok += 1
            waits.append(ticket.wait_ms)
            self._all_latencies.append(ticket.latency_ms)
        self._completed += n_ok
        self._backend_stats[r.backend].record_batch(
            n_queries=batch.size,
            exec_ms=outcome.exec_ms,
            waits_ms=waits,
            occupancy=batch.size / self.config.max_batch,
            avg_nodes=outcome.avg_nodes,
            work_expansion=outcome.work_expansion,
        )
        self._record_resilience(
            session, attempts=r.attempts, failures=r.failures, r=r
        )
        return batch

    def _record_resilience(self, session, attempts, failures, r) -> None:
        """Fold one batch's resilience facts into the counters."""
        res = self.resilience
        if r is None:
            # Total batch failure: the chain was exhausted.
            self._note_plan_failure(session, failures=1)
            return
        res.retries += max(0, attempts - 1)
        if r.degraded:
            res.degraded_batches += 1
        for backend, err in r.failures:
            res.count_backend_failure(backend)
        for name in r.injected:
            res.count_fault(name)
        self._note_plan_failure(session, failures=len(r.failures))

    # -- observability ----------------------------------------------------

    def stats(self) -> ServiceStats:
        from repro.service.stats import percentile

        counters = [b.counters for b in self._batchers.values()]
        backends = {b: s.snapshot() for b, s in self._backend_stats.items()}
        return ServiceStats(
            sort=self.config.sort,
            sessions=len(self.registry),
            queries_submitted=self._submitted,
            queries_completed=self._completed,
            queries_failed=self._failed,
            queue_depth=self.queue_depth,
            batches=self._next_batch,
            flush_full=sum(c.flush_full for c in counters),
            flush_timeout=sum(c.flush_timeout for c in counters),
            flush_forced=sum(c.flush_forced for c in counters),
            plan_cache=self.registry.plans.stats(),
            backends=backends,
            resilience=self.resilience.snapshot(
                self.dispatcher.breaker_snapshots()
            ),
            total_exec_ms=sum(s.total_exec_ms for s in backends.values()),
            p50_latency_ms=percentile(self._all_latencies, 50),
            p95_latency_ms=percentile(self._all_latencies, 95),
        )
