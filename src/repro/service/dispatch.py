"""Adaptive variant dispatch: route each batch to its best backend.

Section 4.4's run-time story, applied per batch instead of per
dataset: after the batcher flushes and the batch is spatially
reordered, the dispatcher samples the similarity of *index-adjacent*
queries (the pairs that will share a warp) with
:func:`repro.core.profiling.sample_similarity` and routes the batch —

* ``lockstep``  — similar neighboring traversals: the warp-level union
  stays close to each member's own traversal, so perfectly coalesced
  lockstep wins (GPU, per-warp mask stacks, shared memory when the
  tree is shallow enough);
* ``nonlockstep`` — dissimilar traversals: work expansion would
  swamp the coalescing benefit, so each thread traverses independently
  (GPU, per-thread interleaved rope stacks);
* ``cpu`` — batches below ``min_gpu_batch``: a kernel launch cannot
  amortize over a handful of points, so the recursive interpreter
  serves them directly, priced by the CPU model.

Ragged batches launch as-is: the executors pad the trailing warp and
(since the padding fix in :mod:`repro.gpusim.warp`) charge no phantom
divergence for lanes that never held a query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.profiling import TraversalSimilarity, sample_similarity
from repro.cpusim.recursive import RecursiveInterpreter
from repro.cpusim.threads import cpu_time_ms
from repro.gpusim.executors import (
    AutoropesExecutor,
    LockstepExecutor,
    TraversalLaunch,
)
from repro.gpusim.stack import RopeStackLayout, lockstep_stack_layout
from repro.service.sessions import TreeSession

BACKENDS = ("lockstep", "nonlockstep", "cpu")


@dataclass(frozen=True)
class DispatchDecision:
    """Why a batch went where it went."""

    backend: str
    reason: str
    similarity: Optional[TraversalSimilarity] = None


@dataclass(frozen=True)
class ExecOutcome:
    """One executed batch: results plus the modeled cost facts."""

    out: Dict[str, np.ndarray]
    exec_ms: float
    avg_nodes: float
    work_expansion: float = float("nan")


class AdaptiveDispatcher:
    """Routes batches by run-time similarity profiling and executes them."""

    def __init__(self, config) -> None:
        self.config = config

    # -- routing ---------------------------------------------------------

    def decide(self, session: TreeSession, coords: np.ndarray) -> DispatchDecision:
        cfg = self.config
        if cfg.backend is not None:
            if cfg.backend not in BACKENDS:
                raise ValueError(
                    f"unknown backend {cfg.backend!r}; options: {BACKENDS}"
                )
            return DispatchDecision(cfg.backend, "forced by config")
        n = len(coords)
        if n < max(2, cfg.min_gpu_batch):
            return DispatchDecision(
                "cpu", f"batch of {n} below min_gpu_batch={cfg.min_gpu_batch}"
            )
        if session.plan.lockstep is None:
            return DispatchDecision(
                "nonlockstep",
                session.plan.lockstep_unavailable_reason or "no lockstep variant",
            )
        sim = self.profile(session, coords)
        if sim.recommend_lockstep:
            return DispatchDecision(
                "lockstep", f"mean neighbor Jaccard {sim.mean_jaccard:.2f}", sim
            )
        return DispatchDecision(
            "nonlockstep", f"mean neighbor Jaccard {sim.mean_jaccard:.2f}", sim
        )

    def profile(self, session: TreeSession, coords: np.ndarray) -> TraversalSimilarity:
        """Sample neighboring queries' traversal similarity (Section 4.4).

        Probes run the recursive reference interpreter on a scratch
        context, so profiling never touches the batch's real results.
        """
        cfg = self.config
        scratch = session.make_batch_ctx(coords)
        probe = RecursiveInterpreter(session.app.spec, session.tree, scratch)
        n = len(coords)
        return sample_similarity(
            probe.run_point,
            n_points=n,
            n_samples=min(cfg.similarity_samples, n - 1),
            threshold=cfg.similarity_threshold,
            seed=cfg.seed,
        )

    # -- execution -------------------------------------------------------

    def execute(
        self, session: TreeSession, coords: np.ndarray, backend: str
    ) -> ExecOutcome:
        if backend == "cpu":
            return self._run_cpu(session, coords)
        if backend == "lockstep":
            layout = lockstep_stack_layout(session.tree, session.app.spec)
            return self._run_gpu(
                session, coords, session.plan.kernel(lockstep=True), layout, True
            )
        if backend == "nonlockstep":
            return self._run_gpu(
                session,
                coords,
                session.plan.kernel(lockstep=False),
                RopeStackLayout.INTERLEAVED_GLOBAL,
                False,
            )
        raise ValueError(f"unknown backend {backend!r}; options: {BACKENDS}")

    def _run_gpu(
        self,
        session: TreeSession,
        coords: np.ndarray,
        kernel,
        layout: RopeStackLayout,
        lockstep: bool,
    ) -> ExecOutcome:
        ctx = session.make_batch_ctx(coords)
        launch = TraversalLaunch(
            kernel=kernel,
            tree=session.tree,
            ctx=ctx,
            n_points=len(coords),
            device=self.config.device,
            stack_layout=layout,
        )
        executor = LockstepExecutor(launch) if lockstep else AutoropesExecutor(launch)
        result = executor.run()
        wexp = (
            float(result.work_expansion_per_warp().mean())
            if lockstep
            else float("nan")
        )
        return ExecOutcome(
            out=ctx.out,
            exec_ms=result.time_ms,
            avg_nodes=result.avg_nodes_per_point,
            work_expansion=wexp,
        )

    def _run_cpu(self, session: TreeSession, coords: np.ndarray) -> ExecOutcome:
        ctx = session.make_batch_ctx(coords)
        interp = RecursiveInterpreter(session.app.spec, session.tree, ctx)
        sequences = interp.run_points(range(len(coords)))
        timing = cpu_time_ms(
            sequences,
            threads=self.config.cpu_threads,
            config=self.config.cpu,
            visit_cost_scale=session.app.visit_cost_scale,
        )
        avg_nodes = float(np.mean([len(s) for s in sequences]))
        return ExecOutcome(out=ctx.out, exec_ms=timing.time_ms, avg_nodes=avg_nodes)
