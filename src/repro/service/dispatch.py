"""Adaptive variant dispatch: route each batch to its best backend.

Section 4.4's run-time story, applied per batch instead of per
dataset: after the batcher flushes and the batch is spatially
reordered, the dispatcher samples the similarity of *index-adjacent*
queries (the pairs that will share a warp) with
:func:`repro.core.profiling.sample_similarity` and routes the batch —

* ``lockstep``  — similar neighboring traversals: the warp-level union
  stays close to each member's own traversal, so perfectly coalesced
  lockstep wins (GPU, per-warp mask stacks, shared memory when the
  tree is shallow enough);
* ``nonlockstep`` — dissimilar traversals: work expansion would
  swamp the coalescing benefit, so each thread traverses independently
  (GPU, per-thread interleaved rope stacks);
* ``cpu`` — batches below ``min_gpu_batch``: a kernel launch cannot
  amortize over a handful of points, so the recursive interpreter
  serves them directly, priced by the CPU model.

Ragged batches launch as-is: the executors pad the trailing warp and
(since the padding fix in :mod:`repro.gpusim.warp`) charge no phantom
divergence for lanes that never held a query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.profiling import TraversalSimilarity, sample_similarity
from repro.cpusim.recursive import RecursiveInterpreter
from repro.cpusim.threads import cpu_time_ms
from repro.gpusim.executors import (
    AutoropesExecutor,
    LockstepExecutor,
    TraversalLaunch,
)
from repro.gpusim.faults import BatchFaultPlan, FaultInjector, InjectedBackendError
from repro.gpusim.kernel import VisitBudgetExceeded
from repro.gpusim.stack import (
    CorruptedRopeStack,
    RopeStackLayout,
    StackOverflowError,
    lockstep_stack_layout,
)
from repro.service.resilience import (
    STATE_OPEN,
    BackendUnavailable,
    BudgetExhausted,
    CircuitBreaker,
    DeadlineExceeded,
    RetryPolicy,
    ServiceError,
)
from repro.gpusim.trace import StepTrace
from repro.service.sessions import TreeSession
from repro.telemetry import NULL_TELEMETRY, Telemetry

BACKENDS = ("lockstep", "nonlockstep", "cpu")

#: graceful-degradation order: who serves a batch when its first-choice
#: backend fails or is breaker-open.  Ends at the modeled CPU, which
#: has no GPU failure modes and is never a chaos target by default.
FALLBACK_CHAIN: Dict[str, Tuple[str, ...]] = {
    "lockstep": ("lockstep", "nonlockstep", "cpu"),
    "nonlockstep": ("nonlockstep", "cpu"),
    "cpu": ("cpu",),
}


@dataclass(frozen=True)
class DispatchDecision:
    """Why a batch went where it went."""

    backend: str
    reason: str
    similarity: Optional[TraversalSimilarity] = None


@dataclass(frozen=True)
class ExecOutcome:
    """One executed batch: results plus the modeled cost facts."""

    out: Dict[str, np.ndarray]
    exec_ms: float
    avg_nodes: float
    work_expansion: Optional[float] = None
    #: per-step divergence/traffic trace (telemetry-enabled GPU runs).
    trace: Optional["StepTrace"] = None
    #: folded kernel counters for the metrics registry (telemetry only).
    kernel_stats: Optional[Dict[str, float]] = None


@dataclass
class ResilientOutcome:
    """One batch's journey through the resilience layer."""

    outcome: ExecOutcome
    #: the backend that finally answered.
    backend: str
    #: the dispatcher's first choice (decision.backend).
    requested: str
    #: total execution tries across all backends.
    attempts: int = 1
    #: modeled backoff delay accumulated before the answer (ms).
    delay_ms: float = 0.0
    #: (backend, ServiceError) per failed try, in order.
    failures: List[Tuple[str, ServiceError]] = field(default_factory=list)
    #: armed chaos fault names seen along the way.
    injected: List[str] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return self.backend != self.requested


def classify_fault(exc: Exception, backend: str, batch_id: int) -> ServiceError:
    """Map a raw executor exception onto the service error taxonomy."""
    if isinstance(exc, ServiceError):
        return exc
    if isinstance(exc, VisitBudgetExceeded):
        return BudgetExhausted(str(exc), backend=backend, batch_id=batch_id)
    if isinstance(exc, (InjectedBackendError, CorruptedRopeStack, StackOverflowError)):
        return BackendUnavailable(str(exc), backend=backend, batch_id=batch_id)
    # Anything else is an unexpected backend failure: contained, typed,
    # and routed to the fallback chain instead of wedging the batcher.
    return BackendUnavailable(
        f"{type(exc).__name__}: {exc}", backend=backend, batch_id=batch_id
    )


class AdaptiveDispatcher:
    """Routes batches by run-time similarity profiling and executes them.

    Beyond routing, the dispatcher owns the resilience machinery for
    the execution path: per-backend circuit breakers, retry with
    exponential backoff on the logical clock, deterministic chaos
    injection, and degraded-mode failover along ``FALLBACK_CHAIN``.
    """

    def __init__(
        self, config, telemetry: Telemetry = NULL_TELEMETRY, plans=None
    ) -> None:
        self.config = config
        self.telemetry = telemetry
        #: the shared PlanCache, so codegen launches store generated
        #: functions where invalidation/epoch bumps can reach them.
        self.plans = plans
        #: whether GPU launches record StepTrace for span step events
        #: (hoisted out of the batch path; False keeps launches exactly
        #: as before, so the off path stays byte-identical).
        self._want_trace = bool(
            telemetry.enabled
            and telemetry.tracer is not None
            and telemetry.config.step_events > 0
        )
        #: continuous kernel profiler (None unless telemetry enables it);
        #: hoisted so the unprofiled batch path pays one is-None check.
        self._profiler = telemetry.profiler if telemetry.enabled else None
        #: structured event log (None when telemetry is off); retries,
        #: breaker transitions, and chaos draws record through it.
        self._log = telemetry.log if telemetry.enabled else None
        chaos = getattr(config, "chaos", None)
        self.injector = (
            FaultInjector(chaos) if chaos is not None and chaos.enabled else None
        )
        self.retry = RetryPolicy(
            max_attempts=getattr(config, "retry_max_attempts", 1),
            backoff_base_ms=getattr(config, "retry_backoff_ms", 0.5),
            backoff_multiplier=getattr(config, "retry_backoff_multiplier", 2.0),
            jitter=getattr(config, "retry_jitter", 0.25),
            seed=getattr(config, "seed", 7),
        )
        self.breakers: Dict[str, CircuitBreaker] = {
            b: CircuitBreaker(
                b,
                failure_threshold=getattr(config, "breaker_threshold", 3),
                cooldown_ms=getattr(config, "breaker_cooldown_ms", 20.0),
                half_open_trials=getattr(config, "breaker_half_open_trials", 1),
            )
            for b in BACKENDS
        }
        if telemetry.enabled and telemetry.registry is not None:
            self._m_transitions = telemetry.registry.counter(
                "service_breaker_transitions_total",
                "circuit-breaker state changes",
                labels=("backend", "to"),
            )
            for brk in self.breakers.values():
                brk.on_transition = self._on_breaker_transition
        else:
            self._m_transitions = None

    def _on_breaker_transition(
        self, backend: str, old: str, new: str, now: float
    ) -> None:
        if self._m_transitions is not None:
            self._m_transitions.inc(backend=backend, to=new)
        tracer = self.telemetry.tracer
        if tracer is not None:
            tracer.instant(
                "breaker", "service", now, backend=backend, frm=old, to=new
            )
        if self._log is not None:
            self._log.warn(
                "breaker.transition", now, backend=backend, frm=old, to=new
            )

    # -- routing ---------------------------------------------------------

    def decide(self, session: TreeSession, coords: np.ndarray) -> DispatchDecision:
        cfg = self.config
        if cfg.backend is not None:
            if cfg.backend not in BACKENDS:
                raise ValueError(
                    f"unknown backend {cfg.backend!r}; options: {BACKENDS}"
                )
            return DispatchDecision(cfg.backend, "forced by config")
        n = len(coords)
        if n < max(2, cfg.min_gpu_batch):
            return DispatchDecision(
                "cpu", f"batch of {n} below min_gpu_batch={cfg.min_gpu_batch}"
            )
        if session.plan.lockstep is None:
            return DispatchDecision(
                "nonlockstep",
                session.plan.lockstep_unavailable_reason or "no lockstep variant",
            )
        sim = self.profile(session, coords)
        if sim.recommend_lockstep:
            return DispatchDecision(
                "lockstep", f"mean neighbor Jaccard {sim.mean_jaccard:.2f}", sim
            )
        return DispatchDecision(
            "nonlockstep", f"mean neighbor Jaccard {sim.mean_jaccard:.2f}", sim
        )

    def profile(self, session: TreeSession, coords: np.ndarray) -> TraversalSimilarity:
        """Sample neighboring queries' traversal similarity (Section 4.4).

        Probes run the recursive reference interpreter on a scratch
        context, so profiling never touches the batch's real results.
        """
        cfg = self.config
        scratch = session.make_batch_ctx(coords)
        probe = RecursiveInterpreter(session.app.spec, session.tree, scratch)
        n = len(coords)
        return sample_similarity(
            probe.run_point,
            n_points=n,
            n_samples=min(cfg.similarity_samples, n - 1),
            threshold=cfg.similarity_threshold,
            seed=cfg.seed,
        )

    # -- execution -------------------------------------------------------

    def execute(
        self,
        session: TreeSession,
        coords: np.ndarray,
        backend: str,
        fault_plan: Optional[BatchFaultPlan] = None,
    ) -> ExecOutcome:
        """Run one batch on ``backend`` (a single try, no failover)."""
        if backend == "cpu":
            return self._run_cpu(session, coords)
        if backend == "lockstep":
            layout = lockstep_stack_layout(session.tree, session.app.spec)
            return self._run_gpu(
                session, coords, session.plan.kernel(lockstep=True), layout, True,
                fault_plan,
            )
        if backend == "nonlockstep":
            return self._run_gpu(
                session,
                coords,
                session.plan.kernel(lockstep=False),
                RopeStackLayout.INTERLEAVED_GLOBAL,
                False,
                fault_plan,
            )
        raise ValueError(f"unknown backend {backend!r}; options: {BACKENDS}")

    def execute_resilient(
        self,
        session: TreeSession,
        coords: np.ndarray,
        decision: DispatchDecision,
        batch_id: int,
        now: float,
        deadline: Optional[float] = None,
    ) -> ResilientOutcome:
        """Execute with retries, breakers, and degraded-mode failover.

        Walks ``FALLBACK_CHAIN`` from the decision's backend; on each
        backend, tries up to ``retry.max_attempts`` times with
        exponential backoff (modeled delay on the logical clock).
        Breaker-open backends are skipped; every failure is recorded
        against its backend's breaker.  ``deadline`` is an absolute
        logical time: once backoff would cross it, the batch fails with
        :class:`DeadlineExceeded` rather than retrying into a lost
        cause.  Raises the last :class:`ServiceError` when the whole
        chain is exhausted (the caller resolves tickets with it).
        """
        requested = decision.backend
        failures: List[Tuple[str, ServiceError]] = []
        injected: List[str] = []
        attempts = 0
        delay = 0.0
        backend_idx = {b: i for i, b in enumerate(BACKENDS)}
        for backend in FALLBACK_CHAIN.get(requested, (requested,)):
            breaker = self.breakers[backend]
            if not breaker.allow(now + delay):
                failures.append(
                    (
                        backend,
                        BackendUnavailable(
                            f"circuit breaker open for {backend}",
                            backend=backend,
                            batch_id=batch_id,
                        ),
                    )
                )
                continue
            for attempt in range(self.retry.max_attempts):
                plan = None
                if self.injector is not None:
                    plan = self.injector.plan(batch_id, backend, attempt)
                    injected.extend(plan.events)
                    if plan.events and self._log is not None:
                        self._log.warn(
                            "chaos.fault", now + delay,
                            batch=batch_id, backend=backend,
                            attempt=attempt + 1, faults=list(plan.events),
                        )
                attempts += 1
                try:
                    outcome = self.execute(session, coords, backend, fault_plan=plan)
                except Exception as exc:  # contained: typed + failover
                    err = classify_fault(exc, backend, batch_id)
                    failures.append((backend, err))
                    breaker.record_failure(now + delay)
                    if breaker.state == STATE_OPEN:
                        break  # tripped mid-batch: move down the chain
                    if attempt + 1 >= self.retry.max_attempts:
                        break
                    backoff = self.retry.backoff_ms(
                        attempt, key=(batch_id, backend_idx[backend])
                    )
                    if deadline is not None and now + delay + backoff >= deadline:
                        deadline_err = DeadlineExceeded(
                            f"deadline passed after {attempts} tries "
                            f"({len(failures)} failures); last: {err.message}",
                            backend=backend,
                            batch_id=batch_id,
                        )
                        # Carried so the caller can dump a flight
                        # timeline per injected fault even when the
                        # batch never produced a ResilientOutcome.
                        deadline_err.injected = list(injected)
                        raise deadline_err from err
                    delay += backoff
                    tracer = self.telemetry.tracer
                    if tracer is not None:
                        tracer.instant(
                            "retry", "batch", now + delay,
                            batch=batch_id, backend=backend,
                            attempt=attempt + 1, backoff_ms=backoff,
                            error=err.code,
                        )
                    if self._log is not None:
                        self._log.warn(
                            "retry", now + delay,
                            batch=batch_id, backend=backend,
                            attempt=attempt + 1, backoff_ms=backoff,
                            error=err.code,
                        )
                else:
                    breaker.record_success(now + delay)
                    return ResilientOutcome(
                        outcome=outcome,
                        backend=backend,
                        requested=requested,
                        attempts=attempts,
                        delay_ms=delay,
                        failures=failures,
                        injected=injected,
                    )
        last = failures[-1][1] if failures else None
        exhausted = BackendUnavailable(
            f"all backends exhausted for batch {batch_id} "
            f"({attempts} tries, {len(failures)} failures)"
            + (f"; last: {last.message}" if last else ""),
            backend=requested,
            batch_id=batch_id,
        )
        exhausted.injected = list(injected)
        raise exhausted

    def breaker_snapshots(self):
        return {b: brk.snapshot() for b, brk in self.breakers.items()}

    def _run_gpu(
        self,
        session: TreeSession,
        coords: np.ndarray,
        kernel,
        layout: RopeStackLayout,
        lockstep: bool,
        fault_plan: Optional[BatchFaultPlan] = None,
    ) -> ExecOutcome:
        ctx = session.make_batch_ctx(coords)
        device = self.config.device
        if fault_plan is not None and fault_plan.latency_factor != 1.0:
            device = device.derate(fault_plan.latency_factor)
        # Engine knobs resolve session override -> service config, so
        # the dispatch path is *explicitly* on the compiled engine (or
        # the interp baseline) instead of inheriting launch defaults.
        engine = session.engine or getattr(self.config, "engine", "compiled")
        compact = session.compact_threshold
        if compact is None:
            compact = getattr(self.config, "compact_threshold", 0.9)
        profiler = self._profiler
        prof = None
        if profiler is not None and profiler.should_sample():
            prof = profiler.begin(session.tree)
        use_codegen = engine == "codegen" and self.plans is not None
        launch = TraversalLaunch(
            kernel=kernel,
            tree=session.tree,
            ctx=ctx,
            n_points=len(coords),
            device=device,
            stack_layout=layout,
            visit_budget=getattr(self.config, "visit_budget", None),
            fault_plan=fault_plan,
            engine=engine,
            compact_threshold=compact,
            trace=self._want_trace,
            op_profile=prof,
            # Generated functions are owned by the shared plan cache,
            # keyed by plan generation: refresh_plan's epoch bump and
            # failure-driven invalidation drop them with the plan.
            codegen_cache=self.plans if use_codegen else None,
            codegen_key=(
                (session.plan_key, session.plan_epoch)
                if use_codegen
                else None
            ),
        )
        executor = LockstepExecutor(launch) if lockstep else AutoropesExecutor(launch)
        result = executor.run()
        if prof is not None:
            # Fold only completed launches: a faulted launch's partial
            # attribution would skew the per-op aggregate.
            profiler.fold(session.name, prof, device=device)
        wexp = (
            float(result.work_expansion_per_warp().mean()) if lockstep else None
        )
        kernel_stats = None
        if self.telemetry.enabled:
            s = result.stats
            kernel_stats = {
                "steps": float(s.steps),
                "node_visits": float(s.node_visits),
                "warp_node_visits": float(s.warp_node_visits),
                "warp_instructions": float(s.warp_instructions),
                "divergent_instructions": float(s.divergent_instructions),
                "global_transactions": float(s.global_transactions),
                "l2_hit_transactions": float(s.l2_hit_transactions),
                "dram_bytes": float(s.dram_bytes),
                "stack_ops": float(s.stack_ops),
            }
        return ExecOutcome(
            out=ctx.out,
            exec_ms=result.time_ms,
            avg_nodes=result.avg_nodes_per_point,
            work_expansion=wexp,
            trace=result.trace,
            kernel_stats=kernel_stats,
        )

    def _run_cpu(self, session: TreeSession, coords: np.ndarray) -> ExecOutcome:
        ctx = session.make_batch_ctx(coords)
        interp = RecursiveInterpreter(session.app.spec, session.tree, ctx)
        sequences = interp.run_points(range(len(coords)))
        timing = cpu_time_ms(
            sequences,
            threads=self.config.cpu_threads,
            config=self.config.cpu,
            visit_cost_scale=session.app.visit_cost_scale,
        )
        avg_nodes = float(np.mean([len(s) for s in sequences]))
        return ExecOutcome(out=ctx.out, exec_ms=timing.time_ms, avg_nodes=avg_nodes)
