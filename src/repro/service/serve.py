"""Serve mode: the service behind pull-based HTTP telemetry endpoints.

``python -m repro.service --serve`` keeps a :class:`TraversalService`
alive behind a stdlib :class:`~http.server.ThreadingHTTPServer` (no
third-party dependencies) so scrapers and probes can *pull* state the
way production monitoring does:

* ``GET /metrics``  — Prometheus text exposition of the full registry;
* ``GET /healthz``  — readiness JSON from
  :meth:`~repro.service.service.TraversalService.health` (HTTP 503
  while degraded: an open breaker, a saturated queue, or an SLO fast
  burn);
* ``GET /statsz``   — the strict-JSON
  :class:`~repro.service.stats.ServiceStats` snapshot;
* ``GET /profilez`` — the continuous kernel profiler's ranked hot-op
  and per-depth attribution (:meth:`KernelProfiler.snapshot`);
* ``GET /tracez``   — the most recent spans (``?limit=N``) plus the
  tracer's drop counter;
* ``GET /logz``     — the structured event log (``?limit=N``,
  ``?level=warn`` severity floor, ``?trace_id=...`` correlation
  filter) — the logging pillar joined to traces on trace ids;
* ``GET /debugz``   — one strict-JSON diagnostics snapshot: config,
  engines, plan cache, breaker states, flight dumps, recent errors.

The service itself stays single-threaded in spirit: every handler and
the optional synthetic-load driver serialize on one
:class:`threading.RLock`, so the logical clock and all counters keep
their deterministic semantics; HTTP threading only overlaps socket I/O.

Shutdown is graceful by contract: :meth:`TraversalServer.shutdown`
stops the load driver, then force-flushes every pending query under
the lock (drain-or-fail — each ticket resolves with a result or a
typed error, never silently dropped) before the listener closes.  The
CLI wires SIGTERM/SIGINT to exactly this path.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.service.resilience import ServiceError
from repro.service.service import TraversalService
from repro.telemetry import LEVELS
from repro.telemetry.metrics import OPENMETRICS_CONTENT_TYPE

#: OpenMetrics exposition content type — the format the registry emits
#: (exemplars require it; a real Prometheus negotiates and parses it).
METRICS_CONTENT_TYPE = OPENMETRICS_CONTENT_TYPE
JSON_CONTENT_TYPE = "application/json; charset=utf-8"

#: default span count returned by /tracez (override with ?limit=N).
TRACEZ_DEFAULT_LIMIT = 256

#: default record count returned by /logz (override with ?limit=N).
LOGZ_DEFAULT_LIMIT = 256


class SyntheticLoadDriver(threading.Thread):
    """Background query generator for serve mode.

    Each wall-clock tick advances the *logical* clock by ``tick_ms``
    and submits ``queries_per_tick`` seeded random queries round-robin
    across the registered sessions, so a scraped ``/metrics`` shows a
    live, moving system.  Determinism: the submitted coordinates and
    logical timestamps depend only on the seed and tick count, never
    on wall time — wall time only paces the loop.
    """

    def __init__(
        self,
        service: TraversalService,
        lock: threading.RLock,
        *,
        seed: int = 7,
        tick_ms: float = 2.0,
        queries_per_tick: int = 8,
        interval_s: float = 0.05,
        record: Optional[List] = None,
    ) -> None:
        super().__init__(name="serve-load-driver", daemon=True)
        if tick_ms <= 0:
            raise ValueError(f"tick_ms must be positive, got {tick_ms}")
        if queries_per_tick < 0:
            raise ValueError(
                f"queries_per_tick must be >= 0, got {queries_per_tick}"
            )
        self.service = service
        self.lock = lock
        self.tick_ms = float(tick_ms)
        self.queries_per_tick = int(queries_per_tick)
        self.interval_s = float(interval_s)
        self.ticks = 0
        self.submitted = 0
        self.rejected = 0
        #: when given, every admitted ticket is appended here — the
        #: fleet benchmark audits load-driver traffic ticket by ticket.
        self.record = record
        # NB: not "_stop" — that would shadow threading.Thread._stop().
        self._halt = threading.Event()
        self._rng = np.random.default_rng(seed)
        with lock:
            names = service.registry.names()
            self._pools = {}
            for name in names:
                data = service.registry.get(name).data
                jitter = self._rng.normal(scale=0.01, size=data.shape)
                self._pools[name] = np.clip(
                    data + jitter, data.min(axis=0), data.max(axis=0)
                )
        self._names = list(names)

    def run(self) -> None:
        while not self._halt.is_set():
            self.tick()
            self._halt.wait(self.interval_s)

    def tick(self) -> None:
        """One load step (public so tests can drive it synchronously)."""
        if not self._names:
            return
        with self.lock:
            now = self.service.now_ms + self.tick_ms
            self.service.advance(now)
            for i in range(self.queries_per_tick):
                name = self._names[(self.ticks + i) % len(self._names)]
                pool = self._pools[name]
                coord = pool[int(self._rng.integers(len(pool)))]
                try:
                    ticket = self.service.submit(name, coord, now=now)
                    self.submitted += 1
                    if self.record is not None:
                        self.record.append(ticket)
                except ServiceError:
                    # Admission control refused it; the client saw a
                    # typed error and nothing was queued.
                    self.rejected += 1
            self.ticks += 1

    def stop(self, timeout: float = 5.0) -> None:
        self._halt.set()
        if self.is_alive():
            self.join(timeout)


class TraversalServer:
    """HTTP front-end owning one service and one lock (see module doc)."""

    def __init__(
        self,
        service: TraversalService,
        host: str = "127.0.0.1",
        port: int = 0,
        driver: Optional[SyntheticLoadDriver] = None,
        otlp=None,
    ) -> None:
        self.service = service
        self.lock = threading.RLock()
        self.host = host
        self.port = port
        self.driver = driver
        #: optional repro.telemetry.OTLPExporter; single-process egress
        #: pulls from the tracer's outbox on the exporter's own thread.
        self.otlp = otlp
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._shut = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind, start serving on a daemon thread, start the driver.

        Returns the bound ``(host, port)`` — with ``port=0`` the OS
        picks a free one, which the smoke tests rely on.
        """
        if self._httpd is not None:
            raise RuntimeError("server already started")
        server = self

        class _Handler(BaseHTTPRequestHandler):
            server_version = "repro-serve/1.0"
            protocol_version = "HTTP/1.1"

            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                try:
                    status, ctype, body = server.respond(self.path)
                except Exception as exc:  # defensive: a handler bug
                    # must answer 500, not kill the connection thread.
                    status, ctype = 500, JSON_CONTENT_TYPE
                    body = json.dumps({"error": repr(exc)}).encode()
                self.send_response(status)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt, *args) -> None:
                pass  # keep scrape traffic off stderr

        self._httpd = ThreadingHTTPServer((self.host, self.port), _Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="serve-http",
            daemon=True,
        )
        self._thread.start()
        if self.otlp is not None:
            tel = self.service.telemetry
            tracer = tel.tracer
            if tracer is not None:
                tracer.enable_outbox()

                def _harvest():
                    with self.lock:
                        return tracer.drain_outbox()

                self.otlp.source = _harvest
            log = tel.log
            if log is not None:
                log.enable_outbox()

                def _harvest_logs():
                    with self.lock:
                        return log.drain_outbox()

                self.otlp.log_source = _harvest_logs
            if tel.registry is not None:
                registry = tel.registry

                def _metrics_snapshot():
                    with self.lock:
                        return registry.to_dict()

                self.otlp.metrics_source = _metrics_snapshot
                self.otlp.clock = lambda: self.service.now_ms
            self.otlp.start()
        if self.driver is not None:
            self.driver.start()
        return self.host, self.port

    def shutdown(self, drain: bool = True) -> None:
        """Graceful stop: driver off, pending queries drained, listener
        closed.  Idempotent — signal handler and finally-block may race
        to call it."""
        if self._shut:
            return
        self._shut = True
        if self.driver is not None:
            self.driver.stop()
        if drain:
            with self.lock:
                # Drain-or-fail: every queued ticket resolves (result
                # or typed error) before the process exits.
                self.service.flush()
        if self.otlp is not None:
            # After the drain every span is finished; one final flush
            # ships them, then the exporter thread stops.
            self.otlp.stop(flush=True)
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "TraversalServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- routing ---------------------------------------------------------

    def respond(self, path: str) -> Tuple[int, str, bytes]:
        """Route one GET; returns ``(status, content_type, body)``.

        Pure function of the service state under the lock — handlers
        and tests share it, so endpoint behavior is testable without
        sockets.
        """
        parts = urlsplit(path)
        query = parse_qs(parts.query)
        route = parts.path.rstrip("/") or "/"
        if route == "/metrics":
            return self._metrics()
        if route == "/healthz":
            return self._healthz()
        if route == "/statsz":
            return self._statsz(query)
        if route == "/profilez":
            return self._profilez()
        if route == "/tracez":
            return self._tracez(query)
        if route == "/logz":
            return self._logz(query)
        if route == "/debugz":
            return self._debugz()
        return self._json(
            404,
            {
                "error": f"no route {parts.path!r}",
                "routes": [
                    "/metrics", "/healthz", "/statsz", "/profilez",
                    "/tracez", "/logz", "/debugz",
                ],
            },
        )

    @staticmethod
    def _parse_limit(query: dict, default: Optional[int]):
        """``?limit=N`` → (limit, error_payload).  Malformed or negative
        values are a client error (400 + JSON body), never a traceback.
        """
        if "limit" not in query:
            return default, None
        raw = query["limit"][-1]
        try:
            limit = int(raw)
        except ValueError:
            return None, {"error": f"limit must be an integer, got {raw!r}"}
        if limit < 0:
            return None, {"error": f"limit must be >= 0, got {limit}"}
        return limit, None

    @staticmethod
    def _json(status: int, payload: dict) -> Tuple[int, str, bytes]:
        # allow_nan=False: the exports are NaN-free by design (see
        # repro.service.stats) and a standards-strict scraper must
        # never receive a bare NaN token.
        body = json.dumps(
            payload, indent=2, allow_nan=False, default=_jsonable
        ).encode()
        return status, JSON_CONTENT_TYPE, body

    def _metrics(self) -> Tuple[int, str, bytes]:
        tel = self.service.telemetry
        if not tel.enabled or tel.registry is None:
            return self._json(
                503, {"error": "metrics disabled (telemetry off)"}
            )
        if self.otlp is not None:
            self.otlp.sync_metrics(tel.registry)
        with self.lock:
            text = tel.registry.expose_text()
        return 200, METRICS_CONTENT_TYPE, text.encode()

    def _healthz(self) -> Tuple[int, str, bytes]:
        with self.lock:
            health = self.service.health()
        return self._json(200 if health["ok"] else 503, health)

    def _statsz(self, query: dict) -> Tuple[int, str, bytes]:
        _, bad = self._parse_limit(query, None)
        if bad is not None:
            return self._json(400, bad)
        with self.lock:
            payload = self.service.stats().to_dict()
        if self.otlp is not None:
            payload["otlp"] = self.otlp.stats()
        return self._json(200, payload)

    def _profilez(self) -> Tuple[int, str, bytes]:
        profiler = self.service.telemetry.profiler
        if profiler is None:
            return self._json(
                200, {"enabled": False, "reason": "profile_sample_rate=0"}
            )
        with self.lock:
            snap = profiler.snapshot()
        snap["enabled"] = True
        return self._json(200, snap)

    def _tracez(self, query: dict) -> Tuple[int, str, bytes]:
        tracer = self.service.telemetry.tracer
        if tracer is None:
            return self._json(
                200, {"enabled": False, "spans": [], "dropped": 0}
            )
        limit, bad = self._parse_limit(query, TRACEZ_DEFAULT_LIMIT)
        if bad is not None:
            return self._json(400, bad)
        with self.lock:
            spans = tracer.spans()
            payload = {
                "enabled": True,
                "total_spans": len(spans),
                "dropped": tracer.dropped,
                "spans": [s.to_dict() for s in spans[-limit:]] if limit else [],
            }
        return self._json(200, payload)

    def _logz(self, query: dict) -> Tuple[int, str, bytes]:
        """Structured event log; ``?limit=N`` caps the record list,
        ``?level=warn`` is a severity floor, ``?trace_id=...`` filters
        to one trace's records."""
        log = self.service.telemetry.log
        if log is None:
            return self._json(
                200,
                {"enabled": False, "records": [],
                 "recorded": 0, "dropped": 0},
            )
        limit, bad = self._parse_limit(query, LOGZ_DEFAULT_LIMIT)
        if bad is not None:
            return self._json(400, bad)
        level = query.get("level", [None])[-1]
        if level is not None and level not in LEVELS:
            return self._json(
                400,
                {"error": f"level must be one of {list(LEVELS)}, "
                          f"got {level!r}"},
            )
        trace_id = query.get("trace_id", [None])[-1]
        with self.lock:
            payload = {
                "enabled": True,
                "recorded": log.recorded,
                "dropped": log.dropped,
                "records": log.records(
                    level=level, trace_id=trace_id, limit=limit
                ),
            }
        return self._json(200, payload)

    def _debugz(self) -> Tuple[int, str, bytes]:
        """One strict-JSON diagnostics snapshot: config, engines, plan
        cache, breaker states, flight dumps, and the most recent
        error-level records with their trace ids."""
        from dataclasses import asdict

        svc = self.service
        tel = svc.telemetry
        with self.lock:
            stats = svc.stats().to_dict()
            health = svc.health()
            errors = (
                tel.log.records(level="error", limit=20)
                if tel.log is not None else []
            )
            payload = {
                "config": asdict(svc.config),
                "now_ms": svc.now_ms,
                "sessions": svc.registry.names(),
                "engines": stats.get("backends"),
                "plan_cache": stats.get("plan_cache"),
                "breakers": health["checks"]["breakers"],
                "queue": health["checks"]["queue"],
                "telemetry": {
                    "enabled": tel.enabled,
                    "spans_recorded": (
                        len(tel.tracer) if tel.tracer is not None else 0
                    ),
                    "log_records": (
                        tel.log.recorded if tel.log is not None else 0
                    ),
                    "flight_dumps": (
                        tel.flight.to_dict() if tel.flight is not None
                        else None
                    ),
                },
                "otlp": self.otlp.stats() if self.otlp is not None else None,
                "recent_errors": errors,
            }
        return self._json(200, payload)


def _jsonable(obj):
    """JSON fallback for numpy scalars and stray non-JSON leaves."""
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    return str(obj)


def run_serve(
    server: TraversalServer,
    *,
    duration_s: Optional[float] = None,
    announce=print,
) -> int:
    """Blocking serve loop with SIGTERM/SIGINT graceful drain.

    Runs until a signal arrives (or ``duration_s`` elapses, for
    scripted smoke runs), then shuts the server down with a full
    drain.  Returns a process exit code.
    """
    stop = threading.Event()
    previous = {}

    def _on_signal(signum, frame) -> None:
        stop.set()

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, _on_signal)
        except ValueError:
            # Not the main thread (tests drive run_serve directly):
            # rely on duration_s / stop alone.
            pass
    host, port = server.start()
    announce(
        f"serving on http://{host}:{port} "
        "(/metrics /healthz /statsz /profilez /tracez /logz /debugz) — "
        "SIGTERM or Ctrl-C drains and exits"
    )
    deadline = time.monotonic() + duration_s if duration_s else None
    try:
        while not stop.is_set():
            if deadline is not None and time.monotonic() >= deadline:
                break
            stop.wait(0.1)
    finally:
        server.shutdown(drain=True)
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    with server.lock:
        pending = server.service.queue_depth
    announce(f"drained and stopped (pending queries after drain: {pending})")
    return 0 if pending == 0 else 1
