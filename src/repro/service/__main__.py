"""Demo / load-generator CLI: ``python -m repro.service [--demo]``.

Simulates an online serving session end-to-end on the logical clock:

1. registers two sessions (point correlation over a clustered
   "geocity"-like dataset; kNN over a uniform random dataset) through
   the shared plan cache;
2. replays a mixed arrival trace — a spatially *coherent* phase (a
   client sweeping a region, queries arriving in Morton order), a
   *shuffled* phase (uncorrelated global traffic), and a trickle of
   stragglers whose batches time out small enough to route to the CPU
   backend;
3. prints the :class:`~repro.service.stats.ServiceStats` snapshot and
   an A/B line showing what the batch spatial reorder bought versus
   dispatching in arrival order.

Everything is modeled (no wall-clock, no GPU): times come from the
same cost models the experiment harness uses.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.points.datasets import dataset_by_name
from repro.points.sorting import morton_order
from repro.service.service import SORT_MODES, ServiceConfig, TraversalService


def build_service(cfg: ServiceConfig, n_data: int, seed: int) -> TraversalService:
    svc = TraversalService(cfg)
    geo = dataset_by_name("geocity", n_data, seed=seed)
    rnd = dataset_by_name("random", n_data, seed=seed + 1)
    svc.register("pc-geocity", app="pc", data=geo.points, radius=0.1, leaf_size=4)
    svc.register("knn-random", app="knn", data=rnd.points, k=4, leaf_size=4)
    return svc


def generate_trace(svc: TraversalService, n_queries: int, seed: int) -> None:
    """Replay the mixed arrival trace against ``svc``."""
    rng = np.random.default_rng(seed)
    sessions = ["pc-geocity", "knn-random"]
    pools = {}
    for name in sessions:
        data = svc.registry.get(name).data
        jitter = rng.normal(scale=0.01, size=data.shape)
        pools[name] = np.clip(data + jitter, data.min(axis=0), data.max(axis=0))

    now = 0.0
    per_session = n_queries // len(sessions)
    for name in sessions:
        pool = pools[name]
        half = per_session // 2
        coherent = pool[morton_order(pool)][:half]
        shuffled = pool[rng.permutation(len(pool))][:half]
        for stream in (coherent, shuffled):
            for coord in stream:
                now += float(rng.exponential(0.002))
                svc.advance(now)
                svc.submit(name, coord, now=now)
    # Stragglers: sparse arrivals whose windows expire under-filled —
    # these exercise the CPU backend via timeout flushes.
    for i in range(6):
        name = sessions[i % len(sessions)]
        now += svc.config.max_wait_ms * 2.0
        svc.advance(now)
        svc.submit(name, pools[name][rng.integers(len(pools[name]))], now=now)
    svc.advance(now + svc.config.max_wait_ms * 2.0)
    svc.flush()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.service")
    parser.add_argument(
        "--demo", action="store_true",
        help="run the load-generated demo session (default action)",
    )
    parser.add_argument("--queries", type=int, default=1024, help="trace length")
    parser.add_argument("--data", type=int, default=4096, help="dataset size")
    parser.add_argument("--max-batch", type=int, default=256)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--sort", choices=SORT_MODES, default="morton")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    cfg = ServiceConfig(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        sort=args.sort,
        seed=args.seed,
    )

    print(f"== online traversal service demo (sort={cfg.sort}) ==")
    svc = build_service(cfg, args.data, args.seed)
    generate_trace(svc, args.queries, args.seed)
    stats = svc.stats()
    print(stats.format())

    # A/B: the identical trace dispatched in arrival order.
    base = build_service(cfg.with_(sort="arrival"), args.data, args.seed)
    generate_trace(base, args.queries, args.seed)
    base_stats = base.stats()
    delta = base_stats.total_exec_ms - stats.total_exec_ms
    pct = 100.0 * delta / base_stats.total_exec_ms if base_stats.total_exec_ms else 0.0
    print(
        f"\nspatial sort A/B: arrival-order exec {base_stats.total_exec_ms:.4f} ms "
        f"-> {cfg.sort} {stats.total_exec_ms:.4f} ms ({pct:+.1f}% saved)"
    )
    # GPU-side delta: the straggler batches route to the CPU backend in
    # both runs, so the sort's real effect shows in the GPU backends.
    gpu = lambda s: s.total_exec_ms - s.backends["cpu"].total_exec_ms
    base_gpu, sorted_gpu = gpu(base_stats), gpu(stats)
    gpu_pct = 100.0 * (base_gpu - sorted_gpu) / base_gpu if base_gpu else 0.0
    print(
        f"GPU backends only:  arrival-order exec {base_gpu:.4f} ms "
        f"-> {cfg.sort} {sorted_gpu:.4f} ms ({gpu_pct:+.1f}% saved)"
    )
    print(f"backends exercised: {stats.backends_exercised}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
