"""Demo / load-generator CLI: ``python -m repro.service [--demo|--chaos|--serve]``.

Simulates an online serving session end-to-end on the logical clock:

1. registers two sessions (point correlation over a clustered
   "geocity"-like dataset; kNN over a uniform random dataset) through
   the shared plan cache;
2. replays a mixed arrival trace — a spatially *coherent* phase (a
   client sweeping a region, queries arriving in Morton order), a
   *shuffled* phase (uncorrelated global traffic), and a trickle of
   stragglers whose batches time out small enough to route to the CPU
   backend;
3. prints the :class:`~repro.service.stats.ServiceStats` snapshot and
   an A/B line showing what the batch spatial reorder bought versus
   dispatching in arrival order.

``--chaos`` arms the deterministic fault injector
(:class:`~repro.gpusim.faults.ChaosConfig`; seed from ``--chaos-seed``
or the ``REPRO_CHAOS_SEED`` environment variable) and verifies the
resilience layer's contract after the run: every submitted query must
resolve — with an oracle-checked result (brute force, ``np.allclose``)
or a typed error — no matter how many injected failures, retries,
breaker trips, and degraded-mode failovers it took.  The process exits
non-zero if any query is lost or any served result is wrong.

``--serve`` switches to live serve mode (``docs/OBSERVABILITY.md``):
the service stays up behind HTTP pull endpoints (``/metrics``,
``/healthz``, ``/statsz``, ``/profilez``, ``/tracez``) with a
synthetic load driver ticking the logical clock, until SIGTERM/SIGINT
triggers a graceful drain.  Telemetry is implied on; the continuous
kernel profiler and SLO burn-rate tracking activate via their flags.

Everything is modeled (no wall-clock, no GPU): times come from the
same cost models the experiment harness uses.  In serve mode wall
time only *paces* the load driver — the modeled clock still advances
deterministically per tick.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List

import numpy as np

from repro.gpusim.faults import ChaosConfig
from repro.points.datasets import dataset_by_name
from repro.points.sorting import morton_order
from repro.service.batcher import QueryTicket
from repro.service.resilience import ServiceError
from repro.service.service import (
    ENGINES,
    SHED_POLICIES,
    SORT_MODES,
    ServiceConfig,
    TraversalService,
)
from repro.telemetry import SLOConfig, TelemetryConfig


def build_service(cfg: ServiceConfig, n_data: int, seed: int) -> TraversalService:
    svc = TraversalService(cfg)
    geo = dataset_by_name("geocity", n_data, seed=seed)
    rnd = dataset_by_name("random", n_data, seed=seed + 1)
    svc.register("pc-geocity", app="pc", data=geo.points, radius=0.1, leaf_size=4)
    svc.register("knn-random", app="knn", data=rnd.points, k=4, leaf_size=4)
    return svc


def generate_trace(
    svc: TraversalService, n_queries: int, seed: int
) -> List[QueryTicket]:
    """Replay the mixed arrival trace against ``svc``; every admitted
    query's ticket is returned so callers can audit the outcome."""
    rng = np.random.default_rng(seed)
    sessions = ["pc-geocity", "knn-random"]
    pools = {}
    for name in sessions:
        data = svc.registry.get(name).data
        jitter = rng.normal(scale=0.01, size=data.shape)
        pools[name] = np.clip(data + jitter, data.min(axis=0), data.max(axis=0))

    tickets: List[QueryTicket] = []

    def submit(name: str, coord, now: float) -> None:
        try:
            tickets.append(svc.submit(name, coord, now=now))
        except ServiceError:
            # Admission control refused it (reject-new at the queue
            # cap): the client saw a typed error, nothing was queued.
            pass

    now = 0.0
    per_session = n_queries // len(sessions)
    for name in sessions:
        pool = pools[name]
        half = per_session // 2
        coherent = pool[morton_order(pool)][:half]
        shuffled = pool[rng.permutation(len(pool))][:half]
        for stream in (coherent, shuffled):
            for coord in stream:
                now += float(rng.exponential(0.002))
                svc.advance(now)
                submit(name, coord, now)
    # Stragglers: sparse arrivals whose windows expire under-filled —
    # these exercise the CPU backend via timeout flushes.
    for i in range(6):
        name = sessions[i % len(sessions)]
        now += svc.config.max_wait_ms * 2.0
        svc.advance(now)
        submit(name, pools[name][rng.integers(len(pools[name]))], now)
    svc.advance(now + svc.config.max_wait_ms * 2.0)
    svc.flush()
    return tickets


def verify_tickets(svc: TraversalService, tickets: List[QueryTicket]):
    """Audit the resilience contract over a finished trace.

    Returns ``(lost, wrong, ok, failed)``: tickets that never resolved,
    served results that disagree with the brute-force oracle, and the
    ok/typed-error split.  Served results are grouped per session and
    oracle-checked in one vectorized pass.
    """
    lost = [t for t in tickets if not t.done]
    ok = [t for t in tickets if t.ok]
    failed = [t for t in tickets if t.error is not None]
    wrong: List[QueryTicket] = []
    by_session = {}
    for t in ok:
        by_session.setdefault(t.session, []).append(t)
    for name, group in by_session.items():
        sess = svc.registry.get(name)
        coords = np.stack([t.coords for t in group])
        expected = sess.oracle(coords)
        for i, t in enumerate(group):
            for key, exp in expected.items():
                got = t.result[key]
                if np.issubdtype(np.asarray(exp[i]).dtype, np.floating):
                    good = np.allclose(got, exp[i], rtol=1e-9, atol=1e-9)
                else:
                    good = np.array_equal(got, exp[i])
                if not good:
                    wrong.append(t)
                    break
    return lost, wrong, ok, failed


def write_telemetry_outputs(svc: TraversalService, args) -> None:
    """Write the --trace-out/--metrics-out/--flight-out artifacts."""
    tel = svc.telemetry
    if not tel.enabled:
        return
    if args.trace_out and tel.tracer is not None:
        trace = tel.tracer.chrome_trace(close_open_at=svc.now_ms)
        with open(args.trace_out, "w") as f:
            json.dump(trace, f)
        if not args.as_json:
            print(
                f"chrome trace: {len(trace['traceEvents'])} events "
                f"-> {args.trace_out}"
            )
    if args.metrics_out and tel.registry is not None:
        if args.metrics_out.endswith(".json"):
            payload = json.dumps(tel.registry.to_dict(), indent=2) + "\n"
        else:
            payload = tel.registry.expose_text()
        with open(args.metrics_out, "w") as f:
            f.write(payload)
        if not args.as_json:
            print(
                f"metrics: {len(tel.registry)} instruments -> {args.metrics_out}"
            )
    if args.flight_out and tel.flight is not None:
        with open(args.flight_out, "w") as f:
            json.dump(tel.flight.to_dict(), f, indent=2)
        if not args.as_json:
            print(
                f"flight recorder: {len(tel.flight.dumps)} dumps "
                f"-> {args.flight_out}"
            )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.service")
    parser.add_argument(
        "--demo", action="store_true",
        help="run the load-generated demo session (default action)",
    )
    parser.add_argument("--queries", type=int, default=1024, help="trace length")
    parser.add_argument("--data", type=int, default=4096, help="dataset size")
    parser.add_argument("--max-batch", type=int, default=256)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--sort", choices=SORT_MODES, default="morton")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the stats snapshot as JSON instead of the text report",
    )
    eng = parser.add_argument_group("execution engine")
    eng.add_argument(
        "--engine", choices=ENGINES, default="compiled",
        help="GPU execution engine for dispatched batches",
    )
    eng.add_argument(
        "--compact-threshold", type=float, default=0.9,
        help="frontier-compaction trigger for GPU launches",
    )
    eng.add_argument(
        "--dump-source", metavar="DIR",
        help="with --engine codegen: write every emitted step-loop "
        "source into DIR as <kernel>.<kind>.py",
    )
    eng.add_argument(
        "--memo-capacity", type=int, default=256,
        help="per-session traversal-result memo size (0 = off)",
    )
    eng.add_argument(
        "--memo-quantum", type=float, default=0.0,
        help="memo coordinate quantization grid (0 = exact match)",
    )
    tel = parser.add_argument_group("telemetry (see docs/OBSERVABILITY.md)")
    tel.add_argument(
        "--telemetry", action="store_true",
        help="enable the telemetry layer (implied by the --*-out flags)",
    )
    tel.add_argument(
        "--trace-out", metavar="PATH",
        help="write spans as Chrome trace_event JSON (chrome://tracing)",
    )
    tel.add_argument(
        "--metrics-out", metavar="PATH",
        help="write the metrics registry (.json -> JSON export, "
        "anything else -> Prometheus text exposition)",
    )
    tel.add_argument(
        "--flight-out", metavar="PATH",
        help="write flight-recorder rings + failure dumps as JSON",
    )
    tel.add_argument(
        "--step-events", type=int, default=32,
        help="max StepTrace samples attached per launch span",
    )
    tel.add_argument(
        "--flight-capacity", type=int, default=64,
        help="flight-recorder ring size per session (>= 1)",
    )
    tel.add_argument(
        "--profile-sample-rate", type=int, default=0,
        help="continuous kernel profiler: profile every N-th GPU "
        "launch (0 = off; serve mode defaults to 1)",
    )
    tel.add_argument(
        "--profile-top-k", type=int, default=10,
        help="hot-op entries exported per session",
    )
    serve = parser.add_argument_group("serve mode (pull-based telemetry)")
    serve.add_argument(
        "--serve", action="store_true",
        help="stay up behind HTTP pull endpoints until SIGTERM/SIGINT",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8321,
        help="listen port (0 = let the OS pick a free one)",
    )
    serve.add_argument(
        "--serve-duration", type=float, default=None, metavar="SECONDS",
        help="exit (with a graceful drain) after this long — for "
        "scripted smoke runs; default: run until signalled",
    )
    serve.add_argument(
        "--load-queries-per-tick", type=int, default=32,
        help="synthetic load per driver tick (0 = no load driver); "
        "the default is sized so timeout flushes reach min_gpu_batch "
        "and exercise the GPU backends (and thus the profiler)",
    )
    serve.add_argument(
        "--load-tick-ms", type=float, default=2.0,
        help="logical milliseconds the clock advances per driver tick",
    )
    serve.add_argument(
        "--otlp-endpoint", default=None, metavar="URL",
        help="OTLP/JSON collector URL (e.g. http://host:4318); spans, "
        "metrics, and log records all ship there (/v1/traces, "
        "/v1/metrics, /v1/logs) on a background thread — an "
        "unreachable collector only increments drop counters",
    )
    serve.add_argument(
        "--otlp-flush-ms", type=float, default=1000.0,
        help="wall milliseconds between OTLP flushes",
    )
    slo = parser.add_argument_group("service-level objectives")
    slo.add_argument(
        "--slo-latency-ms", type=float, default=None,
        help="latency objective: target fraction of queries must "
        "resolve within this many modeled ms (default: off)",
    )
    slo.add_argument(
        "--slo-latency-target", type=float, default=0.99,
        help="fraction of queries that must meet --slo-latency-ms",
    )
    slo.add_argument(
        "--slo-error-rate", type=float, default=None,
        help="error budget: allowed fraction of failed queries "
        "(default: off)",
    )
    slo.add_argument(
        "--slo-fast-window-ms", type=float, default=50.0,
        help="fast burn-rate window (modeled ms)",
    )
    slo.add_argument(
        "--slo-slow-window-ms", type=float, default=500.0,
        help="slow burn-rate window (modeled ms)",
    )
    res = parser.add_argument_group("resilience")
    res.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-query latency deadline in modeled ms (default: off)",
    )
    res.add_argument(
        "--visit-budget", type=int, default=100_000,
        help="watchdog: max traversal steps per launch (0 = unbounded)",
    )
    res.add_argument(
        "--max-queue-depth", type=int, default=None,
        help="admission control: per-session pending-queue cap",
    )
    res.add_argument("--shed-policy", choices=SHED_POLICIES, default="reject-new")
    chaos = parser.add_argument_group("chaos (deterministic fault injection)")
    chaos.add_argument(
        "--chaos", action="store_true",
        help="inject faults and verify zero lost queries afterwards",
    )
    chaos.add_argument(
        "--chaos-seed", type=int,
        default=int(os.environ.get("REPRO_CHAOS_SEED", "0")),
        help="fault-schedule seed (default: $REPRO_CHAOS_SEED or 0)",
    )
    chaos.add_argument("--p-backend-error", type=float, default=0.15)
    chaos.add_argument("--p-latency-spike", type=float, default=0.10)
    chaos.add_argument("--p-stuck-warp", type=float, default=0.05)
    chaos.add_argument("--p-corrupt-stack", type=float, default=0.10)
    chaos.add_argument(
        "--chaos-targets", default="lockstep,nonlockstep",
        help="comma-separated backends eligible for injection",
    )
    args = parser.parse_args(argv)

    if args.flight_capacity < 1:
        parser.error(
            f"--flight-capacity must be >= 1, got {args.flight_capacity}"
        )
    if args.profile_sample_rate < 0:
        parser.error(
            "--profile-sample-rate must be >= 0, "
            f"got {args.profile_sample_rate}"
        )

    chaos_cfg = None
    if args.chaos:
        chaos_cfg = ChaosConfig(
            seed=args.chaos_seed,
            p_backend_error=args.p_backend_error,
            p_latency_spike=args.p_latency_spike,
            p_stuck_warp=args.p_stuck_warp,
            p_corrupt_stack=args.p_corrupt_stack,
            targets=tuple(t for t in args.chaos_targets.split(",") if t),
        )

    telemetry_on = bool(
        args.telemetry or args.serve
        or args.trace_out or args.metrics_out or args.flight_out
    )
    profile_rate = args.profile_sample_rate
    if profile_rate == 0 and args.serve:
        profile_rate = 1
    slo_cfg = None
    if args.slo_latency_ms is not None or args.slo_error_rate is not None:
        slo_cfg = SLOConfig(
            latency_ms=args.slo_latency_ms,
            latency_target=args.slo_latency_target,
            error_rate=args.slo_error_rate,
            fast_window_ms=args.slo_fast_window_ms,
            slow_window_ms=args.slo_slow_window_ms,
        )
    if args.dump_source:
        import pathlib

        from repro.core import passes as _passes

        dump_dir = pathlib.Path(args.dump_source)
        dump_dir.mkdir(parents=True, exist_ok=True)

        def _dump(name: str, source: str) -> None:
            (dump_dir / f"{name}.py").write_text(source + "\n")

        _passes.dump_sink = _dump

    cfg = ServiceConfig(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        sort=args.sort,
        seed=args.seed,
        deadline_ms=args.deadline_ms,
        visit_budget=args.visit_budget or None,
        max_queue_depth=args.max_queue_depth,
        shed_policy=args.shed_policy,
        chaos=chaos_cfg,
        engine=args.engine,
        compact_threshold=args.compact_threshold,
        memo_capacity=args.memo_capacity,
        memo_quantum=args.memo_quantum,
        telemetry=TelemetryConfig(
            enabled=telemetry_on,
            step_events=args.step_events,
            flight_capacity=args.flight_capacity,
            profile_sample_rate=profile_rate,
            profile_top_k=args.profile_top_k,
        ),
        slo=slo_cfg,
    )

    if args.serve:
        from repro.service.serve import (
            SyntheticLoadDriver,
            TraversalServer,
            run_serve,
        )

        svc = build_service(cfg, args.data, args.seed)
        otlp = None
        if args.otlp_endpoint:
            from repro.telemetry import OTLPExporter

            otlp = OTLPExporter(
                args.otlp_endpoint,
                flush_ms=args.otlp_flush_ms,
                service_name="repro-serve",
            )
        server = TraversalServer(
            svc, host=args.host, port=args.port, otlp=otlp
        )
        if args.load_queries_per_tick > 0:
            server.driver = SyntheticLoadDriver(
                svc,
                server.lock,
                seed=args.seed,
                tick_ms=args.load_tick_ms,
                queries_per_tick=args.load_queries_per_tick,
            )
        return run_serve(server, duration_s=args.serve_duration)

    mode = "chaos" if args.chaos else "demo"
    if not args.as_json:
        print(f"== online traversal service {mode} (sort={cfg.sort}) ==")
        if chaos_cfg is not None:
            print(
                f"chaos: seed={chaos_cfg.seed} targets={chaos_cfg.targets} "
                f"p=(err {chaos_cfg.p_backend_error}, lat {chaos_cfg.p_latency_spike}, "
                f"stuck {chaos_cfg.p_stuck_warp}, corrupt {chaos_cfg.p_corrupt_stack})"
            )
    svc = build_service(cfg, args.data, args.seed)
    tickets = generate_trace(svc, args.queries, args.seed)
    stats = svc.stats()

    if args.as_json:
        print(json.dumps(stats.to_dict(), indent=2, default=str))
    else:
        print(stats.format())
    write_telemetry_outputs(svc, args)

    if args.chaos:
        lost, wrong, ok, failed = verify_tickets(svc, tickets)
        r = stats.resilience
        if not args.as_json:
            print(
                f"\nchaos audit: {len(tickets)} admitted, {len(ok)} served, "
                f"{len(failed)} typed errors, {len(lost)} lost, "
                f"{len(wrong)} oracle mismatches"
            )
            print(
                f"resilience activity: retries={r.retries} "
                f"degraded_batches={r.degraded_batches} "
                f"breaker_trips={r.breaker_trips} "
                f"injected={sum(r.injected_faults.values())}"
            )
            flight = svc.telemetry.flight
            if flight is not None:
                print(
                    f"flight recorder: {len(flight.dumps)} fault timelines "
                    f"captured ({flight.dumps_dropped} beyond the dump cap)"
                )
                for dump in flight.dumps[:2]:
                    print(flight.format_dump(dump))
        if lost or wrong:
            print(
                f"CHAOS FAILURE: lost={len(lost)} wrong={len(wrong)}",
                file=sys.stderr,
            )
            return 1
        if not args.as_json:
            print("chaos audit passed: zero lost queries, all results correct")
        return 0

    # A/B: the identical trace dispatched in arrival order.  (Skipped
    # under chaos: injected latency spikes would pollute the timing.)
    base = build_service(cfg.with_(sort="arrival"), args.data, args.seed)
    generate_trace(base, args.queries, args.seed)
    base_stats = base.stats()
    delta = base_stats.total_exec_ms - stats.total_exec_ms
    pct = 100.0 * delta / base_stats.total_exec_ms if base_stats.total_exec_ms else 0.0
    print(
        f"\nspatial sort A/B: arrival-order exec {base_stats.total_exec_ms:.4f} ms "
        f"-> {cfg.sort} {stats.total_exec_ms:.4f} ms ({pct:+.1f}% saved)"
    )
    # GPU-side delta: the straggler batches route to the CPU backend in
    # both runs, so the sort's real effect shows in the GPU backends.
    gpu = lambda s: s.total_exec_ms - s.backends["cpu"].total_exec_ms
    base_gpu, sorted_gpu = gpu(base_stats), gpu(stats)
    gpu_pct = 100.0 * (base_gpu - sorted_gpu) / base_gpu if base_gpu else 0.0
    print(
        f"GPU backends only:  arrival-order exec {base_gpu:.4f} ms "
        f"-> {cfg.sort} {sorted_gpu:.4f} ms ({gpu_pct:+.1f}% saved)"
    )
    print(f"backends exercised: {stats.backends_exercised}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
