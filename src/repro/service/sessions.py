"""Tree/session registry: build once, rope once, serve forever.

A *session* is a long-lived (application, dataset) pair: the dataset's
tree is built and linearized once, the traversal spec is compiled once
through the shared :class:`~repro.core.plancache.PlanCache` (autoropes
+ lockstep variants), and every subsequent batch of queries launches
against the cached plan with only a fresh batch-sized evaluation
context.  Registering the same app over the same dataset again — even
under a different session name — reuses the built tree and hits the
plan cache instead of recompiling.

Ad-hoc service queries are *not* dataset members, so their
``orig_ids`` are set to ``-1``: the apps' self-exclusion tests
(``bucket_ids != mine``) then never fire, and a query coinciding with
a data point correctly finds it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.apps.base import QuerySet, TraversalApp, chunked_sq_dists
from repro.apps.knn import build_knn_app
from repro.apps.nn import build_nn_app
from repro.apps.pointcorr import build_pointcorr_app
from repro.apps.vptree_nn import build_vptree_app
from repro.core.ir import EvalContext
from repro.core.pipeline import CompiledTraversal
from repro.core.plancache import PlanCache


@dataclass(frozen=True)
class AppAdapter:
    """Everything the service needs to serve one application online."""

    name: str
    #: (data, order, **build_kwargs) -> TraversalApp (tree + spec).
    build: Callable[..., TraversalApp]
    #: batch-sized fresh output arrays: (n_queries, app params) -> out.
    make_out: Callable[[int, Dict[str, float]], Dict[str, np.ndarray]]
    #: brute-force reference for a query batch (tests / verification):
    #: (coords, data, app params) -> out-shaped dict.
    oracle: Callable[[np.ndarray, np.ndarray, Dict[str, float]], Dict[str, np.ndarray]]


def _knn_make_out(n: int, params: Dict[str, float]) -> Dict[str, np.ndarray]:
    k = int(params["k"])
    return {
        "knn_dist": np.full((n, k), np.inf, dtype=np.float64),
        "knn_id": np.full((n, k), -1, dtype=np.int64),
    }


def _knn_oracle(coords, data, params):
    k = int(params["k"])
    d = chunked_sq_dists(coords, data)
    idx = np.argpartition(d, k - 1, axis=1)[:, :k]
    dd = np.take_along_axis(d, idx, axis=1)
    order_k = np.argsort(dd, axis=1, kind="stable")
    return {
        "knn_dist": np.take_along_axis(dd, order_k, axis=1),
        "knn_id": np.take_along_axis(idx, order_k, axis=1).astype(np.int64),
    }


def _nn_make_out(n: int, params: Dict[str, float]) -> Dict[str, np.ndarray]:
    return {
        "nn_dist": np.full(n, np.inf, dtype=np.float64),
        "nn_id": np.full(n, -1, dtype=np.int64),
    }


def _nn_oracle(coords, data, params):
    d = chunked_sq_dists(coords, data)
    nn = d.argmin(axis=1)
    return {
        "nn_dist": d[np.arange(len(coords)), nn],
        "nn_id": nn.astype(np.int64),
    }


def _vp_oracle(coords, data, params):
    out = _nn_oracle(coords, data, params)
    return {"nn_dist": np.sqrt(out["nn_dist"]), "nn_id": out["nn_id"]}


def _pc_make_out(n: int, params: Dict[str, float]) -> Dict[str, np.ndarray]:
    return {"count": np.zeros(n, dtype=np.int64)}


def _pc_oracle(coords, data, params):
    d = chunked_sq_dists(coords, data)
    return {"count": (d <= params["radius_sq"]).sum(axis=1).astype(np.int64)}


ADAPTERS: Dict[str, AppAdapter] = {
    "knn": AppAdapter("knn", build_knn_app, _knn_make_out, _knn_oracle),
    "nn": AppAdapter("nn", build_nn_app, _nn_make_out, _nn_oracle),
    "vp": AppAdapter("vp", build_vptree_app, _nn_make_out, _vp_oracle),
    "pc": AppAdapter("pc", build_pointcorr_app, _pc_make_out, _pc_oracle),
}


@dataclass
class TreeSession:
    """One registered (app, dataset) pair, ready to serve batches."""

    name: str
    adapter: AppAdapter
    app: TraversalApp
    plan: CompiledTraversal
    data: np.ndarray
    #: the plan-cache key this session's plan was compiled under (used
    #: for failure-driven invalidation; see SessionRegistry.refresh_plan).
    plan_key: Optional[Tuple] = None
    #: per-session execution-engine override ("compiled" | "interp");
    #: None defers to the service config's engine.
    engine: Optional[str] = None
    #: per-session frontier-compaction override; None defers to config.
    compact_threshold: Optional[float] = None
    #: bumped on every refresh_plan — memoized results are keyed on it,
    #: so a recompile invalidates them without comparing plan objects
    #: (object ids can be reused after GC).
    plan_epoch: int = 0

    @property
    def dim(self) -> int:
        return self.data.shape[1]

    @property
    def tree(self):
        return self.app.tree

    def make_batch_ctx(self, coords: np.ndarray) -> EvalContext:
        """A fresh evaluation context for one query batch."""
        coords = np.ascontiguousarray(coords, dtype=np.float64)
        if coords.ndim != 2 or coords.shape[1] != self.dim:
            raise ValueError(
                f"batch coords must be (n, {self.dim}), got {coords.shape}"
            )
        n = len(coords)
        return EvalContext(
            tree=self.app.tree,
            points=QuerySet(coords, np.full(n, -1, dtype=np.int64)),
            out=self.adapter.make_out(n, self.app.params),
            params=dict(self.app.params),
        )

    def extract(self, out: Dict[str, np.ndarray], i: int) -> Dict[str, np.ndarray]:
        """One query's result rows from a batch's output arrays."""
        return {key: np.copy(arr[i]) for key, arr in out.items()}

    def oracle(self, coords: np.ndarray) -> Dict[str, np.ndarray]:
        """Brute-force reference results for a query batch."""
        coords = np.asarray(coords, dtype=np.float64)
        return self.adapter.oracle(coords, self.data, self.app.params)


def _dataset_fingerprint(data: np.ndarray) -> str:
    h = hashlib.sha1()
    h.update(str(data.shape).encode())
    h.update(np.ascontiguousarray(data).tobytes())
    return h.hexdigest()


class SessionRegistry:
    """Builds and caches sessions; shares one plan cache across them."""

    def __init__(self, plans: Optional[PlanCache] = None) -> None:
        self.plans = plans or PlanCache()
        self._sessions: Dict[str, TreeSession] = {}
        #: (app, dataset fingerprint, build kwargs) -> built app, so
        #: re-registering the same tree skips the build entirely.
        self._builds: Dict[Tuple, TraversalApp] = {}

    def register(
        self,
        name: str,
        app: str,
        data: np.ndarray,
        *,
        engine: Optional[str] = None,
        compact_threshold: Optional[float] = None,
        **build_kwargs,
    ) -> TreeSession:
        """Build (or reuse) the tree + plan for ``(app, data)``.

        ``build_kwargs`` pass through to the app builder (``k``,
        ``radius``, ``leaf_size``, ...).  ``engine`` and
        ``compact_threshold`` are per-session *execution* overrides —
        they never reach the builder and are not part of the build
        fingerprint, because the same tree + plan serves both engines.
        """
        if engine is not None and engine not in ("compiled", "interp", "codegen"):
            raise ValueError(
                f"engine must be 'compiled', 'interp', 'codegen', or None, "
                f"got {engine!r}"
            )
        if compact_threshold is not None and not 0.0 <= compact_threshold <= 1.0:
            raise ValueError(
                f"compact_threshold must be in [0, 1], got {compact_threshold}"
            )
        if name in self._sessions:
            raise KeyError(f"session {name!r} already registered")
        if app not in ADAPTERS:
            raise KeyError(f"unknown app {app!r}; options: {sorted(ADAPTERS)}")
        adapter = ADAPTERS[app]
        data = np.ascontiguousarray(np.asarray(data, dtype=np.float64))
        if data.ndim != 2 or len(data) < 2:
            raise ValueError("data must be a (n >= 2, d) array")
        key = (app, _dataset_fingerprint(data), tuple(sorted(build_kwargs.items())))
        built = self._builds.get(key)
        if built is None:
            built = adapter.build(data, np.arange(len(data)), **build_kwargs)
            self._builds[key] = built
        plan = self.plans.get_or_compile(key, built.spec)
        session = TreeSession(
            name=name, adapter=adapter, app=built, plan=plan, data=data,
            plan_key=key, engine=engine, compact_threshold=compact_threshold,
        )
        self._sessions[name] = session
        return session

    def unregister(self, name: str) -> bool:
        """Remove a session; idempotent (False if it was not there).

        The built tree and compiled plan stay cached — a later
        ``register`` of the same (app, data) pair reuses them.
        """
        return self._sessions.pop(name, None) is not None

    def refresh_plan(self, name: str) -> TreeSession:
        """Invalidate and recompile a session's plan (failure recovery).

        Called by the service after repeated execution failures against
        one plan: the cached entry is dropped and the spec recompiled,
        clearing any poisoned cached state.  Other sessions sharing the
        same key pick up the fresh plan on their next registration.
        """
        session = self.get(name)
        if session.plan_key is not None:
            self.plans.invalidate(session.plan_key)
            session.plan = self.plans.get_or_compile(
                session.plan_key, session.app.spec
            )
            session.plan_epoch += 1
        return session

    def get(self, name: str) -> TreeSession:
        try:
            return self._sessions[name]
        except KeyError:
            raise KeyError(f"no session {name!r}; registered: {sorted(self._sessions)}")

    def __contains__(self, name: str) -> bool:
        return name in self._sessions

    def __len__(self) -> int:
        return len(self._sessions)

    def names(self):
        return sorted(self._sessions)
