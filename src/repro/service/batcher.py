"""Dynamic warp batching: accumulate single-point queries into batches.

The paper wins traversal throughput by making *warp membership match
tree locality* (point sorting, Section 4.4).  An online service cannot
sort a dataset up front — queries arrive one at a time — so the batcher
recreates the effect dynamically: queries accumulate per session until
the batch is full (``max_batch``) or the oldest query's latency window
expires (``max_wait_ms``), and the dispatcher spatially reorders each
flushed batch before launch so that the 32 queries sharing a warp are
spatial neighbors, not arrival neighbors.

Everything runs on the service's *logical clock* (modeled milliseconds,
monotone, caller-advanced): no wall-clock, no threads, fully
deterministic — the same discipline the GPU simulator itself follows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class QueryTicket:
    """One in-flight query: submitted coordinates plus its resolution.

    Tickets double as the service's synchronous return value — after
    the owning batch executes, ``result`` holds the per-query output
    row(s) and the latency fields are filled in.
    """

    id: int
    session: str
    coords: np.ndarray
    t_submit: float
    result: Optional[Dict[str, np.ndarray]] = None
    #: typed failure (ServiceError) when the query could not be served;
    #: a ticket always resolves to exactly one of result / error.
    error: Optional[Exception] = None
    backend: Optional[str] = None
    batch_id: int = -1
    batch_size: int = 0
    wait_ms: float = 0.0
    exec_ms: float = 0.0
    #: modeled backoff delay accumulated by retries of the owning batch.
    retry_ms: float = 0.0
    #: total execution tries the owning batch needed (1 = first try).
    attempts: int = 0
    #: answered by a backend other than the dispatcher's first choice.
    degraded: bool = False

    @property
    def done(self) -> bool:
        """Resolved: either a result or a typed error is attached."""
        return self.result is not None or self.error is not None

    @property
    def ok(self) -> bool:
        return self.result is not None

    @property
    def latency_ms(self) -> float:
        """Queue wait plus retry backoff plus modeled execution time."""
        return self.wait_ms + self.retry_ms + self.exec_ms


@dataclass
class Batch:
    """A flushed group of tickets headed for one kernel launch."""

    id: int
    session: str
    tickets: List[QueryTicket]
    t_flush: float
    reason: str  # "full" | "timeout" | "forced"

    @property
    def size(self) -> int:
        return len(self.tickets)

    @property
    def coords(self) -> np.ndarray:
        return np.stack([t.coords for t in self.tickets])


@dataclass
class BatcherCounters:
    """Flush bookkeeping one :class:`DynamicBatcher` accumulates."""

    flush_full: int = 0
    flush_timeout: int = 0
    flush_forced: int = 0
    batches: int = 0
    queries: int = 0
    #: admission control: queries rejected at submit (reject-new policy).
    shed_rejected: int = 0
    #: admission control: queued queries dropped (drop-oldest policy).
    shed_dropped: int = 0

    @property
    def flushes(self) -> int:
        return self.flush_full + self.flush_timeout + self.flush_forced


class DynamicBatcher:
    """Per-session accumulation queue with full/timeout flush triggers.

    The batcher only *groups* tickets; executing a flushed group (and
    assigning batch ids) is the service's job.  ``max_wait_ms`` bounds
    the queue wait of the oldest query in a batch: a timeout flush is
    stamped at ``oldest.t_submit + max_wait_ms`` — the moment the
    window actually expired — even if the clock is polled later, so
    modeled waits never inflate with the polling cadence.
    """

    def __init__(self, max_batch: int = 64, max_wait_ms: float = 2.0) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0 or math.isnan(max_wait_ms):
            raise ValueError("max_wait_ms must be >= 0")
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self._pending: List[QueryTicket] = []
        self.counters = BatcherCounters()

    # -- queue state ----------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    def oldest_submit(self) -> Optional[float]:
        return self._pending[0].t_submit if self._pending else None

    def timeout_deadline(self) -> Optional[float]:
        """Logical time at which the pending queue must flush."""
        oldest = self.oldest_submit()
        return None if oldest is None else oldest + self.max_wait_ms

    # -- operations -----------------------------------------------------

    def add(self, ticket: QueryTicket) -> bool:
        """Enqueue one ticket; True when the queue just became full."""
        self._pending.append(ticket)
        return len(self._pending) >= self.max_batch

    def take_full(self, now: float) -> List[QueryTicket]:
        """Flush exactly one max-batch group (flush-on-full)."""
        return self._take(self.max_batch, now, "full")

    def poll(self, now: float) -> Optional[List[QueryTicket]]:
        """Flush the pending queue if its latency window expired."""
        deadline = self.timeout_deadline()
        if deadline is None or now < deadline:
            return None
        return self._take(len(self._pending), deadline, "timeout")

    def take_all(self, now: float) -> Optional[List[QueryTicket]]:
        """Force-flush whatever is pending (synchronous query paths)."""
        if not self._pending:
            return None
        return self._take(len(self._pending), now, "forced")

    def drop_oldest(self, now: float) -> Optional[QueryTicket]:
        """Shed the oldest pending ticket (drop-oldest admission policy).

        The ticket leaves the queue unanswered; the caller resolves it
        with a typed ``Overloaded`` error so it is not silently lost.
        """
        if not self._pending:
            return None
        dropped = self._pending.pop(0)
        dropped.wait_ms = max(0.0, now - dropped.t_submit)
        self.counters.shed_dropped += 1
        return dropped

    def _take(self, n: int, t_flush: float, reason: str) -> List[QueryTicket]:
        taken, self._pending = self._pending[:n], self._pending[n:]
        c = self.counters
        c.batches += 1
        c.queries += len(taken)
        setattr(c, f"flush_{reason}", getattr(c, f"flush_{reason}") + 1)
        for t in taken:
            t.wait_ms = max(0.0, t_flush - t.t_submit)
        return taken
