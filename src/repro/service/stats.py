"""Service observability: per-backend accumulators and snapshots.

Every dispatched batch reports into a :class:`BackendStats` accumulator
(one per backend); :meth:`TraversalService.stats` freezes them — plus
the batcher, plan-cache, and resilience counters — into an immutable
:class:`ServiceStats` snapshot that the CLI pretty-prints and tests
assert on.  All times are *modeled* milliseconds from the simulator's
cost models, on the service's logical clock.

Missing aggregates (no samples yet) are ``None``, not ``float("nan")``:
snapshots must survive a JSON round-trip (``json.dumps`` emits ``NaN``
tokens no standards-compliant parser accepts), and
:meth:`ServiceStats.to_dict` is the CLI's ``--json`` output.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.core.plancache import PlanCacheStats
from repro.service.memo import MemoSnapshot
from repro.service.resilience.breaker import BreakerSnapshot
from repro.telemetry import TelemetrySnapshot


def percentile(values: List[float], q: float) -> Optional[float]:
    """The q-th percentile (nearest-rank interpolation), None if empty."""
    if not values:
        return None
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    pos = (len(ordered) - 1) * q / 100.0
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


def _mean(values: List[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


def _fmt(value: Optional[float], spec: str = "8.4f") -> str:
    """Render an optional aggregate ('-' when there are no samples)."""
    return format(value, spec) if value is not None else "-"


@dataclass
class BackendStats:
    """Mutable per-backend accumulator (one batch = one report)."""

    backend: str
    batches: int = 0
    queries: int = 0
    exec_ms: List[float] = field(default_factory=list)
    latency_ms: List[float] = field(default_factory=list)
    wait_ms: List[float] = field(default_factory=list)
    #: batch fill fraction: batch size / configured max batch.
    occupancy: List[float] = field(default_factory=list)
    avg_nodes: List[float] = field(default_factory=list)
    #: lockstep-only: mean per-warp work expansion of each batch.
    work_expansion: List[float] = field(default_factory=list)

    def record_batch(
        self,
        n_queries: int,
        exec_ms: float,
        waits_ms: List[float],
        occupancy: float,
        avg_nodes: float,
        work_expansion: Optional[float] = None,
    ) -> None:
        self.batches += 1
        self.queries += n_queries
        self.exec_ms.append(exec_ms)
        self.wait_ms.extend(waits_ms)
        self.latency_ms.extend(w + exec_ms for w in waits_ms)
        self.occupancy.append(occupancy)
        self.avg_nodes.append(avg_nodes)
        if work_expansion is not None and not math.isnan(work_expansion):
            self.work_expansion.append(work_expansion)

    def snapshot(self) -> "BackendSnapshot":
        return BackendSnapshot(
            backend=self.backend,
            batches=self.batches,
            queries=self.queries,
            total_exec_ms=sum(self.exec_ms),
            p50_exec_ms=percentile(self.exec_ms, 50),
            p95_exec_ms=percentile(self.exec_ms, 95),
            p50_latency_ms=percentile(self.latency_ms, 50),
            p95_latency_ms=percentile(self.latency_ms, 95),
            mean_wait_ms=_mean(self.wait_ms),
            mean_occupancy=_mean(self.occupancy),
            mean_avg_nodes=_mean(self.avg_nodes),
            mean_work_expansion=_mean(self.work_expansion),
        )


@dataclass(frozen=True)
class BackendSnapshot:
    """Frozen view of one backend's accumulated service metrics.

    Aggregates are ``None`` when no sample exists (e.g. work expansion
    for a backend that never ran lockstep) — JSON-safe by design.
    """

    backend: str
    batches: int
    queries: int
    total_exec_ms: float
    p50_exec_ms: Optional[float]
    p95_exec_ms: Optional[float]
    p50_latency_ms: Optional[float]
    p95_latency_ms: Optional[float]
    mean_wait_ms: Optional[float]
    mean_occupancy: Optional[float]
    mean_avg_nodes: Optional[float]
    mean_work_expansion: Optional[float]


@dataclass
class ResilienceCounters:
    """Mutable resilience bookkeeping the service accumulates."""

    retries: int = 0
    degraded_batches: int = 0
    failed_batches: int = 0
    shed_rejected: int = 0
    shed_dropped: int = 0
    plan_invalidations: int = 0
    deadline_misses: int = 0
    #: failed execution tries per backend.
    backend_failures: Dict[str, int] = field(default_factory=dict)
    #: resolved typed errors per error code.
    errors: Dict[str, int] = field(default_factory=dict)
    #: armed chaos faults per fault name.
    injected_faults: Dict[str, int] = field(default_factory=dict)

    def count_error(self, code: str, n: int = 1) -> None:
        self.errors[code] = self.errors.get(code, 0) + n

    def count_backend_failure(self, backend: str) -> None:
        self.backend_failures[backend] = self.backend_failures.get(backend, 0) + 1

    def count_fault(self, name: str) -> None:
        self.injected_faults[name] = self.injected_faults.get(name, 0) + 1

    def snapshot(
        self, breakers: Mapping[str, BreakerSnapshot]
    ) -> "ResilienceSnapshot":
        return ResilienceSnapshot(
            retries=self.retries,
            degraded_batches=self.degraded_batches,
            failed_batches=self.failed_batches,
            shed_rejected=self.shed_rejected,
            shed_dropped=self.shed_dropped,
            plan_invalidations=self.plan_invalidations,
            deadline_misses=self.deadline_misses,
            backend_failures=dict(self.backend_failures),
            errors=dict(self.errors),
            injected_faults=dict(self.injected_faults),
            breakers=dict(breakers),
        )


@dataclass(frozen=True)
class ResilienceSnapshot:
    """Frozen view of the resilience layer's activity."""

    retries: int
    degraded_batches: int
    failed_batches: int
    shed_rejected: int
    shed_dropped: int
    plan_invalidations: int
    deadline_misses: int
    backend_failures: Mapping[str, int]
    errors: Mapping[str, int]
    injected_faults: Mapping[str, int]
    breakers: Mapping[str, BreakerSnapshot]

    @property
    def breaker_trips(self) -> int:
        return sum(b.trips for b in self.breakers.values())

    @property
    def total_errors(self) -> int:
        return sum(self.errors.values())


@dataclass(frozen=True)
class ServiceStats:
    """One service-wide snapshot (see module docstring)."""

    sort: str
    sessions: int
    queries_submitted: int
    queries_completed: int
    queries_failed: int
    queue_depth: int
    batches: int
    flush_full: int
    flush_timeout: int
    flush_forced: int
    plan_cache: PlanCacheStats
    backends: Mapping[str, BackendSnapshot]
    resilience: ResilienceSnapshot
    total_exec_ms: float
    p50_latency_ms: Optional[float]
    p95_latency_ms: Optional[float]
    #: merged per-session memoization counters (see repro.service.memo).
    memo: MemoSnapshot = field(default_factory=MemoSnapshot)
    #: telemetry roll-up + full metrics export (repro.telemetry); the
    #: disabled default keeps snapshots cheap and JSON-identical in
    #: shape whether or not telemetry is on.
    telemetry: TelemetrySnapshot = field(default_factory=TelemetrySnapshot)
    #: per-session SLO tracker snapshots (repro.telemetry.slo); empty
    #: when the service has no configured objectives.
    slo: Mapping[str, dict] = field(default_factory=dict)

    @property
    def backends_exercised(self) -> int:
        return sum(1 for b in self.backends.values() if b.batches > 0)

    def to_dict(self) -> dict:
        """A JSON-round-trippable dict view of the whole snapshot."""
        return dataclasses.asdict(self)

    def format(self) -> str:
        """Human-readable snapshot for the CLI."""
        r = self.resilience
        lines = [
            f"service stats (sort={self.sort})",
            f"  sessions={self.sessions}  submitted={self.queries_submitted}  "
            f"completed={self.queries_completed}  failed={self.queries_failed}  "
            f"pending={self.queue_depth}",
            f"  batches={self.batches} (full={self.flush_full}, "
            f"timeout={self.flush_timeout}, forced={self.flush_forced})",
            f"  plan cache: hits={self.plan_cache.hits} "
            f"misses={self.plan_cache.misses} size={self.plan_cache.size} "
            f"invalidations={self.plan_cache.invalidations}",
            f"  modeled exec total: {self.total_exec_ms:.4f} ms   "
            f"latency p50/p95: {_fmt(self.p50_latency_ms, '.4f')}/"
            f"{_fmt(self.p95_latency_ms, '.4f')} ms",
            "  backend        batches  queries  fill   p50exec   p95exec   "
            "p50lat    p95lat    wexp",
        ]
        for name in sorted(self.backends):
            b = self.backends[name]
            if b.batches == 0:
                continue
            lines.append(
                f"  {name:<13}  {b.batches:>7}  {b.queries:>7}  "
                f"{_fmt(b.mean_occupancy, '4.0%')}  {_fmt(b.p50_exec_ms)}  "
                f"{_fmt(b.p95_exec_ms)}  {_fmt(b.p50_latency_ms)}  "
                f"{_fmt(b.p95_latency_ms)}  {_fmt(b.mean_work_expansion, '.2f'):>5}"
            )
        lines.append(
            f"  resilience: retries={r.retries} degraded={r.degraded_batches} "
            f"failed_batches={r.failed_batches} "
            f"shed(rejected={r.shed_rejected}, dropped={r.shed_dropped}) "
            f"deadline_misses={r.deadline_misses} "
            f"plan_invalidations={r.plan_invalidations}"
        )
        active = {
            n: b
            for n, b in sorted(r.breakers.items())
            if b.trips or b.failures or b.state != "closed"
        }
        for name, b in active.items():
            lines.append(
                f"  breaker[{name}]: state={b.state} trips={b.trips} "
                f"failures={b.failures} rejections={b.rejections}"
            )
        if r.errors:
            err = " ".join(f"{k}={v}" for k, v in sorted(r.errors.items()))
            lines.append(f"  errors: {err}")
        if r.injected_faults:
            inj = " ".join(f"{k}={v}" for k, v in sorted(r.injected_faults.items()))
            lines.append(f"  chaos faults injected: {inj}")
        if self.memo.hits or self.memo.misses:
            m = self.memo
            lines.append(
                f"  memo: hits={m.hits} misses={m.misses} "
                f"(rate {m.hit_rate:.1%}) entries={m.entries}/{m.capacity} "
                f"evictions={m.evictions}"
            )
        if self.telemetry.enabled:
            t = self.telemetry
            lines.append(
                f"  telemetry: spans={t.spans_recorded} "
                f"(dropped={t.spans_dropped}) "
                f"flight_dumps={t.flight_dumps} "
                f"instruments={len(t.metrics)}"
            )
        for name, snap in sorted(self.slo.items()):
            objectives = snap.get("objectives", [])
            parts = []
            for st in objectives:
                parts.append(
                    f"{st['objective']}: burn {st['burn_fast']:.2f}/"
                    f"{st['burn_slow']:.2f}"
                    + (" FAST-BURN" if st["fast_alert"] else "")
                )
            lines.append(
                f"  slo[{name}]: events={snap.get('events_windowed', 0)} "
                f"fired={snap.get('fast_alerts_fired', 0)}  "
                + "  ".join(parts)
            )
        return "\n".join(lines)
