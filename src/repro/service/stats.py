"""Service observability: per-backend accumulators and snapshots.

Every dispatched batch reports into a :class:`BackendStats` accumulator
(one per backend); :meth:`TraversalService.stats` freezes them — plus
the batcher and plan-cache counters — into an immutable
:class:`ServiceStats` snapshot that the CLI pretty-prints and tests
assert on.  All times are *modeled* milliseconds from the simulator's
cost models, on the service's logical clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.core.plancache import PlanCacheStats


def percentile(values: List[float], q: float) -> float:
    """The q-th percentile (nearest-rank interpolation), NaN if empty."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    pos = (len(ordered) - 1) * q / 100.0
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else float("nan")


@dataclass
class BackendStats:
    """Mutable per-backend accumulator (one batch = one report)."""

    backend: str
    batches: int = 0
    queries: int = 0
    exec_ms: List[float] = field(default_factory=list)
    latency_ms: List[float] = field(default_factory=list)
    wait_ms: List[float] = field(default_factory=list)
    #: batch fill fraction: batch size / configured max batch.
    occupancy: List[float] = field(default_factory=list)
    avg_nodes: List[float] = field(default_factory=list)
    #: lockstep-only: mean per-warp work expansion of each batch.
    work_expansion: List[float] = field(default_factory=list)

    def record_batch(
        self,
        n_queries: int,
        exec_ms: float,
        waits_ms: List[float],
        occupancy: float,
        avg_nodes: float,
        work_expansion: float = float("nan"),
    ) -> None:
        self.batches += 1
        self.queries += n_queries
        self.exec_ms.append(exec_ms)
        self.wait_ms.extend(waits_ms)
        self.latency_ms.extend(w + exec_ms for w in waits_ms)
        self.occupancy.append(occupancy)
        self.avg_nodes.append(avg_nodes)
        if not math.isnan(work_expansion):
            self.work_expansion.append(work_expansion)

    def snapshot(self) -> "BackendSnapshot":
        return BackendSnapshot(
            backend=self.backend,
            batches=self.batches,
            queries=self.queries,
            total_exec_ms=sum(self.exec_ms),
            p50_exec_ms=percentile(self.exec_ms, 50),
            p95_exec_ms=percentile(self.exec_ms, 95),
            p50_latency_ms=percentile(self.latency_ms, 50),
            p95_latency_ms=percentile(self.latency_ms, 95),
            mean_wait_ms=_mean(self.wait_ms),
            mean_occupancy=_mean(self.occupancy),
            mean_avg_nodes=_mean(self.avg_nodes),
            mean_work_expansion=_mean(self.work_expansion),
        )


@dataclass(frozen=True)
class BackendSnapshot:
    """Frozen view of one backend's accumulated service metrics."""

    backend: str
    batches: int
    queries: int
    total_exec_ms: float
    p50_exec_ms: float
    p95_exec_ms: float
    p50_latency_ms: float
    p95_latency_ms: float
    mean_wait_ms: float
    mean_occupancy: float
    mean_avg_nodes: float
    mean_work_expansion: float


@dataclass(frozen=True)
class ServiceStats:
    """One service-wide snapshot (see module docstring)."""

    sort: str
    sessions: int
    queries_submitted: int
    queries_completed: int
    queue_depth: int
    batches: int
    flush_full: int
    flush_timeout: int
    flush_forced: int
    plan_cache: PlanCacheStats
    backends: Mapping[str, BackendSnapshot]
    total_exec_ms: float
    p50_latency_ms: float
    p95_latency_ms: float

    @property
    def backends_exercised(self) -> int:
        return sum(1 for b in self.backends.values() if b.batches > 0)

    def format(self) -> str:
        """Human-readable snapshot for the CLI."""
        lines = [
            f"service stats (sort={self.sort})",
            f"  sessions={self.sessions}  submitted={self.queries_submitted}  "
            f"completed={self.queries_completed}  pending={self.queue_depth}",
            f"  batches={self.batches} (full={self.flush_full}, "
            f"timeout={self.flush_timeout}, forced={self.flush_forced})",
            f"  plan cache: hits={self.plan_cache.hits} "
            f"misses={self.plan_cache.misses} size={self.plan_cache.size}",
            f"  modeled exec total: {self.total_exec_ms:.4f} ms   "
            f"latency p50/p95: {self.p50_latency_ms:.4f}/{self.p95_latency_ms:.4f} ms",
            "  backend        batches  queries  fill   p50exec   p95exec   "
            "p50lat    p95lat    wexp",
        ]
        for name in sorted(self.backends):
            b = self.backends[name]
            if b.batches == 0:
                continue
            wexp = (
                f"{b.mean_work_expansion:.2f}"
                if not math.isnan(b.mean_work_expansion)
                else "-"
            )
            lines.append(
                f"  {name:<13}  {b.batches:>7}  {b.queries:>7}  "
                f"{b.mean_occupancy:4.0%}  {b.p50_exec_ms:8.4f}  {b.p95_exec_ms:8.4f}  "
                f"{b.p50_latency_ms:8.4f}  {b.p95_latency_ms:8.4f}  {wexp:>5}"
            )
        return "\n".join(lines)
