"""Online traversal query service (dynamic warp batching + plan cache).

The offline harness proves the paper's transformations on whole
datasets at once; this subsystem turns them into a *serving*
architecture: long-lived tree sessions with compiled-plan caching,
dynamic batching of single-point queries under a latency window,
per-batch spatial reordering so warp membership matches tree locality,
and run-time similarity profiling that routes each batch to the
lockstep, non-lockstep, or CPU backend.

* :mod:`repro.service.sessions` — tree/session registry + plan cache.
* :mod:`repro.service.batcher` — dynamic batching (full/timeout flush).
* :mod:`repro.service.dispatch` — adaptive variant dispatch + backends.
* :mod:`repro.service.stats` — per-backend stats and snapshots.
* :mod:`repro.service.service` — the :class:`TraversalService` facade.
* ``python -m repro.service`` — demo / load-generator CLI.
"""

from repro.service.batcher import Batch, DynamicBatcher, QueryTicket
from repro.service.dispatch import BACKENDS, AdaptiveDispatcher, DispatchDecision
from repro.service.service import SORT_MODES, ServiceConfig, TraversalService
from repro.service.sessions import ADAPTERS, SessionRegistry, TreeSession
from repro.service.stats import BackendSnapshot, BackendStats, ServiceStats

__all__ = [
    "ADAPTERS",
    "BACKENDS",
    "SORT_MODES",
    "AdaptiveDispatcher",
    "Batch",
    "BackendSnapshot",
    "BackendStats",
    "DispatchDecision",
    "DynamicBatcher",
    "QueryTicket",
    "ServiceConfig",
    "ServiceStats",
    "SessionRegistry",
    "TraversalService",
    "TreeSession",
]
