"""Online traversal query service (dynamic warp batching + plan cache).

The offline harness proves the paper's transformations on whole
datasets at once; this subsystem turns them into a *serving*
architecture: long-lived tree sessions with compiled-plan caching,
dynamic batching of single-point queries under a latency window,
per-batch spatial reordering so warp membership matches tree locality,
and run-time similarity profiling that routes each batch to the
lockstep, non-lockstep, or CPU backend.

A resilience layer (see ``docs/RESILIENCE.md``) hardens the serving
path: typed :class:`ServiceError` failures, per-query deadlines and
traversal budgets, retry with deterministic backoff, per-backend
circuit breakers with degraded-mode failover along
:data:`FALLBACK_CHAIN`, admission control at the batch queue, and a
deterministic chaos-injection harness (:class:`ChaosConfig`).

* :mod:`repro.service.sessions` — tree/session registry + plan cache.
* :mod:`repro.service.batcher` — dynamic batching (full/timeout flush).
* :mod:`repro.service.dispatch` — adaptive variant dispatch + backends,
  retries, breakers, failover.
* :mod:`repro.service.resilience` — error taxonomy, retry policy,
  circuit breaker.
* :mod:`repro.service.stats` — per-backend stats and snapshots.
* :mod:`repro.service.service` — the :class:`TraversalService` facade.
* ``python -m repro.service`` — demo / load-generator CLI (``--chaos``).
"""

from repro.gpusim.faults import ChaosConfig, FaultInjector
from repro.service.batcher import Batch, DynamicBatcher, QueryTicket
from repro.service.memo import MemoSnapshot, TraversalMemo
from repro.service.dispatch import (
    BACKENDS,
    FALLBACK_CHAIN,
    AdaptiveDispatcher,
    DispatchDecision,
    ResilientOutcome,
)
from repro.service.resilience import (
    BackendUnavailable,
    BudgetExhausted,
    CircuitBreaker,
    DeadlineExceeded,
    InvalidQuery,
    Overloaded,
    RetryPolicy,
    ServiceError,
)
from repro.service.service import (
    ENGINES,
    SHED_POLICIES,
    SORT_MODES,
    ServiceConfig,
    TraversalService,
)
from repro.telemetry import (
    NULL_TELEMETRY,
    Telemetry,
    TelemetryConfig,
    TelemetrySnapshot,
)
from repro.service.sessions import ADAPTERS, SessionRegistry, TreeSession
from repro.service.stats import (
    BackendSnapshot,
    BackendStats,
    ResilienceCounters,
    ResilienceSnapshot,
    ServiceStats,
)

__all__ = [
    "ADAPTERS",
    "BACKENDS",
    "ENGINES",
    "FALLBACK_CHAIN",
    "NULL_TELEMETRY",
    "SHED_POLICIES",
    "SORT_MODES",
    "AdaptiveDispatcher",
    "BackendSnapshot",
    "BackendStats",
    "BackendUnavailable",
    "Batch",
    "BudgetExhausted",
    "ChaosConfig",
    "CircuitBreaker",
    "DeadlineExceeded",
    "DispatchDecision",
    "DynamicBatcher",
    "FaultInjector",
    "InvalidQuery",
    "MemoSnapshot",
    "Overloaded",
    "QueryTicket",
    "ResilienceCounters",
    "ResilienceSnapshot",
    "ResilientOutcome",
    "RetryPolicy",
    "ServiceConfig",
    "ServiceError",
    "ServiceStats",
    "SessionRegistry",
    "Telemetry",
    "TelemetryConfig",
    "TelemetrySnapshot",
    "TraversalMemo",
    "TraversalService",
    "TreeSession",
]
