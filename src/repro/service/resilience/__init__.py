"""Resilience layer for the online traversal service.

The paper's transformations assume every traversal runs to completion
on a healthy device; a serving system cannot.  This package is the
safety net between the service facade and the simulated backends:

* :mod:`repro.service.resilience.errors` — the typed
  :class:`~repro.service.resilience.errors.ServiceError` taxonomy every
  failure resolves to (a query is never silently lost);
* :mod:`repro.service.resilience.retry` — exponential backoff with
  deterministic jitter on the logical clock;
* :mod:`repro.service.resilience.breaker` — per-backend circuit
  breakers (closed / open / half-open) feeding graceful degradation
  along the lockstep → nonlockstep → modeled-CPU fallback chain.

Fault *injection* lives on the simulator side
(:mod:`repro.gpusim.faults`) so the chaos layer exercises the real
executor code paths; this package is what turns those faults into
retries, breaker trips, degraded routing, and typed errors.
See ``docs/RESILIENCE.md`` for the full state machines.
"""

from repro.service.resilience.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerSnapshot,
    CircuitBreaker,
)
from repro.service.resilience.errors import (
    ERROR_CODES,
    BackendUnavailable,
    BudgetExhausted,
    DeadlineExceeded,
    InvalidQuery,
    Overloaded,
    ServiceError,
)
from repro.service.resilience.retry import RetryPolicy

__all__ = [
    "ERROR_CODES",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "BackendUnavailable",
    "BreakerSnapshot",
    "BudgetExhausted",
    "CircuitBreaker",
    "DeadlineExceeded",
    "InvalidQuery",
    "Overloaded",
    "RetryPolicy",
    "ServiceError",
]
