"""Retry policy: exponential backoff with deterministic jitter.

Backoff runs on the service's *logical clock* (modeled milliseconds),
consistent with the batcher: a retry does not block anything, it adds
``backoff_ms`` to the batch's modeled delay, which flows into the
retried queries' latencies.  Jitter is drawn from a seeded generator
keyed by ``(policy seed, *key, attempt)``, so the same chaos seed
reproduces the identical retry schedule run over run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with bounded, deterministic jitter."""

    #: total tries per backend (1 = no retry).
    max_attempts: int = 3
    #: backoff before retry #1, in modeled milliseconds.
    backoff_base_ms: float = 0.5
    #: growth factor per retry.
    backoff_multiplier: float = 2.0
    #: fraction of the backoff randomized: delay in base * (1 +- jitter).
    jitter: float = 0.25
    seed: int = 7

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_ms < 0:
            raise ValueError("backoff_base_ms must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_ms(self, attempt: int, key: Sequence[int] = ()) -> float:
        """Backoff after failed try #``attempt`` (0-based), jittered.

        ``key`` is deterministic material (batch id, backend index, ...)
        so distinct batches de-synchronize without losing replayability.
        """
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        base = self.backoff_base_ms * self.backoff_multiplier**attempt
        if self.jitter == 0.0 or base == 0.0:
            return base
        material = [np.uint64(self.seed)] + [
            np.uint64(abs(int(k))) for k in key
        ] + [np.uint64(attempt)]
        rng = np.random.default_rng(material)
        return float(base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0)))

    def schedule_ms(self, key: Sequence[int] = ()) -> list:
        """All backoffs this policy would take for ``key`` (for tests)."""
        return [self.backoff_ms(a, key) for a in range(self.max_attempts - 1)]
