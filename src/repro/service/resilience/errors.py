"""Structured error taxonomy for the traversal service.

Every failure the service surfaces to a client is a :class:`ServiceError`
subclass with a stable ``code`` string and a ``retryable`` hint, instead
of a raw ``ValueError``/``RuntimeError`` escaping from some layer of the
simulator.  Tickets that cannot be answered resolve with one of these
attached (``QueryTicket.error``), so a query is never silently lost: it
either carries a result or a typed error.

* :class:`InvalidQuery` — the request itself is malformed (NaN/inf
  coordinates, dimension mismatch); rejected at the service boundary
  before it can reach Morton ordering or an executor.  Also a
  :class:`ValueError` for backward compatibility.
* :class:`DeadlineExceeded` — the query's end-to-end latency budget
  (queue wait + retries + modeled execution) ran out.
* :class:`BudgetExhausted` — a traversal hit its visit budget (the
  executor watchdog tripped: livelock, stuck warp, or a pathological
  traversal); retryable on a degraded backend.
* :class:`BackendUnavailable` — a backend raised or its circuit breaker
  is open; retryable on the next backend in the fallback chain.
* :class:`Overloaded` — admission control shed the query (queue depth
  cap, see ``ServiceConfig.max_queue_depth``/``shed_policy``).
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class ServiceError(Exception):
    """Base class of the service's typed failure taxonomy."""

    code: str = "service_error"
    retryable: bool = False

    def __init__(
        self,
        message: str,
        *,
        session: Optional[str] = None,
        batch_id: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.session = session
        self.batch_id = batch_id
        self.backend = backend

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe view (logged by the CLI, asserted in tests)."""
        return {
            "code": self.code,
            "message": self.message,
            "retryable": self.retryable,
            "session": self.session,
            "batch_id": self.batch_id,
            "backend": self.backend,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.message!r}, backend={self.backend!r})"


class InvalidQuery(ServiceError, ValueError):
    """Malformed request, rejected at the service boundary."""

    code = "invalid_query"
    retryable = False


class DeadlineExceeded(ServiceError):
    """The query's latency deadline expired before an answer existed."""

    code = "deadline_exceeded"
    retryable = False


class BudgetExhausted(ServiceError):
    """A traversal exceeded its visit budget (watchdog trip)."""

    code = "budget_exhausted"
    retryable = True


class BackendUnavailable(ServiceError):
    """A backend failed or is breaker-open; try the fallback chain."""

    code = "backend_unavailable"
    retryable = True


class Overloaded(ServiceError):
    """Admission control shed this query under queue pressure."""

    code = "overloaded"
    retryable = False


#: code -> class, for reconstructing/classifying logged errors.
ERROR_CODES = {
    cls.code: cls
    for cls in (
        ServiceError,
        InvalidQuery,
        DeadlineExceeded,
        BudgetExhausted,
        BackendUnavailable,
        Overloaded,
    )
}
