"""Per-backend circuit breaker on the service's logical clock.

Standard three-state machine:

* **closed** — traffic flows; consecutive failures are counted, and
  ``failure_threshold`` of them in a row trips the breaker;
* **open** — the backend is skipped outright (dispatch degrades to the
  next backend in the fallback chain) until ``cooldown_ms`` of logical
  time passes;
* **half-open** — after the cooldown, up to ``half_open_trials`` probe
  batches are let through: one success closes the breaker, one failure
  re-opens it (and re-arms the cooldown).

All transitions are driven by the caller-supplied logical ``now`` (the
same clock the batcher uses), so breaker behavior is deterministic and
replayable under a fixed trace + chaos seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerSnapshot:
    """Frozen view of one breaker, embedded in the stats snapshot."""

    backend: str
    state: str
    consecutive_failures: int
    failures: int
    successes: int
    trips: int
    rejections: int
    opened_at_ms: Optional[float]


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probing."""

    def __init__(
        self,
        backend: str,
        failure_threshold: int = 3,
        cooldown_ms: float = 20.0,
        half_open_trials: int = 1,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_ms < 0:
            raise ValueError("cooldown_ms must be >= 0")
        if half_open_trials < 1:
            raise ValueError("half_open_trials must be >= 1")
        self.backend = backend
        self.failure_threshold = failure_threshold
        self.cooldown_ms = cooldown_ms
        self.half_open_trials = half_open_trials
        self.state = STATE_CLOSED
        self.consecutive_failures = 0
        self.failures = 0
        self.successes = 0
        self.trips = 0
        self.rejections = 0
        self.opened_at_ms: Optional[float] = None
        self._probes_left = 0
        #: optional observer called as ``(backend, old_state, new_state,
        #: now)`` on every state change (telemetry records transitions
        #: as counters + trace instants); None costs one check.
        self.on_transition = None

    def _set_state(self, new_state: str, now: float) -> None:
        old = self.state
        self.state = new_state
        if self.on_transition is not None and old != new_state:
            self.on_transition(self.backend, old, new_state, now)

    # -- gate ------------------------------------------------------------

    def allow(self, now: float) -> bool:
        """May a batch be sent to this backend at logical time ``now``?"""
        if self.state == STATE_OPEN:
            if self.opened_at_ms is not None and (
                now - self.opened_at_ms >= self.cooldown_ms
            ):
                self._set_state(STATE_HALF_OPEN, now)
                self._probes_left = self.half_open_trials
            else:
                self.rejections += 1
                return False
        if self.state == STATE_HALF_OPEN:
            if self._probes_left <= 0:
                self.rejections += 1
                return False
            self._probes_left -= 1
        return True

    # -- outcomes --------------------------------------------------------

    def record_success(self, now: float) -> None:
        self.successes += 1
        self.consecutive_failures = 0
        if self.state != STATE_CLOSED:
            self._set_state(STATE_CLOSED, now)
            self.opened_at_ms = None

    def record_failure(self, now: float) -> None:
        self.failures += 1
        self.consecutive_failures += 1
        if self.state == STATE_HALF_OPEN:
            self._trip(now)
        elif (
            self.state == STATE_CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._trip(now)

    def _trip(self, now: float) -> None:
        self._set_state(STATE_OPEN, now)
        self.opened_at_ms = now
        self.trips += 1
        self._probes_left = 0

    # -- observability ---------------------------------------------------

    def snapshot(self) -> BreakerSnapshot:
        return BreakerSnapshot(
            backend=self.backend,
            state=self.state,
            consecutive_failures=self.consecutive_failures,
            failures=self.failures,
            successes=self.successes,
            trips=self.trips,
            rejections=self.rejections,
            opened_at_ms=self.opened_at_ms,
        )
