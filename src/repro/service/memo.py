"""Per-session traversal-result memoization.

Online serving traffic repeats itself — the same client re-queries the
same coordinate, hot spots cluster — and a traversal is pure in (plan,
query coords), so a repeated query can be answered from a bounded
per-session cache without a dispatch, a batch slot, or any modeled
execution time.

Keys are ``(plan_epoch, quantized coords bytes)``:

* ``plan_epoch`` comes from :class:`~repro.service.sessions.TreeSession`
  and is bumped by ``refresh_plan`` — a failure-driven recompile
  invalidates every memoized answer for the session without touching
  the cache (stale epochs just stop matching and age out FIFO);
* coords are matched *bitwise* by default (``quantum=0.0``); a positive
  ``quantum`` snaps them to a grid first, trading exactness for hit
  rate (appropriate for radius-style apps, not for exact-NN answers at
  cell boundaries — hence off by default).

Results are copied on store and on serve, so a caller mutating a
served result cannot poison the cache.  Hit/miss counts surface both
here (:class:`MemoSnapshot`, embedded in ``ServiceStats``) and through
the telemetry metrics registry when one is attached.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

MemoKey = Tuple[int, bytes]


@dataclass(frozen=True)
class MemoSnapshot:
    """Frozen view of one (or a merged set of) memo cache(s)."""

    hits: int = 0
    misses: int = 0
    entries: int = 0
    capacity: int = 0
    evictions: int = 0
    stores: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def merged(self, other: "MemoSnapshot") -> "MemoSnapshot":
        return MemoSnapshot(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            entries=self.entries + other.entries,
            capacity=self.capacity + other.capacity,
            evictions=self.evictions + other.evictions,
            stores=self.stores + other.stores,
        )


class TraversalMemo:
    """Bounded FIFO cache of one session's traversal results."""

    def __init__(self, capacity: int = 256, quantum: float = 0.0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if quantum < 0 or not np.isfinite(quantum):
            raise ValueError(f"quantum must be finite and >= 0, got {quantum}")
        self.capacity = int(capacity)
        self.quantum = float(quantum)
        self._entries: "OrderedDict[MemoKey, Dict[str, np.ndarray]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stores = 0

    def __len__(self) -> int:
        return len(self._entries)

    def key(self, plan_epoch: int, coords: np.ndarray) -> MemoKey:
        coords = np.ascontiguousarray(coords, dtype=np.float64)
        if self.quantum > 0.0:
            coords = np.round(coords / self.quantum).astype(np.int64)
        return (int(plan_epoch), coords.tobytes())

    def lookup(
        self, plan_epoch: int, coords: np.ndarray
    ) -> Optional[Dict[str, np.ndarray]]:
        """A *copy* of the memoized result, or None (counts hit/miss)."""
        entry = self._entries.get(self.key(plan_epoch, coords))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return {k: np.copy(v) for k, v in entry.items()}

    def store(
        self, plan_epoch: int, coords: np.ndarray, result: Dict[str, np.ndarray]
    ) -> None:
        """Memoize one query's result (copied; FIFO-evicts at capacity)."""
        key = self.key(plan_epoch, coords)
        if key in self._entries:
            return  # first answer wins; identical by purity anyway
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = {k: np.copy(v) for k, v in result.items()}
        self.stores += 1

    def clear(self) -> None:
        self._entries.clear()

    def snapshot(self) -> MemoSnapshot:
        return MemoSnapshot(
            hits=self.hits,
            misses=self.misses,
            entries=len(self._entries),
            capacity=self.capacity,
            evictions=self.evictions,
            stores=self.stores,
        )
