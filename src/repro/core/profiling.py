"""Run-time traversal-similarity profiling (Section 4.4).

Point sorting cannot be automated semantics-agnostically, but *whether
the points are sorted* can be detected at run time: the paper adopts Jo
and Kulkarni's method of "drawing several samples of neighboring points
from the set of points and seeing whether their traversals are
similar". If they are, the warp-level union of traversals will stay
close to each member's own traversal, and the lockstep variant is
chosen; otherwise the non-lockstep variant runs.

This module is deliberately decoupled from any particular interpreter:
callers supply ``visit_fn(point_index) -> array of visited node ids``
(typically :meth:`repro.cpusim.recursive.RecursiveInterpreter.visits`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


@dataclass(frozen=True)
class TraversalSimilarity:
    """Result of sampling neighboring points' traversals."""

    mean_jaccard: float
    min_jaccard: float
    n_samples: int
    #: decision threshold the sampler was configured with.
    threshold: float

    @property
    def recommend_lockstep(self) -> bool:
        """True when neighboring traversals overlap enough that the
        lockstep work expansion will stay small."""
        return self.mean_jaccard >= self.threshold


def jaccard(a: np.ndarray, b: np.ndarray) -> float:
    """Jaccard similarity of two visited-node-id sets."""
    sa, sb = np.unique(a), np.unique(b)
    if len(sa) == 0 and len(sb) == 0:
        return 1.0
    inter = len(np.intersect1d(sa, sb, assume_unique=True))
    union = len(sa) + len(sb) - inter
    return inter / union


def sample_similarity(
    visit_fn: Callable[[int], np.ndarray],
    n_points: int,
    n_samples: int = 8,
    neighbor_distance: int = 1,
    threshold: float = 0.5,
    seed: int = 7,
) -> TraversalSimilarity:
    """Estimate traversal similarity of *adjacent* points.

    Adjacency is positional: after sorting, neighboring indices land in
    the same warp, so index-neighbors are exactly the points whose
    traversals lockstep will fuse.

    Parameters
    ----------
    visit_fn:
        maps a point index to the array of node ids its traversal visits.
    n_points:
        size of the point set being sampled.
    n_samples:
        how many neighbor pairs to draw.
    neighbor_distance:
        index distance between the pair's members (1 = adjacent).
    threshold:
        mean Jaccard above which lockstep is recommended.
    """
    if n_points < 2:
        raise ValueError("need at least two points to sample pairs")
    if not 0.0 <= threshold <= 1.0:
        raise ValueError("threshold must be in [0, 1]")
    rng = np.random.default_rng(seed)
    hi = n_points - neighbor_distance
    if hi <= 0:
        raise ValueError("neighbor_distance too large for the point set")
    firsts = rng.integers(0, hi, size=n_samples)
    sims = []
    for i in firsts:
        a = visit_fn(int(i))
        b = visit_fn(int(i + neighbor_distance))
        sims.append(jaccard(a, b))
    arr = np.array(sims, dtype=np.float64)
    return TraversalSimilarity(
        mean_jaccard=float(arr.mean()),
        min_jaccard=float(arr.min()),
        n_samples=n_samples,
        threshold=threshold,
    )
