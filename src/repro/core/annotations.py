"""Programmer annotations (the only semantic input the paper allows).

The transformations are semantics-agnostic, with one deliberate
exception (Section 4.3): a programmer may annotate that a guided
traversal's multiple call sets are *semantically equivalent* — they
differ only in performance, not in results (e.g. nearest-neighbor
search finds the neighbor whichever child is explored first). Only with
that annotation does the lockstep transformation apply its dynamic
single-call-set majority vote; without it, guided traversals always run
non-lockstep.

``POINT_LOOP_INDEPENDENT`` mirrors Section 5.1's loop annotation
asserting there are no inter-point dependencies, which is what licenses
parallelizing the point loop at all.
"""

from __future__ import annotations

import enum


class Annotation(enum.Enum):
    """Annotations attachable to a :class:`~repro.core.ir.TraversalSpec`."""

    #: The traversal's call sets produce identical results in any order
    #: (enables lockstep for guided traversals, Section 4.3).
    CALLSETS_EQUIVALENT = "callsets_equivalent"
    #: Iterations of the repeated point loop are independent
    #: (Section 5.1).
    POINT_LOOP_INDEPENDENT = "point_loop_independent"
