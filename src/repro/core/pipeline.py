"""End-to-end transformation pipeline (Section 5's compiler driver).

Mirrors the paper's ROSE-based source-to-source flow:

1. identify the algorithmic structure (here: the app hands us a
   :class:`~repro.core.ir.TraversalSpec`, the product of Section 5.1's
   identification step);
2. establish pseudo-tail-recursive form (Section 3.2);
3. run static call-set analysis; classify guided/unguided;
4. apply autoropes (Section 3.2.2);
5. derive the lockstep variant where legal (Section 4);
6. optionally consult run-time profiling (Section 4.4) to pick which
   variant to launch.

The result, :class:`CompiledTraversal`, packages both variants plus the
analysis facts; executors and the experiment harness consume it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.autoropes import IterativeKernel, apply_autoropes
from repro.core.callset import CallSetAnalysis, analyze_call_sets
from repro.core.compile import program_for
from repro.core.ir import TraversalSpec
from repro.core.lockstep import LockstepNotApplicable, apply_lockstep
from repro.core.profiling import TraversalSimilarity
from repro.core.pseudotail import is_pseudo_tail_recursive, normalize_to_pseudo_tail


@dataclass
class CompiledTraversal:
    """All artifacts of compiling one traversal spec."""

    original: TraversalSpec
    normalized: TraversalSpec
    analysis: CallSetAnalysis
    autoropes: IterativeKernel
    lockstep: Optional[IterativeKernel]
    lockstep_unavailable_reason: Optional[str]
    #: human-readable log of the transformation steps applied.
    log: List[str] = field(default_factory=list)

    @property
    def unguided(self) -> bool:
        return self.analysis.unguided

    def kernel(self, lockstep: bool) -> IterativeKernel:
        """Fetch the requested variant, failing loudly if unavailable."""
        if not lockstep:
            return self.autoropes
        if self.lockstep is None:
            raise LockstepNotApplicable(
                self.lockstep_unavailable_reason or "lockstep unavailable"
            )
        return self.lockstep

    def choose_variant(
        self, similarity: Optional[TraversalSimilarity]
    ) -> IterativeKernel:
        """Section 4.4's policy: lockstep when available and profiling
        says neighboring traversals are similar (or no profile given and
        the traversal is unguided)."""
        if self.lockstep is None:
            return self.autoropes
        if similarity is None:
            return self.lockstep if self.unguided else self.autoropes
        return self.lockstep if similarity.recommend_lockstep else self.autoropes


class TransformPipeline:
    """Stateless driver; one ``compile`` call per traversal spec."""

    def compile(self, spec: TraversalSpec) -> CompiledTraversal:
        log: List[str] = []
        if is_pseudo_tail_recursive(spec):
            normalized = spec
            log.append("body already pseudo-tail-recursive")
        else:
            normalized = normalize_to_pseudo_tail(spec)
            log.append(
                "normalized to pseudo-tail-recursive form "
                "(tail duplication + update push-down)"
            )
        analysis = analyze_call_sets(normalized)
        log.append(
            f"call sets: {len(analysis.call_sets)} "
            f"({'unguided' if analysis.unguided else 'guided'})"
        )
        kernel = apply_autoropes(normalized)
        log.append("autoropes applied")
        lockstep: Optional[IterativeKernel]
        reason: Optional[str]
        try:
            lockstep = apply_lockstep(kernel)
            reason = None
            votes = sorted(lockstep.vote_conditions)
            log.append(
                "lockstep derived"
                + (f" with vote conditions {votes}" if votes else "")
            )
        except LockstepNotApplicable as exc:
            lockstep, reason = None, str(exc)
            log.append(f"lockstep unavailable: {exc}")
        # Plan compilation (repro.core.compile): flatten each kernel body
        # into a linear program of pre-resolved ops, once, here — every
        # launch over this plan then runs the program instead of
        # re-walking the AST per step.  Memoized on the kernel instance,
        # so plan-cache hits reuse the programs too.
        prog = program_for(kernel)
        log.append(f"program compiled: {prog.n_ops} ops (autoropes)")
        if lockstep is not None:
            prog_l = program_for(lockstep)
            log.append(f"program compiled: {prog_l.n_ops} ops (lockstep)")
        return CompiledTraversal(
            original=spec,
            normalized=normalized,
            analysis=analysis,
            autoropes=kernel,
            lockstep=lockstep,
            lockstep_unavailable_reason=reason,
            log=log,
        )
