"""The paper's contribution: general transformations for tree traversals.

* :mod:`repro.core.ir` — the traversal mini-language (Fig. 1's abstract
  pattern as an AST with opaque, vectorized predicate/update callbacks).
* :mod:`repro.core.callset` — static call-set analysis over the reduced
  CFG; guided/unguided classification (Section 3.2.1).
* :mod:`repro.core.pseudotail` — pseudo-tail-recursion checking and the
  systematic normalization into pseudo-tail-recursive form (Section 3.2).
* :mod:`repro.core.autoropes` — the autoropes transformation
  (Section 3.2.2, Figures 6/7).
* :mod:`repro.core.lockstep` — lockstep traversal: mask channels, warp
  votes, dynamic single-call-set majority voting (Section 4).
* :mod:`repro.core.annotations` — programmer annotations (call-set
  semantic equivalence, Section 4.3).
* :mod:`repro.core.profiling` — run-time sampling to decide whether
  points are sorted enough for lockstep (Section 4.4).
* :mod:`repro.core.pipeline` — the end-to-end "compiler" driver
  (Section 5).
* :mod:`repro.core.codegen` — pseudocode pretty-printer for original and
  transformed kernels (reproduces the shapes of Figures 4-8).
"""

from repro.core.ir import (
    ArgDecl,
    CondRef,
    for_each_child,
    UpdateRef,
    ChildRef,
    If,
    Recurse,
    Return,
    Seq,
    Update,
    TraversalSpec,
    EvalContext,
)
from repro.core.callset import CallSetAnalysis, analyze_call_sets
from repro.core.pseudotail import (
    NotPseudoTailRecursive,
    is_pseudo_tail_recursive,
    normalize_to_pseudo_tail,
)
from repro.core.autoropes import IterativeKernel, apply_autoropes
from repro.core.lockstep import LockstepKernel, apply_lockstep
from repro.core.annotations import Annotation
from repro.core.profiling import TraversalSimilarity, sample_similarity
from repro.core.identify import StructureError, StructureReport, identify_structure
from repro.core.pipeline import TransformPipeline, CompiledTraversal

__all__ = [
    "ArgDecl",
    "CondRef",
    "UpdateRef",
    "ChildRef",
    "If",
    "Recurse",
    "Return",
    "Seq",
    "Update",
    "for_each_child",
    "TraversalSpec",
    "EvalContext",
    "CallSetAnalysis",
    "analyze_call_sets",
    "NotPseudoTailRecursive",
    "is_pseudo_tail_recursive",
    "normalize_to_pseudo_tail",
    "IterativeKernel",
    "apply_autoropes",
    "LockstepKernel",
    "apply_lockstep",
    "Annotation",
    "TraversalSimilarity",
    "sample_similarity",
    "TransformPipeline",
    "CompiledTraversal",
    "StructureError",
    "StructureReport",
    "identify_structure",
]
