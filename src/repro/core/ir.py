"""Traversal IR: the abstract tree-traversal pattern of Figure 1 as an AST.

Every benchmark in the paper fits the shape::

    void recurse(Point p, TreeNode n, ...) {
        if (truncate?(p, n, ...)) return;
        update(p, n, ...);
        foreach (TreeNode child : n.children())
            recurse(p, child, ...);
    }

We capture that shape with a tiny statement language — :class:`Seq`,
:class:`If`, :class:`Update`, :class:`Return`, :class:`Recurse` — whose
conditions and updates are *opaque references* (:class:`CondRef`,
:class:`UpdateRef`) bound to vectorized numpy callbacks. The analyses in
:mod:`repro.core.callset` and the transformations in
:mod:`repro.core.autoropes` / :mod:`repro.core.lockstep` operate purely
on this structure, never on the callback semantics — that is exactly the
paper's claim of semantics-agnostic generality.

Callback conventions
--------------------

All callbacks are vectorized over a batch of (point, node) pairs:

* condition: ``fn(ctx, node, pt, args) -> bool ndarray``
* update:    ``fn(ctx, node, pt, args) -> None`` (mutates ``ctx.out``)
* arg rule:  ``fn(ctx, node, pt, args) -> ndarray`` (new value per pair)

where ``node`` and ``pt`` are equal-length int64 index arrays, ``args``
is a dict of per-pair traversal-argument value arrays, and ``ctx`` is an
:class:`EvalContext` giving access to the tree, the point set, result
arrays, and scalar parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Mapping, Optional, Sequence, Tuple

import numpy as np

# ---------------------------------------------------------------------------
# Opaque references
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CondRef:
    """A boolean predicate over (point, node, args).

    Attributes
    ----------
    point_dependent:
        whether the predicate reads point state. Structure-only
        predicates (e.g. ``is_leaf``) keep a traversal unguided even
        when they select between branches.
    reads:
        tree field groups the predicate loads (drives the partial-node
        load accounting of Section 5.2).
    cost:
        instruction-issue weight (roughly, arithmetic ops evaluated).
    """

    name: str
    point_dependent: bool = True
    reads: Tuple[str, ...] = ()
    cost: float = 1.0


@dataclass(frozen=True)
class UpdateRef:
    """A side-effecting update of per-point result state."""

    name: str
    reads: Tuple[str, ...] = ()
    cost: float = 1.0


@dataclass(frozen=True)
class ChildRef:
    """Which child a recursive call descends into (a structural name).

    ``point_dependent`` exists for completeness of the guided/unguided
    analysis: a child selector computed from point state would make the
    traversal guided even with a single call set. All our benchmarks use
    fixed structural selectors, as do the paper's.
    """

    name: str
    point_dependent: bool = False


@dataclass(frozen=True)
class ArgDecl:
    """A traversal argument threaded through recursive calls.

    ``update`` of ``None`` marks the argument *traversal-invariant*: its
    value never changes, so autoropes keeps it out of the rope stack
    (Section 3.2.2, the ``c`` argument of Fig. 7). Otherwise ``update``
    names a bound arg-rule callback evaluated at each recursive call
    (the ``dsq * 0.25`` of Fig. 9), and the argument value is pushed
    alongside the rope.
    """

    name: str
    initial: float
    update: Optional[str] = None
    dtype: np.dtype = np.dtype(np.float64)
    #: whether the argument's value depends on point state. Point-
    #: independent arguments are warp-uniform under lockstep and can be
    #: "saved per warp rather than per thread" (Section 5.2).
    point_dependent: bool = False

    @property
    def invariant(self) -> bool:
        return self.update is None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    """Base class for traversal-body statements."""

    def children_stmts(self) -> Tuple["Stmt", ...]:
        return ()

    def walk(self) -> Iterator["Stmt"]:
        """Pre-order traversal of the statement tree."""
        yield self
        for child in self.children_stmts():
            yield from child.walk()


@dataclass(frozen=True)
class Seq(Stmt):
    """Sequential composition."""

    stmts: Tuple[Stmt, ...]

    def __init__(self, *stmts: Stmt) -> None:
        flat = []
        for s in stmts:
            if isinstance(s, Seq):
                flat.extend(s.stmts)
            else:
                flat.append(s)
        object.__setattr__(self, "stmts", tuple(flat))

    def children_stmts(self) -> Tuple[Stmt, ...]:
        return self.stmts


@dataclass(frozen=True)
class If(Stmt):
    """Two-way branch on an opaque condition."""

    cond: CondRef
    then: Stmt
    orelse: Optional[Stmt] = None

    def children_stmts(self) -> Tuple[Stmt, ...]:
        if self.orelse is None:
            return (self.then,)
        return (self.then, self.orelse)


@dataclass(frozen=True)
class Update(Stmt):
    """Apply an opaque per-point update at the current node."""

    fn: UpdateRef


@dataclass(frozen=True)
class Return(Stmt):
    """Truncate: end this (point, node) visit."""


@dataclass(frozen=True)
class Recurse(Stmt):
    """Recursive call descending into one child.

    ``site_id`` identifies the call site for call-set analysis; it is
    assigned by :func:`number_call_sites` and must be unique within a
    spec body. ``arg_overrides`` maps argument names to arg-rule names
    evaluated *at this site only*, overriding the declaration-level
    rule; the pseudo-tail normalization uses this to thread its
    synthetic call-set/child identifiers (Section 3.2).
    """

    child: ChildRef
    site_id: int = -1
    arg_overrides: Tuple[Tuple[str, str], ...] = ()


def number_call_sites(body: Stmt) -> Stmt:
    """Return a copy of ``body`` with Recurse sites numbered 0..n-1 in
    textual (pre-order) order."""
    counter = [0]

    def rewrite(stmt: Stmt) -> Stmt:
        if isinstance(stmt, Recurse):
            new = Recurse(
                child=stmt.child,
                site_id=counter[0],
                arg_overrides=stmt.arg_overrides,
            )
            counter[0] += 1
            return new
        if isinstance(stmt, Seq):
            return Seq(*[rewrite(s) for s in stmt.stmts])
        if isinstance(stmt, If):
            return If(
                cond=stmt.cond,
                then=rewrite(stmt.then),
                orelse=None if stmt.orelse is None else rewrite(stmt.orelse),
            )
        return stmt

    return rewrite(body)


def recurse_sites(body: Stmt) -> Tuple[Recurse, ...]:
    """All Recurse statements in pre-order."""
    return tuple(s for s in body.walk() if isinstance(s, Recurse))


def for_each_child(*names: str) -> Seq:
    """Sugar for Fig. 1's ``foreach (TreeNode child : n.children())``.

    The paper's footnote 1 assumes such loops are fully unrolled (tree
    nodes have a bounded out-degree), which keeps the reduced CFG
    acyclic; this helper performs exactly that unrolling:
    ``for_each_child("c0", ..., "c7")`` is the eight recursive calls of
    the Barnes-Hut body.
    """
    if not names:
        raise ValueError("for_each_child needs at least one child slot")
    return Seq(*[Recurse(ChildRef(n)) for n in names])


# ---------------------------------------------------------------------------
# Evaluation context and specs
# ---------------------------------------------------------------------------


@dataclass
class EvalContext:
    """Everything callbacks may read or write during a traversal.

    ``tree`` is any object exposing the arrays the app's callbacks use
    (typically a :class:`repro.trees.linearize.LinearTree`). ``out``
    holds per-point result arrays the updates mutate; ``params`` holds
    run-wide scalars (correlation radius, opening-angle threshold, k).
    """

    tree: object
    points: object
    out: Dict[str, np.ndarray] = field(default_factory=dict)
    params: Dict[str, float] = field(default_factory=dict)


Callback = Callable[..., np.ndarray]


@dataclass
class TraversalSpec:
    """A complete recursive traversal: body + argument decls + bindings.

    This is what an application hands to the transformation pipeline —
    the moral equivalent of the annotated C++ the paper's ROSE pass
    consumes (Section 5.1).
    """

    name: str
    body: Stmt
    args: Tuple[ArgDecl, ...] = ()
    conditions: Mapping[str, Callback] = field(default_factory=dict)
    updates: Mapping[str, Callback] = field(default_factory=dict)
    arg_rules: Mapping[str, Callback] = field(default_factory=dict)
    annotations: frozenset = frozenset()
    #: Field group holding child pointers (charged when pushing ropes).
    child_field_group: str = "cold"
    #: Set by the pseudo-tail normalization when deferred (pushed-down)
    #: updates exist: recursive calls then visit *null* children too, as
    #: phantom entries whose only job is to pay the parent's pending
    #: update before a null-guard truncates them.
    visits_null_children: bool = False

    def __post_init__(self) -> None:
        self.body = number_call_sites(self.body)
        self.validate()

    def validate(self) -> None:
        """Check that every opaque reference has a binding and that
        declared argument-update rules exist."""
        for stmt in self.body.walk():
            if isinstance(stmt, If) and stmt.cond.name not in self.conditions:
                raise KeyError(f"unbound condition {stmt.cond.name!r}")
            if isinstance(stmt, Update) and stmt.fn.name not in self.updates:
                raise KeyError(f"unbound update {stmt.fn.name!r}")
        for arg in self.args:
            if arg.update is not None and arg.update not in self.arg_rules:
                raise KeyError(f"unbound arg rule {arg.update!r} for {arg.name!r}")
        seen = set()
        for site in recurse_sites(self.body):
            if site.site_id in seen:
                raise ValueError("duplicate call-site ids; use number_call_sites")
            seen.add(site.site_id)

    @property
    def variant_args(self) -> Tuple[ArgDecl, ...]:
        """Arguments that must travel on the rope stack."""
        return tuple(a for a in self.args if not a.invariant)

    @property
    def invariant_args(self) -> Tuple[ArgDecl, ...]:
        return tuple(a for a in self.args if a.invariant)

    def eval_condition(
        self,
        ref: CondRef,
        ctx: EvalContext,
        node: np.ndarray,
        pt: np.ndarray,
        args: Dict[str, np.ndarray],
    ) -> np.ndarray:
        result = self.conditions[ref.name](ctx, node, pt, args)
        return np.asarray(result, dtype=bool)

    def eval_update(
        self,
        ref: UpdateRef,
        ctx: EvalContext,
        node: np.ndarray,
        pt: np.ndarray,
        args: Dict[str, np.ndarray],
    ) -> None:
        self.updates[ref.name](ctx, node, pt, args)

    def eval_arg_rule(
        self,
        name: str,
        ctx: EvalContext,
        node: np.ndarray,
        pt: np.ndarray,
        args: Dict[str, np.ndarray],
    ) -> np.ndarray:
        return np.asarray(self.arg_rules[name](ctx, node, pt, args))

    def initial_args(self, n: int) -> Dict[str, np.ndarray]:
        """Per-pair argument values at the root, for ``n`` pairs."""
        return {
            a.name: np.full(n, a.initial, dtype=a.dtype) for a in self.args
        }
