"""Plan compilation: IR kernels -> linear programs of pre-resolved ops.

The executors in :mod:`repro.gpusim.executors` originally re-walked the
autoropes AST on every traversal step: per-step ``isinstance`` dispatch,
per-``If`` dictionary lookups of condition callbacks by name, per-push
linear scans of the argument declarations, and a re-derivation of the
branch kind (vote vs. structural vs. predicated) from
``kernel.vote_conditions`` membership at every visit.  All of that is
*static* — it depends only on the kernel, never on the run — so this
module hoists it into a one-time compile:

* each kernel body (``Seq``/``If``/``Update``/``Continue``/
  ``PushGroup``) is flattened into a linear tuple of op records;
* every opaque reference is resolved to its bound callable once
  (conditions, updates, declaration-level arg rules, per-site
  overrides);
* every ``If`` is tagged with its branch kind up front
  (:data:`BRANCH_VOTE` for call-set-selecting conditions under
  lockstep, :data:`BRANCH_UNIFORM` for structure-only conditions,
  :data:`BRANCH_PREDICATE` otherwise);
* every ``PushGroup`` carries its push-order calls, pre-bound arg-rule
  appliers with target dtypes, and the field groups to charge;
* *dominated* field-group reads are pruned: liveness only shrinks
  along a kernel body (branches split it, ``Continue`` clears it), so
  a group already read by an earlier op of the same step is charged to
  a superset of the current warps — the executors' per-step charge
  dedup makes the second charge a guaranteed no-op, and the compiled
  program simply drops it.

Programs are memoized on the kernel instance via :func:`program_for`,
so a :class:`~repro.core.pipeline.CompiledTraversal` cached in the
shared :class:`~repro.core.plancache.PlanCache` carries its programs
with it — the service compiles once per session, the experiment
harness once per (benchmark, input, sorted?) triple.  A program is
tree-schema-agnostic: child names and field-group names are resolved
against the launch's tree and memory regions at bind time, exactly as
the interpreter did.

The executors' interpreters are kept (``TraversalLaunch(engine=
"interp")``) as the differential baseline; ``benchmarks/perf`` asserts
the two engines produce bit-identical simulated stats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.core.autoropes import Continue, IterativeKernel, PushGroup
from repro.core.ir import If, Seq, Stmt, TraversalSpec, Update

# -- branch kinds (pre-resolved per If) -------------------------------------

#: call-set-selecting condition under lockstep: per-warp majority vote,
#: one extra warp instruction for the vote op (Section 4.3).
BRANCH_VOTE = 0
#: structure-only condition: warp-uniform because the node is shared,
#: no vote needed.
BRANCH_UNIFORM = 1
#: per-lane predication (truncation-style conditions).
BRANCH_PREDICATE = 2

# -- op tags (class attributes, cheap int dispatch in the walkers) ----------

TAG_COND = 0
TAG_UPDATE = 1
TAG_PUSH = 2
TAG_CONTINUE = 3


@dataclass(frozen=True)
class ArgApplier:
    """One traversal-variant argument's pre-bound update rule.

    ``rule`` is ``None`` for carried-through values (no re-evaluation,
    no copy needed at push time); otherwise the bound arg-rule callback.
    """

    name: str
    rule: Optional[Callable]
    dtype: np.dtype


@dataclass(frozen=True)
class PushCall:
    """One child push site: structural child name + per-site overrides."""

    child: str
    overrides: Tuple[ArgApplier, ...] = ()


@dataclass(frozen=True)
class CondOp:
    """A pre-resolved two-way branch."""

    name: str
    fn: Callable
    cost: float
    reads: Tuple[str, ...]
    branch: int
    then_ops: Tuple
    #: ``None`` distinguishes a missing else (fall through live) from an
    #: empty one.
    else_ops: Optional[Tuple]

    tag = TAG_COND


@dataclass(frozen=True)
class UpdateOp:
    """A pre-resolved per-point update."""

    name: str
    fn: Callable
    cost: float
    reads: Tuple[str, ...]

    tag = TAG_UPDATE


@dataclass(frozen=True)
class PushGroupOp:
    """A pre-resolved run of child pushes.

    ``calls`` is already in *push order* (reversed call order, so LIFO
    pops preserve the recursive visit order).  ``variant_rules`` holds
    one :class:`ArgApplier` per traversal-variant argument, in
    declaration order.
    """

    calls: Tuple[PushCall, ...]
    variant_rules: Tuple[ArgApplier, ...]
    child_group: Tuple[str, ...]
    visits_null: bool
    #: any declaration rule or per-site override to evaluate at push
    #: time; ``False`` lets executors skip the representative-point and
    #: row-subset machinery entirely (carried args pass through).
    needs_rules: bool = False

    tag = TAG_PUSH


@dataclass(frozen=True)
class ContinueOp:
    """Clears liveness for the rest of the body (next stack pop)."""

    tag = TAG_CONTINUE


@dataclass(frozen=True)
class CompiledProgram:
    """A kernel body flattened into a linear tuple of pre-resolved ops."""

    ops: Tuple
    n_ops: int
    lockstep: bool

    def walk(self):
        """All ops, pre-order (for tests and logging)."""

        def rec(ops):
            for op in ops:
                yield op
                if op.tag == TAG_COND:
                    yield from rec(op.then_ops)
                    if op.else_ops is not None:
                        yield from rec(op.else_ops)

        yield from rec(self.ops)

    def op_histogram(self) -> dict:
        """Op counts by kind (and branch kind for conditions).

        Static shape facts for one compiled variant — the telemetry
        layer publishes them as per-plan gauges, so a recompile that
        changes the program (e.g. different dominated-read pruning) is
        visible in the metrics without diffing op tuples.
        """
        tag_names = {
            TAG_COND: "cond",
            TAG_UPDATE: "update",
            TAG_PUSH: "push",
            TAG_CONTINUE: "continue",
        }
        branch_names = {
            BRANCH_VOTE: "branch_vote",
            BRANCH_UNIFORM: "branch_uniform",
            BRANCH_PREDICATE: "branch_predicate",
        }
        hist: dict = {}
        for op in self.walk():
            kind = tag_names[op.tag]
            hist[kind] = hist.get(kind, 0) + 1
            if op.tag == TAG_COND:
                bk = branch_names[op.branch]
                hist[bk] = hist.get(bk, 0) + 1
        hist["total"] = self.n_ops
        return hist

    def op_table(self) -> Tuple[Tuple[int, str], ...]:
        """``(index, label)`` for every op, in :meth:`walk` order.

        The index is the op's position in the pre-order walk (the same
        enumeration :meth:`op_histogram` counts over); the label is
        :func:`op_label`'s engine-agnostic name, which the continuous
        kernel profiler uses to key per-op cost attribution so interp
        and compiled runs of the same kernel aggregate onto identical
        series.
        """
        return tuple((i, op_label(op)) for i, op in enumerate(self.walk()))


def op_label(op) -> str:
    """Engine-agnostic label for a compiled op *or* an AST statement.

    Both executors' engines key profiler attribution by this label:
    the compiled walker passes :class:`CondOp`/:class:`UpdateOp`/
    :class:`PushGroupOp`/:class:`ContinueOp` records, the interp
    baseline passes the original :class:`~repro.core.ir.If`/
    :class:`~repro.core.ir.Update`/
    :class:`~repro.core.autoropes.PushGroup` statements — the same
    kernel position produces the same label either way, so hot-op
    rankings are comparable across engines.
    """
    tag = getattr(op, "tag", None)
    if tag == TAG_COND:
        return f"cond:{op.name}"
    if tag == TAG_UPDATE:
        return f"update:{op.name}"
    if tag == TAG_PUSH:
        return "push:" + "+".join(sorted(c.child for c in op.calls))
    if tag == TAG_CONTINUE:
        return "continue"
    if isinstance(op, If):
        return f"cond:{op.cond.name}"
    if isinstance(op, Update):
        return f"update:{op.fn.name}"
    if isinstance(op, PushGroup):
        return "push:" + "+".join(sorted(c.child.name for c in op.push_order))
    if isinstance(op, Continue):
        return "continue"
    raise TypeError(f"cannot label {type(op).__name__}")


def _applier(spec: TraversalSpec, arg_name: str, rule_name: Optional[str]) -> ArgApplier:
    decl = next(a for a in spec.args if a.name == arg_name)
    rule = spec.arg_rules[rule_name] if rule_name is not None else None
    return ArgApplier(name=arg_name, rule=rule, dtype=decl.dtype)


def _fresh(reads: Tuple[str, ...], seen: set) -> Tuple[str, ...]:
    """The field groups not already read by a dominating op this step."""
    kept = tuple(g for g in reads if g not in seen)
    seen.update(reads)
    return kept


def _flatten(kernel: IterativeKernel, stmt: Stmt, seen: set) -> Tuple:
    """Flatten ``stmt``; ``seen`` holds the field groups read by every
    op that *dominates* this point (earlier siblings and enclosing
    conditions — their live masks are supersets of this statement's, so
    re-charging those groups is a no-op the program can drop).  Branch
    bodies extend copies: a group read only inside one arm is not
    charged for the other arm's warps."""
    spec = kernel.spec
    if isinstance(stmt, Seq):
        ops: list = []
        for s in stmt.stmts:
            ops.extend(_flatten(kernel, s, seen))
        return tuple(ops)
    if isinstance(stmt, Continue):
        return (ContinueOp(),)
    if isinstance(stmt, If):
        cond = stmt.cond
        if cond.name in kernel.vote_conditions:
            branch = BRANCH_VOTE
        elif not cond.point_dependent:
            branch = BRANCH_UNIFORM
        else:
            branch = BRANCH_PREDICATE
        reads = _fresh(cond.reads, seen)
        return (
            CondOp(
                name=cond.name,
                fn=spec.conditions[cond.name],
                cost=cond.cost,
                reads=reads,
                branch=branch,
                then_ops=_flatten(kernel, stmt.then, set(seen)),
                else_ops=(
                    None
                    if stmt.orelse is None
                    else _flatten(kernel, stmt.orelse, set(seen))
                ),
            ),
        )
    if isinstance(stmt, Update):
        return (
            UpdateOp(
                name=stmt.fn.name,
                fn=spec.updates[stmt.fn.name],
                cost=stmt.fn.cost,
                reads=_fresh(stmt.fn.reads, seen),
            ),
        )
    if isinstance(stmt, PushGroup):
        calls = tuple(
            PushCall(
                child=call.child.name,
                overrides=tuple(
                    _applier(spec, arg_name, rule_name)
                    for arg_name, rule_name in call.arg_overrides
                ),
            )
            for call in stmt.push_order
        )
        variant_rules = tuple(
            _applier(spec, a.name, a.update) for a in spec.variant_args
        )
        needs_rules = any(r.rule is not None for r in variant_rules) or any(
            c.overrides for c in calls
        )
        return (
            PushGroupOp(
                calls=calls,
                variant_rules=variant_rules,
                child_group=_fresh((spec.child_field_group,), seen),
                visits_null=spec.visits_null_children,
                needs_rules=needs_rules,
            ),
        )
    raise TypeError(f"cannot compile {type(stmt).__name__}")


def compile_kernel(kernel: IterativeKernel) -> CompiledProgram:
    """Compile an iterative kernel's body into a linear op program."""
    ops = _flatten(kernel, kernel.body, set())
    prog = CompiledProgram(ops=ops, n_ops=0, lockstep=kernel.lockstep)
    n = sum(1 for _ in prog.walk())
    object.__setattr__(prog, "n_ops", n)
    return prog


def program_for(kernel: IterativeKernel) -> CompiledProgram:
    """The memoized compiled program for ``kernel``.

    Compiles on first use and stashes the program on the kernel
    instance, so plans cached in the shared
    :class:`~repro.core.plancache.PlanCache` amortize compilation
    across every launch of the session.
    """
    prog = kernel.__dict__.get("_compiled_program")
    if prog is None:
        prog = compile_kernel(kernel)
        object.__setattr__(kernel, "_compiled_program", prog)
    return prog
