"""Static call-set analysis (Section 3.2.1).

A *static call set* is the ordered set of recursive calls executed along
one path through the traversal function. We enumerate paths over the
reduced CFG — which, for our loop-free IR (recursive calls visiting
children are fully unrolled per the paper's footnote 1), is simply every
root-to-exit path of the statement tree — and collect, per path:

* the sequence of :class:`~repro.core.ir.Recurse` site ids (the call set),
* the branch decisions that select the path and whether any of those
  conditions is point-dependent.

From the call sets we derive the properties the transformations need:

* **pseudo-tail-recursion** support: whether along every path, nothing
  but recursive calls follows the first recursive call;
* **guided vs unguided**: a traversal is (conservatively) unguided iff
  there is exactly one distinct call set and no recursive call's node
  argument depends on point state. With a single call set, any point-
  dependent branching can only *truncate*, never reorder, so all points
  share one canonical linearization of the tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.core.ir import (
    ChildRef,
    CondRef,
    If,
    Recurse,
    Return,
    Seq,
    Stmt,
    TraversalSpec,
    Update,
    UpdateRef,
)

# Path events: what happened, in execution order, along one CFG path.


@dataclass(frozen=True)
class BranchEvent:
    cond: CondRef
    taken: bool


@dataclass(frozen=True)
class UpdateEvent:
    fn: UpdateRef


@dataclass(frozen=True)
class CallEvent:
    site_id: int
    child: ChildRef


@dataclass(frozen=True)
class ReturnEvent:
    pass


PathEvent = object
Path = Tuple[PathEvent, ...]


def enumerate_paths(body: Stmt, max_paths: int = 4096) -> List[Path]:
    """All root-to-exit event sequences of the (acyclic) reduced CFG.

    ``max_paths`` guards against pathological specs; real traversal
    functions have a handful of paths (Fig. 4 has 3, Fig. 5 has 4).
    """

    def seq_paths(stmts: Tuple[Stmt, ...]) -> List[Path]:
        if not stmts:
            return [()]
        head, rest = stmts[0], stmts[1:]
        if isinstance(head, Return):
            return [(ReturnEvent(),)]
        if isinstance(head, Recurse):
            suffixes = seq_paths(rest)
            return [(CallEvent(head.site_id, head.child),) + s for s in suffixes]
        if isinstance(head, Update):
            suffixes = seq_paths(rest)
            return [(UpdateEvent(head.fn),) + s for s in suffixes]
        if isinstance(head, Seq):
            return seq_paths(head.stmts + rest)
        if isinstance(head, If):
            out: List[Path] = []
            then_stmts = (head.then,) + rest
            for p in seq_paths(then_stmts):
                out.append((BranchEvent(head.cond, True),) + p)
            else_stmts = ((head.orelse,) if head.orelse is not None else ()) + rest
            for p in seq_paths(else_stmts):
                out.append((BranchEvent(head.cond, False),) + p)
            if len(out) > max_paths:
                raise ValueError(
                    f"reduced CFG has more than {max_paths} paths; "
                    "is the traversal body well-formed?"
                )
            return out
        raise TypeError(f"unknown statement {type(head).__name__}")

    return seq_paths((body,))


@dataclass(frozen=True)
class CallSet:
    """One static call set: ordered recursive calls along a path."""

    sites: Tuple[int, ...]
    children: Tuple[ChildRef, ...]

    def __len__(self) -> int:
        return len(self.sites)


@dataclass(frozen=True)
class CallSetAnalysis:
    """Result of static call-set analysis over a traversal body."""

    call_sets: Tuple[CallSet, ...]
    #: paths that execute no recursive call (pure truncations).
    n_truncating_paths: int
    #: every recursive call is followed only by recursive calls.
    pseudo_tail_recursive: bool
    #: node arguments of recursive calls never depend on point state.
    point_independent_children: bool

    @property
    def single_call_set(self) -> bool:
        return len(self.call_sets) == 1

    @property
    def unguided(self) -> bool:
        """Conservative classification (Section 3.2.1): single call set
        whose node arguments are point-independent."""
        return self.single_call_set and self.point_independent_children

    @property
    def guided(self) -> bool:
        return not self.unguided

    def call_set_for_sites(self, sites: Tuple[int, ...]) -> Optional[int]:
        for i, cs in enumerate(self.call_sets):
            if cs.sites == sites:
                return i
        return None


def analyze_call_sets(spec_or_body) -> CallSetAnalysis:
    """Run static call-set analysis on a spec (or raw body).

    Each recursive call participates in the call set of every path it
    lies on; for pseudo-tail-recursive functions each call belongs to
    exactly one call set (checked by the autoropes transformation, which
    relies on it).
    """
    body = spec_or_body.body if isinstance(spec_or_body, TraversalSpec) else spec_or_body
    paths = enumerate_paths(body)

    call_sets: List[CallSet] = []
    seen: set = set()
    n_truncating = 0
    pseudo_tail = True
    point_independent = True

    for path in paths:
        calls = [e for e in path if isinstance(e, CallEvent)]
        if not calls:
            n_truncating += 1
            continue
        sites = tuple(e.site_id for e in calls)
        children = tuple(e.child for e in calls)
        if sites not in seen:
            seen.add(sites)
            call_sets.append(CallSet(sites=sites, children=children))
        if any(c.point_dependent for c in children):
            point_independent = False
        # pseudo-tail: after the first call event, only call events may
        # appear — except a trailing Return, which *is* the exit node
        # the definition allows recursive calls to precede.
        first = next(
            i for i, e in enumerate(path) if isinstance(e, CallEvent)
        )
        for offset, e in enumerate(path[first:], start=first):
            if isinstance(e, CallEvent):
                continue
            if isinstance(e, ReturnEvent) and offset == len(path) - 1:
                continue
            pseudo_tail = False
            break

    return CallSetAnalysis(
        call_sets=tuple(call_sets),
        n_truncating_paths=n_truncating,
        pseudo_tail_recursive=pseudo_tail,
        point_independent_children=point_independent,
    )
