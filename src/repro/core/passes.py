"""Transformation-pass registry and source-emission backends.

The paper's system is a source-to-source compiler: mechanical,
composable transformations take a recursive traversal to GPU form.
This module gives the reproduction the same architecture for its *own*
backends: every code-emitting path in the repo — the Fig. 4-8
pseudocode renderers, the scalar per-point Python backend, and the
``engine="codegen"`` vectorized NumPy loop generator — runs through one
registry of declared transformation passes (modeled on dace's
``GPUTransformMap``/``GPUTransformSubgraph``: each pass declares its
properties, a ``can_apply`` precondition, and an ``apply`` rewrite).

The codegen pipeline lowers a :class:`~repro.core.compile.
CompiledProgram` into an annotated op tree and emits standalone source
for the executor's whole per-step loop:

* conditions are inlined as direct calls to the pre-bound callables,
  with the compiled engine's dense-grid evaluation heuristic baked in;
* branch-kind dispatch (vote / warp-uniform / predicate) is resolved at
  emit time — each ``If`` becomes exactly the code its kind needs;
* consecutive field-group loads are fused: loads issued under provably
  equal live masks share one gather index computation, one
  ``to_charge`` mask, one ``sum()`` and a single combined
  ``bytes_requested`` update.  The *access sequence* into the memory
  model is preserved verbatim — the L2 reuse window and its EMA are
  order-sensitive, and bit-identical simulated stats are the contract
  (the fusion-soundness framing follows Sakka et al., arXiv:1904.07061:
  liveness only changes at branch merges and ``Continue``, so loads
  between those points execute under identical masks);
* frontier compaction, the stuck-warp guard, popped-node validation,
  tracing, profiling and the visit log are emitted *only when the plan
  enables them* — a clean launch's loop contains no dead branches;
* cold paths (the compaction gather, the chaos guard) call back into
  the executor's audited helpers instead of being re-implemented.

The generated function is ``exec``-compiled once and memoized per
(kernel instance, loop facts digest); the service additionally caches
it in the shared :class:`~repro.core.plancache.PlanCache` keyed by
(plan key, variant, plan epoch, device digest) so ``refresh_plan``
eviction and epoch bumps make a stale function unservable.

Differential testing is the safety net: ``tests/test_engine_
equivalence.py`` proves codegen, compiled and interp produce
bit-identical simulated stats on all five benchmarks, sorted and
unsorted, with and without chaos.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.autoropes import Continue, IterativeKernel, PushGroup
from repro.core.compile import (
    BRANCH_PREDICATE,
    BRANCH_UNIFORM,
    BRANCH_VOTE,
    TAG_COND,
    TAG_CONTINUE,
    TAG_PUSH,
    TAG_UPDATE,
    program_for,
)
from repro.core.ir import If, Recurse, Return, Seq, Stmt, TraversalSpec, Update

_INDENT = "    "

#: optional observer called with ``(name, source)`` every time a loop
#: body is emitted — the CLI's ``--dump-source`` hangs a writer here.
dump_sink: Optional[Callable[[str, str], None]] = None


class SourceWriter:
    """Indentation-managed line accumulator shared by every backend."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.depth = 0
        self._fresh = 0

    def line(self, text: str = "") -> None:
        self.lines.append(_INDENT * self.depth + text if text else "")

    def indent(self) -> None:
        self.depth += 1

    def dedent(self) -> None:
        self.depth -= 1

    def fresh(self, prefix: str) -> str:
        self._fresh += 1
        return f"{prefix}{self._fresh}"

    def source(self) -> str:
        return "\n".join(self.lines)


# -- pass registry (the dace-style declared-transformation model) -----------


class Property:
    """A declared, type-checked pass property (dace ``Property`` lite).

    Declared as class attributes on a pass; instances get per-object
    values with the declared default, and assignments are type-checked
    against ``dtype``.
    """

    def __init__(self, desc: str = "", dtype: type = bool, default=None):
        self.desc = desc
        self.dtype = dtype
        self.default = default
        self.name = ""

    def __set_name__(self, owner, name: str) -> None:
        self.name = name

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return obj.__dict__.get(self.name, self.default)

    def __set__(self, obj, value) -> None:
        if value is not None and not isinstance(value, self.dtype):
            raise TypeError(
                f"property {self.name!r} expects {self.dtype.__name__}, "
                f"got {type(value).__name__}"
            )
        obj.__dict__[self.name] = value


#: registration order defines pipeline order.
PASS_REGISTRY: Dict[str, type] = {}


def register_pass(cls):
    """Class decorator: auto-register a pass under its class name."""
    PASS_REGISTRY[cls.__name__] = cls
    return cls


class EmitPass:
    """Base transformation pass: pattern-match (``can_apply``) then
    rewrite (``apply``) an :class:`EmitUnit` in place."""

    @classmethod
    def properties(cls) -> Dict[str, Property]:
        out: Dict[str, Property] = {}
        for klass in reversed(cls.__mro__):
            for name, val in vars(klass).items():
                if isinstance(val, Property):
                    out[name] = val
        return out

    def can_apply(self, unit: "EmitUnit") -> bool:
        return True

    def apply(self, unit: "EmitUnit") -> None:
        raise NotImplementedError


# -- loop facts (the specialization key) -------------------------------------


@dataclass(frozen=True)
class LoopFacts:
    """Everything the emitted loop is specialized on.

    Two launches with equal facts (and the same kernel) share one
    generated function; anything runtime-variable but structurally
    inert (the compaction threshold value, region base addresses, the
    warp size) is read from the executor in the generated prelude
    instead of being baked in.
    """

    kind: str  # "lockstep" | "autoropes"
    compact: bool
    need_guard: bool
    validate: bool
    trace: bool
    prof: bool
    visit_log: bool
    on_visit: bool
    device: str
    #: warp size, baked into the source (shift/mask lane arithmetic).
    ws: int = 32
    #: rope-stack layout value ("interleaved_global" | ...): the
    #: inlined push/pop accounting is layout-specialized.
    layout: str = "interleaved_global"
    #: whether stack traffic is accounted at all (the recursive
    #: baselines charge call frames instead).
    account: bool = True
    #: coalescing segment size and its shift (None when not a power of
    #: two) — the inlined memory accounting bakes the segment math.
    #: Redundant with ``device`` in the digest, but needed at emit time.
    seg_bytes: int = 128
    seg_shift: Optional[int] = 7

    def digest(self) -> tuple:
        return (
            self.kind,
            self.compact,
            self.need_guard,
            self.validate,
            self.trace,
            self.prof,
            self.visit_log,
            self.on_visit,
            self.device,
            self.ws,
            self.layout,
            self.account,
            self.seg_bytes,
        )


def facts_for(executor, kind: str) -> LoopFacts:
    """Derive the loop facts for one executor instance."""
    L = executor.L
    # Subclasses that override the per-visit hook (the recursive
    # baselines) get the call emitted; the plain executors do not pay
    # for an empty method call per step.  Autoropes has no hook.
    on_visit = kind == "lockstep" and (
        getattr(type(executor), "_on_visit", None)
        is not getattr(_base_executor_for(kind), "_on_visit", None)
    )
    seg = int(L.device.segment_bytes)
    return LoopFacts(
        kind=kind,
        compact=L.compact_threshold > 0.0,
        need_guard=L.needs_guard,
        validate=bool(L.validate),
        trace=executor._trace is not None,
        prof=executor._prof is not None,
        visit_log=executor._visit_log is not None,
        on_visit=on_visit,
        device=device_digest(L.device),
        ws=int(executor.ws),
        layout=executor.stack.layout.value,
        account=bool(executor.stack.account),
        seg_bytes=seg,
        seg_shift=seg.bit_length() - 1 if seg & (seg - 1) == 0 else None,
    )


def device_digest(device) -> str:
    """A stable digest of the device configuration."""
    return repr(device)


def _base_executor_for(kind: str):
    if kind == "lockstep":
        from repro.gpusim.executors.lockstep_exec import LockstepExecutor

        return LockstepExecutor
    from repro.gpusim.executors.autoropes_exec import AutoropesExecutor

    return AutoropesExecutor


# -- emission unit: annotated op tree ----------------------------------------


@dataclass
class ChargeSite:
    """One field-group load site in walker order."""

    group: str
    index: int  # global site index for this group (0-based)
    total: int = 1  # total sites for this group (patched by the pass)
    fused_with: Optional[int] = None  # id of the fuse-run leader site


@dataclass
class ONode:
    """Mutable, annotatable mirror of one compiled op."""

    kind: str  # "cond" | "update" | "push" | "continue"
    op: object
    then: Optional[List["ONode"]] = None
    orelse: Optional[List["ONode"]] = None
    # pass annotations:
    strategy: Optional[str] = None  # cond: uniform | vote | predicate | gather
    charges: List[ChargeSite] = field(default_factory=list)


@dataclass
class EmitUnit:
    """The object the pass pipeline rewrites."""

    kernel: Optional[IterativeKernel]
    facts: Optional[LoopFacts]
    #: which backend family this unit is for: the codegen engine
    #: ("steploop"), the paper-figure pseudocode renderers
    #: ("render_recursive" / "render_iterative"), or the scalar
    #: per-point Python backend ("scalar_python").
    mode: str = "steploop"
    #: the recursive spec, for units lowered from a TraversalSpec
    #: rather than a compiled kernel (the pseudocode renderer).
    spec: object = None
    program: object = None
    nodes: List[ONode] = field(default_factory=list)
    multi_site_groups: Tuple[str, ...] = ()
    any_charges: bool = False
    source: str = ""
    bindings: Dict[str, object] = field(default_factory=dict)
    applied: List[str] = field(default_factory=list)


def run_pipeline(unit: EmitUnit) -> EmitUnit:
    """Run every applicable registered pass, in registration order."""
    for name, cls in PASS_REGISTRY.items():
        p = cls()
        if p.can_apply(unit):
            p.apply(unit)
            unit.applied.append(name)
    return unit

# -- analysis / rewrite passes ----------------------------------------------


@register_pass
class LowerProgram(EmitPass):
    """Lower the compiled op program into the mutable op tree.

    The one rewrite it performs is dead-tail truncation: ops that
    follow a ``ContinueOp`` in the same sequence can never execute (the
    walker returns on the continue), so they are dropped from the tree
    instead of being emitted behind an unreachable guard.
    """

    def can_apply(self, unit: EmitUnit) -> bool:
        return (
            unit.mode == "steploop"
            and unit.program is None
            and unit.kernel is not None
        )

    def apply(self, unit: EmitUnit) -> None:
        unit.program = program_for(unit.kernel)
        unit.nodes = self._lower(unit.program.ops)

    def _lower(self, ops: Tuple) -> List[ONode]:
        out: List[ONode] = []
        for op in ops:
            tag = op.tag
            if tag == TAG_CONTINUE:
                out.append(ONode(kind="continue", op=op))
                break  # dead-tail truncation
            if tag == TAG_COND:
                out.append(
                    ONode(
                        kind="cond",
                        op=op,
                        then=self._lower(op.then_ops),
                        orelse=(
                            None
                            if op.else_ops is None
                            else self._lower(op.else_ops)
                        ),
                    )
                )
            elif tag == TAG_UPDATE:
                out.append(ONode(kind="update", op=op))
            else:
                out.append(ONode(kind="push", op=op))
        return out


@register_pass
class ResolveBranches(EmitPass):
    """Resolve every condition's branch dispatch at emit time.

    Under the lockstep loop the compiled branch kind maps 1:1 onto an
    emission strategy (warp-uniform single evaluation, per-warp
    majority vote, or per-lane predication with the dense-grid
    heuristic).  The per-thread autoropes loop predicates every branch
    the same way — threads sit on different nodes, so no warp-uniform
    shortcut exists — and every condition lowers to one gather-
    evaluate-scatter strategy.
    """

    def can_apply(self, unit: EmitUnit) -> bool:
        return bool(unit.nodes)

    def apply(self, unit: EmitUnit) -> None:
        lockstep = unit.facts.kind == "lockstep"
        for node in _walk(unit.nodes):
            if node.kind != "cond":
                continue
            if not lockstep:
                node.strategy = "gather"
            elif node.op.branch == BRANCH_UNIFORM:
                node.strategy = "uniform"
            elif node.op.branch == BRANCH_VOTE:
                node.strategy = "vote"
            else:
                node.strategy = "predicate"


@register_pass
class PlanFieldCharges(EmitPass):
    """Plan the per-step field-group load (charge) sites.

    Walks the tree in execution order (then-arm before else-arm, the
    walker's order) and annotates every load site:

    * groups loaded at exactly one site need no ``seen`` dedup mask at
      all — the emitted load charges the site's live warps directly;
    * groups loaded at multiple sites (both arms of a branch may read
      the same group) get a lazily-initialized per-step ``seen``
      accumulator, reproducing the interpreter's charge dedup exactly;
    * consecutive loads under the *same* live mask (one op's multi-
      group read tuple) are fused: one ``to_charge`` mask, one
      ``sum()``, one column view and a single combined
      ``bytes_requested`` update feed the per-region accesses, whose
      order into the memory model is preserved verbatim (the L2 reuse
      window is order-sensitive; see the module docstring for the
      fusion-soundness argument).
    """

    fuse_loads = Property(
        desc="Fuse same-mask consecutive loads into one gather",
        dtype=bool,
        default=True,
    )

    def can_apply(self, unit: EmitUnit) -> bool:
        return bool(unit.nodes)

    def apply(self, unit: EmitUnit) -> None:
        counts: Dict[str, int] = {}
        sites: List[ChargeSite] = []

        def visit(nodes: List[ONode]) -> None:
            for node in nodes:
                reads: Tuple[str, ...] = ()
                if node.kind in ("cond", "update"):
                    reads = node.op.reads
                elif node.kind == "push":
                    reads = node.op.child_group
                node.charges = []
                leader: Optional[int] = None
                for g in reads:
                    site = ChargeSite(group=g, index=counts.get(g, 0))
                    counts[g] = site.index + 1
                    if self.fuse_loads and leader is not None:
                        site.fused_with = leader
                    elif self.fuse_loads:
                        leader = id(site)
                    node.charges.append(site)
                    sites.append(site)
                if node.kind == "cond":
                    visit(node.then or [])
                    visit(node.orelse or [])

        visit(unit.nodes)
        for site in sites:
            site.total = counts[site.group]
        unit.multi_site_groups = tuple(
            sorted(g for g, n in counts.items() if n > 1)
        )
        unit.any_charges = bool(sites)


def _walk(nodes: List[ONode]):
    for node in nodes:
        yield node
        if node.kind == "cond":
            yield from _walk(node.then or [])
            yield from _walk(node.orelse or [])

# -- loop emitters -----------------------------------------------------------


class _LoopEmitterBase(EmitPass):
    """Shared machinery for the two step-loop backends.

    Subclasses own their loop template (the lockstep warp loop and the
    per-thread autoropes loop differ in mask rank, bookkeeping and
    push accounting) and share variable binding, argument sub-dict
    construction, field-charge emission (with same-mask fusion) and
    the sequence walker with its liveness guards.
    """

    kind = ""

    def can_apply(self, unit: EmitUnit) -> bool:
        return (
            unit.mode == "steploop"
            and unit.facts is not None
            and unit.facts.kind == self.kind
            and bool(unit.nodes)
            and not unit.source
        )

    # -- setup ---------------------------------------------------------------

    def _setup(self, unit: EmitUnit) -> None:
        self.unit = unit
        self.w = SourceWriter()
        self._bound: Dict[tuple, str] = {}
        spec = unit.kernel.spec
        self.variant_names = [a.name for a in spec.variant_args]
        self.invariant_names = [a.name for a in spec.invariant_args]
        self.arg_names = self.variant_names + self.invariant_names
        groups: List[str] = []
        for n in _walk(unit.nodes):
            for s in n.charges:
                if s.group not in groups:
                    groups.append(s.group)
        self.groups = groups
        self._rg = {g: f"rg{i}" for i, g in enumerate(groups)}
        self._it = {g: f"it{i}" for i, g in enumerate(groups)}
        self._rb = {g: f"rb{i}" for i, g in enumerate(groups)}
        self._sg = {g: f"sg{i}" for i, g in enumerate(groups)}
        self.multi = set(unit.multi_site_groups)
        self.ids_kw = ", warp_ids=ids" if unit.facts.compact else ""
        from repro.gpusim.executors.common import validate_popped_nodes
        from repro.gpusim.warp import majority_vote, pack_mask, unpack_mask

        unit.bindings.update(
            np=np,
            pack_mask=pack_mask,
            unpack_mask=unpack_mask,
            majority_vote=majority_vote,
            validate_popped_nodes=validate_popped_nodes,
        )

    def _bind(self, prefix: str, obj) -> str:
        key = (prefix, id(obj))
        name = self._bound.get(key)
        if name is None:
            name = f"{prefix}{len(self._bound)}"
            self._bound[key] = name
            self.unit.bindings[name] = obj
        return name

    def _sub(self, suffix: str) -> str:
        """Dict literal subsetting every kernel argument: {'x': a_x[i]}."""
        items = ", ".join(f"'{k}': a_{k}{suffix}" for k in self.arg_names)
        return "{" + items + "}"

    def _emit_prof(self, n: ONode) -> None:
        if self.unit.facts.prof:
            self.w.line(f"prof.note({self._bind('OP', n.op)}, stats)")

    # -- field-group charges (with same-mask fusion) -------------------------

    def _mask_col(self, var: str) -> str:
        raise NotImplementedError

    def _addr_expr(self, group: str) -> str:
        raise NotImplementedError

    def _ensure_safe_node(self) -> None:
        w = self.w
        w.line("if safe_node is None:")
        w.indent()
        w.line("safe_node = np.maximum(node, 0)")
        w.dedent()

    def _emit_charges(self, n: ONode, mask: str, cnt: Optional[str] = None) -> None:
        sites = n.charges
        if not sites:
            return
        i = 0
        while i < len(sites):
            if sites[i].total == 1:
                # a maximal run of single-site loads fuses (same mask)
                j = i
                while j < len(sites) and sites[j].total == 1:
                    j += 1
                self._emit_single_run(sites[i:j], mask, cnt)
                i = j
            else:
                self._emit_multi_site(sites[i], mask)
                i += 1

    def _emit_single_run(
        self, run: List[ChargeSite], mask: str, cnt: Optional[str] = None
    ) -> None:
        """Fused load run: single-site groups under one shared mask.

        One ``to_charge`` test, one element count and one combined
        ``bytes_requested`` update serve every group in the run; the
        per-region accesses still hit the memory model one call each,
        in program order (the L2 window is order-sensitive).  When the
        caller already holds the mask's population count (``cnt``),
        both the guard and the byte accounting reuse it.
        """
        w = self.w
        if cnt is None:
            w.line(f"if {mask}.any():")
            w.indent()
            cnt = w.fresh("n")
            self._ensure_safe_node()
            w.line(f"{cnt} = int({mask}.sum())")
        else:
            w.line(f"if {cnt}:")
            w.indent()
            self._ensure_safe_node()
        total = " + ".join(f"{cnt} * {self._it[s.group]}" for s in run)
        w.line(f"stats.bytes_requested += {total}")
        mc = w.fresh("m")
        w.line(f"{mc} = {self._mask_col(mask)}")
        for s in run:
            w.line(
                f"mem({self._addr_expr(s.group)}, {self._it[s.group]}, "
                f"{mc}, step)"
            )
        w.dedent()

    def _emit_multi_site(self, site: ChargeSite, mask: str) -> None:
        """Multi-site group: dedup against the per-step seen mask."""
        w = self.w
        sg = self._sg[site.group]
        t = w.fresh("t")
        w.line(f"{t} = {mask} if {sg} is None else ({mask} & ~{sg})")
        w.line(f"if {t}.any():")
        w.indent()
        self._ensure_safe_node()
        it = self._it[site.group]
        w.line(f"stats.bytes_requested += int({t}.sum()) * {it}")
        w.line(
            f"mem({self._addr_expr(site.group)}, {it}, "
            f"{self._mask_col(t)}, step)"
        )
        w.dedent()
        w.line(f"{sg} = {t} if {sg} is None else ({sg} | {t})")

    # -- sequence walker -----------------------------------------------------

    def _emit_seq(self, nodes: List[ONode], lv: str) -> None:
        """Emit a guarded op sequence over live-mask variable ``lv``.

        The walker re-checks liveness before every op; liveness only
        changes at branch merges and ``Continue``, so the emitted code
        re-guards only after conditions — everything in between runs
        under one proven-live region (the Sakka et al. framing).
        """
        w = self.w
        w.line(f"if {lv}.any():")
        w.indent()
        opened = 1
        for i, n in enumerate(nodes):
            if i > 0 and nodes[i - 1].kind == "cond":
                w.line(f"if {lv}.any():")
                w.indent()
                opened += 1
            self._emit_node(n, lv)
        for _ in range(opened):
            w.dedent()

    def _emit_node(self, n: ONode, lv: str) -> None:
        if n.kind == "cond":
            self._emit_cond(n, lv)
        elif n.kind == "update":
            self._emit_update(n, lv)
        elif n.kind == "push":
            self._emit_push(n, lv)
        else:  # continue
            self.w.line(f"{lv} = np.zeros_like({lv})")

    def _emit_cond(self, n: ONode, lv: str) -> None:
        raise NotImplementedError

    def _emit_update(self, n: ONode, lv: str) -> None:
        raise NotImplementedError

    def _emit_push(self, n: ONode, lv: str) -> None:
        raise NotImplementedError

    # -- shared prelude pieces ----------------------------------------------

    def _emit_prelude_common(self) -> None:
        w = self.w
        w.line("def step_loop(ex):")
        w.indent()
        w.line("L = ex.L")
        w.line("stats = L.stats")
        w.line("stack = ex.stack")
        w.line("stack_pop = stack.pop")
        w.line("stack_push = stack.push")
        w.line("issue = L.issue.issue")
        w.line("mem = L.memory.warp_access")
        w.line("ctx = ex.ctx")
        w.line("ws = ex.ws")
        w.line("tree = ex.tree")
        w.line("n_nodes = tree.n_nodes")
        if self.groups:
            w.line("regions = L.regions")
            for g in self.groups:
                w.line(f"{self._rg[g]} = regions[{g!r}]")
                w.line(f"{self._it[g]} = {self._rg[g]}.itemsize")
        facts = self.unit.facts
        if facts.compact:
            w.line("threshold = L.compact_threshold")
        if facts.prof:
            w.line("prof = ex._prof")
        if facts.trace:
            w.line("trace = ex._trace")
        if facts.visit_log:
            w.line("vlog = ex._visit_log")
        w.line("steps = 0")
        w.line("node_visits = np.int64(0)")
        w.line("warp_node_visits = np.int64(0)")
        w.line("step = ex._step")

    def _emit_charge_inits(self) -> None:
        w = self.w
        if self.unit.any_charges:
            w.line("safe_node = None")
        for g in self.groups:
            if g in self.multi:
                w.line(f"{self._sg[g]} = None")

    def _emit_finally(self) -> None:
        w = self.w
        w.dedent()
        w.line("finally:")
        w.indent()
        w.line("stats.steps += steps")
        w.line("stats.node_visits += int(node_visits)")
        w.line("stats.warp_node_visits += int(warp_node_visits)")
        w.dedent()


@register_pass
class EmitLockstepLoop(_LoopEmitterBase):
    """Emit the lockstep warp loop (the Fig. 8 execution shape).

    Beyond straight-line specialization, this backend inlines the
    per-step hot path of the simulator's accounting helpers — rope
    stack push/pop with layout-specialized traffic charging, warp
    issue accounting, field-load addressing, and flat-index
    gather/scatter around the application callbacks — so one step
    costs a handful of vectorized passes instead of dozens of small
    helper calls.  Every inlined sequence reproduces the helper's
    arithmetic exactly (same reductions, same accumulation order);
    the differential suite holds the result to bit-identical stats.

    Two defensive checks are specialized out when ``facts.validate``
    is off (clean launches): the empty-pop guard and the popped-node
    bounds validation.  Chaos-armed launches always validate, so the
    safety net is identical where it can matter.
    """

    kind = "lockstep"

    def _mask_col(self, var: str) -> str:
        return f"{var}[:, None]"

    def _addr_expr(self, group: str) -> str:
        # Region.addresses inlined: base + index * itemsize.
        return f"(({self._rb[group]} + safe_node * {self._it[group]})[:, None])"

    def _row_of(self, fl: str) -> str:
        """Row index of a flat lane index (shift when ws is 2**k)."""
        ws = self.unit.facts.ws
        if ws & (ws - 1) == 0:
            return f"{fl} >> {ws.bit_length() - 1}"
        return f"{fl} // {ws}"

    # -- inlined accounting helpers -----------------------------------------

    def _emit_mem_inline(
        self, addr: str, it: str, on: str, n: str, nost: Optional[str] = None
    ) -> None:
        """Inline GlobalMemory.warp_access for one-lane access groups.

        ``addr`` is a 1-D int64 byte-address expression, ``on`` the row
        mask, ``n`` its (positive) population count.  Reproduces the
        (n, 1) fast path bit for bit — per-row segment straddle
        handling, transaction counts, the L2 reuse-window filter and
        its EMA update, in the accountant's exact order — minus the
        (n, 1) reshapes and argument validation the call needed.

        ``nost`` names a prelude flag that is True when this access
        group can never straddle a segment boundary (base is segment-
        aligned and the itemsize divides the segment), in which case
        the hi-segment/straddle arithmetic is skipped — the straddle
        count is provably zero, so the accounting is unchanged.
        """
        w = self.w
        facts = self.unit.facts
        sh = facts.seg_shift
        ad = w.fresh("ad")
        lo = w.fresh("lo")
        hi = w.fresh("hi")
        w.line(f"{ad} = {addr}")
        if sh is not None:
            w.line(f"{lo} = {ad} >> {sh}")
        else:
            w.line(f"{lo} = {ad} // {facts.seg_bytes}")
        nt = w.fresh("nt")
        fv = w.fresh("fv")
        if nost is not None:
            w.line(f"if {nost}:")
            w.indent()
            w.line(f"{nt} = {n}")
            w.line(f"{fv} = {lo}[{on}]")
            w.dedent()
            w.line("else:")
            w.indent()
        if sh is not None:
            w.line(f"{hi} = ({ad} + ({it} - 1)) >> {sh}")
        else:
            w.line(f"{hi} = ({ad} + ({it} - 1)) // {facts.seg_bytes}")
        st = w.fresh("st")
        ns = w.fresh("ns")
        w.line(f"{st} = {on} & ({hi} > {lo})")
        w.line(f"{ns} = int(np.count_nonzero({st}))")
        w.line(f"{nt} = {n} + {ns}")
        w.line(f"if {ns}:")
        w.indent()
        w.line(f"{fv} = np.concatenate([{lo}[{on}], {hi}[{st}]])")
        w.dedent()
        w.line("else:")
        w.indent()
        w.line(f"{fv} = {lo}[{on}]")
        w.dedent()
        if nost is not None:
            w.dedent()
        w.line(f"stats.global_transactions += {nt}")
        w.line(f"{fv}.sort()")
        uq = w.fresh("u")
        w.line(f"if len({fv}) > 1:")
        w.indent()
        kp = w.fresh("kp")
        w.line(f"{kp} = np.empty(len({fv}), dtype=bool)")
        w.line(f"{kp}[0] = True")
        w.line(f"np.not_equal({fv}[1:], {fv}[:-1], out={kp}[1:])")
        w.line(f"{uq} = {fv}[{kp}]")
        w.dedent()
        w.line("else:")
        w.indent()
        w.line(f"{uq} = {fv}")
        w.dedent()
        mx = w.fresh("mx")
        w.line(f"{mx} = int({uq}[-1])")
        w.line(f"if {mx} >= len(lt):")
        w.indent()
        w.line(f"M._ensure_capacity({mx})")
        w.line("lt = M._last_touch")
        w.dedent()
        hs = w.fresh("hs")
        w.line("if l2on:")
        w.indent()
        w.line(
            f"{hs} = int((step - lt[{uq}] <= "
            f"capl / max(1.0, M._ema_unique_per_step)).sum()) "
            f"+ ({nt} - len({uq}))"
        )
        w.dedent()
        w.line("else:")
        w.indent()
        w.line(f"{hs} = 0")
        w.dedent()
        w.line(f"lt[{uq}] = step")
        w.line(
            "M._ema_unique_per_step = 0.98 * M._ema_unique_per_step "
            f"+ 0.02 * len({uq})"
        )
        w.line(f"stats.l2_hit_transactions += {hs}")
        w.line(f"stats.dram_bytes += ({nt} - {hs}) * {facts.seg_bytes}")

    def _emit_single_run(
        self, run: List[ChargeSite], mask: str, cnt: Optional[str] = None
    ) -> None:
        # Lockstep loads are warp-uniform (one lane per access group):
        # the fused run charges bytes once, then each region's access
        # goes through the inlined memory model in program order.
        w = self.w
        if cnt is None:
            w.line(f"if {mask}.any():")
            w.indent()
            cnt = w.fresh("n")
            self._ensure_safe_node()
            w.line(f"{cnt} = int({mask}.sum())")
        else:
            w.line(f"if {cnt}:")
            w.indent()
            self._ensure_safe_node()
        total = " + ".join(f"{cnt} * {self._it[s.group]}" for s in run)
        w.line(f"stats.bytes_requested += {total}")
        for s in run:
            self._emit_mem_inline(
                f"{self._rb[s.group]} + safe_node * {self._it[s.group]}",
                self._it[s.group],
                mask,
                cnt,
                nost=self._nst[s.group],
            )
        w.dedent()

    def _emit_multi_site(self, site: ChargeSite, mask: str) -> None:
        w = self.w
        sg = self._sg[site.group]
        t = w.fresh("t")
        w.line(f"{t} = {mask} if {sg} is None else ({mask} & ~{sg})")
        nn = w.fresh("n")
        w.line(f"{nn} = int({t}.sum())")
        w.line(f"if {nn}:")
        w.indent()
        self._ensure_safe_node()
        it = self._it[site.group]
        w.line(f"stats.bytes_requested += {nn} * {it}")
        self._emit_mem_inline(
            f"{self._rb[site.group]} + safe_node * {it}",
            it,
            t,
            nn,
            nost=self._nst[site.group],
        )
        w.dedent()
        w.line(f"{sg} = {t} if {sg} is None else ({sg} | {t})")

    def _emit_mask_stats(self, lv: str):
        """Per-row population count / issuing mask / issuing count.

        One reduction pass each, shared by the charge, issue and eval
        emission for the same op mask (the interpreter computes these
        up to three times per op).  Stats are memoized per mask
        variable and propagated across branch splits at emit time:

        * warp-uniform and vote splits partition whole rows, so both
          arms' counts derive from the parent's with row-width selects
          — no new ``(rows, ws)`` reduction;
        * predicate splits partition lanes, so the else-arm's counts
          are the parent's minus the then-arm's when the latter are
          already known.

        Every derivation produces exactly the integers the direct
        reduction would (disjoint partitions), so downstream stat
        accumulation is unchanged bit for bit.
        """
        st = self._mstats.get(lv)
        if st is not None:
            return st
        w = self.w
        cn = w.fresh("cn")
        wn = w.fresh("wn")
        ni = w.fresh("ni")
        ud = self._uderive.get(lv)
        pt = self._partition.get(lv)
        if ud is not None:
            pcn, pwn, tk, is_then = ud
            if is_then:
                w.line(f"{cn} = np.where({tk}, {pcn}, 0)")
                w.line(f"{wn} = {pwn} & {tk}")
            else:
                w.line(f"{cn} = np.where({tk}, 0, {pcn})")
                w.line(f"{wn} = {pwn} & ~{tk}")
            w.line(f"{ni} = int({wn}.sum())")
        elif pt is not None and pt[1] in self._mstats:
            pcn, sib = pt
            w.line(f"{cn} = {pcn} - {self._mstats[sib][0]}")
            w.line(f"{wn} = {cn} > 0")
            w.line(f"{ni} = int({wn}.sum())")
        else:
            w.line(f"{cn} = {lv}.sum(axis=1)")
            w.line(f"{wn} = {cn} > 0")
            w.line(f"{ni} = int({wn}.sum())")
        st = (cn, wn, ni)
        self._mstats[lv] = st
        return st

    def _invalidate(self, var: str) -> None:
        self._mstats.pop(var, None)
        self._uderive.pop(var, None)
        self._partition.pop(var, None)

    def _changes_liveness(self, nodes) -> bool:
        """Whether emitting ``nodes`` can rebind their live mask.

        Only ``Continue`` and a cond whose merge is not the identity
        reassign a mask variable; updates and pushes never do.
        """
        for n in nodes:
            if n.kind == "continue":
                return True
            if n.kind == "cond":
                then_nodes = n.then or []
                tc = (
                    len(then_nodes) == 1 and then_nodes[0].kind == "continue"
                ) or self._changes_liveness(then_nodes)
                ec = n.orelse is not None and self._changes_liveness(n.orelse)
                if tc or ec:
                    return True
        return False

    def _emit_issue_lanes(self, lv: str, cost: str, cn: str, wn: str, ni: str) -> None:
        """Inline WarpIssueAccountant.issue for a (rows, ws) mask.

        Callers guarantee at least one issuing warp (the emission sits
        under a liveness guard), so the accountant's early-out cannot
        fire and the three stat accumulations run unconditionally in
        the accountant's order."""
        w = self.w
        facts = self.unit.facts
        w.line(f"stats.warp_instructions += {cost} * {ni}")
        if facts.ws == 1:
            return  # (n, 1) masks take the warp-uniform path: no divergence
        vd = w.fresh("vd")
        if facts.compact:
            w.line(f"{vd} = vlanes if ids is None else vlanes[ids]")
        else:
            w.line(f"{vd} = vlanes")
        pa = w.fresh("pa")
        w.line(f"{pa} = int(({wn} & ({cn} < {vd})).sum())")
        w.line(f"stats.divergent_instructions += {cost} * {pa}")
        wf = w.fresh("wf")
        w.line(f"{wf} = np.maximum({vd} - {cn}, 0)[{wn}].sum() / {facts.ws}")
        w.line(f"stats.wasted_lane_fraction += {cost} * float({wf})")

    def _stack_channel_locals(self):
        pairs = [("node", "chn"), ("mask", "chm")]
        pairs += [(f"arg.{n}", f"cha_{n}") for n in self.variant_names]
        return pairs

    def _emit_stack_prelude(self) -> None:
        w = self.w
        facts = self.unit.facts
        w.line("rows_ = stack._rows")
        for cname, local in self._stack_channel_locals():
            w.line(f"{local} = stack._channels[{cname!r}]")
        if facts.account and facts.layout != "shared":
            w.line("sids = stack.stack_ids")
            w.line("seb = stack.entry_bytes")
            w.line("sbase = stack.region.base")
            seg = facts.seg_bytes
            w.line(f"nstk = sbase % {seg} == 0 and {seg} % seb == 0")
            if facts.layout == "interleaved_global":
                w.line("n_alloc = stack._n_stacks_alloc")
            else:
                w.line("maxdepth = stack.max_depth")

    def _emit_stack_refresh(self, channels_only: bool = False) -> None:
        w = self.w
        facts = self.unit.facts
        for cname, local in self._stack_channel_locals():
            w.line(f"{local} = stack._channels[{cname!r}]")
        if not channels_only:
            w.line("rows_ = stack._rows")
            if facts.account and facts.layout != "shared":
                w.line("sids = stack.stack_ids")

    def _emit_stack_account(
        self, mask: str, depths: str, n_expr: str, guard: bool = False
    ) -> None:
        """Inline StackStorage._account for lanes_per_access == 1.

        ``guard`` adds the accountant's n_active == 0 early-out (needed
        where the count is not already proven nonzero: the memory model
        must not see an all-dead access — the L2 window is stateful).
        """
        w = self.w
        facts = self.unit.facts
        if not facts.account:
            return
        if guard:
            w.line(f"if {n_expr}:")
            w.indent()
        w.line(f"stats.stack_ops += {n_expr}")
        if facts.layout == "shared":
            # group mask == row mask when one stack forms a group
            w.line(f"stats.shared_accesses += {n_expr}")
        else:
            if facts.layout == "interleaved_global":
                idx = f"({depths} * n_alloc + sids)"
            else:  # contiguous_global
                idx = f"(sids * maxdepth + {depths})"
            self._emit_mem_inline(
                f"{idx} * seb + sbase", "seb", mask, n_expr, nost="nstk"
            )
        if guard:
            w.dedent()

    # -- loop template -------------------------------------------------------

    def apply(self, unit: EmitUnit) -> None:
        self._setup(unit)
        self._mstats: Dict[str, tuple] = {}
        self._uderive: Dict[str, tuple] = {}
        self._partition: Dict[str, tuple] = {}
        self._rebound = False
        w = self.w
        facts = unit.facts
        WS = facts.ws
        self._emit_prelude_common()
        seg = facts.seg_bytes
        self._nst = {g: f"nst{i}" for i, g in enumerate(self.groups)}
        for g in self.groups:
            rb, it = self._rb[g], self._it[g]
            w.line(f"{rb} = {self._rg[g]}.base")
            w.line(f"{self._nst[g]} = {rb} % {seg} == 0 and {seg} % {it} == 0")
        child_names: List[str] = []
        for nd in _walk(unit.nodes):
            if nd.kind == "push":
                for call in nd.op.calls:
                    if call.child not in child_names:
                        child_names.append(call.child)
        self._childarr = {c: f"ct{i}" for i, c in enumerate(child_names)}
        for c in child_names:
            w.line(
                f"{self._childarr[c]} = np.asarray("
                f"tree.children[{c!r}], dtype=np.int64)"
            )
        w.line("pt_grid = ex.pt_grid")
        w.line("ptf = pt_grid.ravel()")
        w.line("real = ex.real")
        w.line("inv = ex._invariant_vals")
        w.line("warp_len = ex._warp_len")
        w.line("lane_useful = ex._lane_useful")
        w.line("vlanes = L.issue.valid_lanes")
        w.line("M = L.memory")
        w.line("lt = M._last_touch")
        w.line("l2on = M.l2_enabled")
        w.line("capl = M._capacity_lines")
        self._emit_stack_prelude()
        if facts.compact:
            w.line("compacted = ex._compacted")
            w.line("ids = ex._warp_ids if compacted else None")
        w.line("try:")
        w.indent()
        w.line("while True:")
        w.indent()
        w.line("sp = stack.sp")
        w.line("warp_on = sp > 0")
        w.line("n_on = int(warp_on.sum())")
        w.line("if n_on == 0:")
        w.indent()
        w.line("break")
        w.dedent()
        w.line("step += 1")
        w.line("ex._step = step")
        w.line("steps += 1")
        if facts.need_guard:
            w.line("stats.steps += steps")
            w.line("steps = 0")
            w.line("L.guard(step, stack)")
            w.line("sp = stack.sp")
            w.line("warp_on = sp > 0")
            w.line("n_on = int(warp_on.sum())")
        if facts.compact:
            w.line(
                "if stack.n_stacks >= 8 "
                "and n_on < stack.n_stacks * threshold:"
            )
            w.indent()
            w.line("ex._compact_rows(np.flatnonzero(warp_on))")
            w.line("sp = stack.sp")
            w.line("warp_on = sp > 0")
            w.line("pt_grid = ex.pt_grid")
            w.line("ptf = pt_grid.ravel()")
            w.line("real = ex.real")
            w.line("inv = ex._invariant_vals")
            w.line("compacted = True")
            w.line("ids = ex._warp_ids")
            self._emit_stack_refresh()
            w.dedent()
        # -- pop, inlined (one entry off every non-empty stack) --
        if facts.validate:
            w.line("if np.any(warp_on & (sp == 0)):")
            w.indent()
            w.line("raise IndexError('pop from empty rope stack')")
            w.dedent()
        # warp_on is exactly sp > 0 here, so where(warp_on, sp-1, sp)
        # collapses to a clamped decrement, and the pop row (top) is
        # new_sp itself (already non-negative).
        w.line("new_sp = np.maximum(sp - 1, 0)")
        w.line("node = chn[rows_, new_sp]")
        w.line("pmw = chm[rows_, new_sp]")
        for name in self.variant_names:
            w.line(f"a_{name} = cha_{name}[rows_, new_sp]")
        self._emit_stack_account("warp_on", "new_sp", "n_on", guard=True)
        w.line("stack.sp = new_sp")
        w.line("sp = new_sp")
        if facts.validate:
            w.line("validate_popped_nodes(node, warp_on, n_nodes, step)")
        w.line(f"live = unpack_mask(pmw, {WS}) & warp_on[:, None] & real")
        for name in self.invariant_names:
            w.line(f"a_{name} = inv[{name!r}]")
        w.line("useful = live & (node >= 0)[:, None]")
        w.line("n_useful = useful.sum()")
        w.line("node_visits += n_useful")
        w.line("warp_node_visits += n_on")
        if facts.compact:
            w.line("if compacted:")
            w.indent()
            w.line("warp_len[ids] += warp_on")
            w.line("lane_useful[ids] += useful")
            w.dedent()
            w.line("else:")
            w.indent()
            w.line("warp_len += warp_on")
            w.line("lane_useful += useful")
            w.dedent()
        else:
            w.line("warp_len += warp_on")
            w.line("lane_useful += useful")
        if facts.visit_log:
            w.line("uf = np.flatnonzero(useful)")
            w.line(f"vlog.append((ptf[uf], node[{self._row_of('uf')}]))")
        if facts.on_visit:
            w.line("ex._on_visit(warp_on, live, node)")
        if facts.prof:
            w.line("prof.sync(stats)")
            w.line(
                "prof.note_depth(node, warp_on & (node >= 0), "
                "useful.sum(axis=1))"
            )
        self._emit_charge_inits()
        if facts.trace:
            w.line("tb = stats.global_transactions")
        self._emit_seq(unit.nodes, "live")
        if facts.trace:
            w.line(
                "trace.record(n_on, int(n_useful), "
                "stats.global_transactions - tb)"
            )
        w.dedent()  # while
        self._emit_finally()
        unit.source = w.source()

    # -- ops -----------------------------------------------------------------

    def _emit_eval_lanes(self, fn: str, lv: str, cn: str) -> str:
        """Inline ``_eval_cond_lanes`` with the dense-grid heuristic."""
        w = self.w
        WS = self.unit.facts.ws
        nl = w.fresh("nl")
        cv = w.fresh("c")
        w.line(f"{nl} = int({cn}.sum())")
        w.line(f"if 20 * {nl} >= 19 * {lv}.size:")
        w.indent()
        r = w.fresh("r")
        rep_args = ", ".join(
            f"'{k}': np.repeat(a_{k}, {WS})" for k in self.arg_names
        )
        w.line(
            f"{r} = {fn}(ctx, np.repeat(node, {WS}), ptf, "
            "{" + rep_args + "})"
        )
        w.line(f"{cv} = np.asarray({r}, dtype=bool).reshape({lv}.shape) & {lv}")
        w.dedent()
        w.line("else:")
        w.indent()
        fl = w.fresh("fi")
        iw = w.fresh("iw")
        w.line(f"{fl} = np.flatnonzero({lv})")
        w.line(f"{iw} = {self._row_of(fl)}")
        r2 = w.fresh("r")
        sub = ", ".join(f"'{k}': a_{k}[{iw}]" for k in self.arg_names)
        w.line(
            f"{r2} = {fn}(ctx, node[{iw}], ptf[{fl}], "
            "{" + sub + "})"
        )
        cf = w.fresh("cf")
        w.line(f"{cf} = np.zeros({lv}.size, dtype=bool)")
        w.line(f"{cf}[{fl}] = np.asarray({r2}, dtype=bool)")
        w.line(f"{cv} = {cf}.reshape({lv}.shape)")
        w.dedent()
        return cv

    # -- sequence walker (stat-propagating override) -------------------------

    def _emit_seq(self, nodes: List[ONode], lv: str) -> None:
        """Guarded op sequence, guarding on cached scalar counts.

        Mask stats are materialized *before* the guard opens, so they
        are unconditionally in scope for sibling-arm derivations and
        merge transfers; the guard itself is then a scalar test instead
        of a full-lane ``.any()`` scan.  On exit the cache entry for
        ``lv`` is restored (mask unchanged) or dropped (mask rebound by
        a branch merge or ``Continue``), since stats emitted inside the
        guard block are not in scope for the caller.
        """
        if not nodes:
            return
        w = self.w
        entry = self._emit_mask_stats(lv)
        w.line(f"if {entry[2]}:")
        w.indent()
        opened = 1
        dirty = False
        for i, n in enumerate(nodes):
            if i > 0 and nodes[i - 1].kind == "cond" and self._rebound:
                st = self._emit_mask_stats(lv)
                w.line(f"if {st[2]}:")
                w.indent()
                opened += 1
            self._rebound = False
            self._emit_node(n, lv)
            dirty = dirty or self._rebound
        for _ in range(opened):
            w.dedent()
        if dirty:
            self._invalidate(lv)
        else:
            self._mstats[lv] = entry
        self._rebound = dirty

    def _emit_node(self, n: ONode, lv: str) -> None:
        if n.kind == "continue":
            self.w.line(f"{lv} = np.zeros_like({lv})")
            self._invalidate(lv)
            self._rebound = True
            return
        super()._emit_node(n, lv)

    def _emit_cond(self, n: ONode, lv: str) -> None:
        w = self.w
        op = n.op
        fn = self._bind("C", op.fn)
        cost = repr(float(op.cost))
        cn, wn, ni = self._emit_mask_stats(lv)
        then_nodes = n.then or []
        then_is_continue = (
            len(then_nodes) == 1 and then_nodes[0].kind == "continue"
        )
        if n.strategy == "uniform":
            self._emit_charges(n, wn, ni)
            self._emit_issue_lanes(lv, cost, cn, wn, ni)
            tk = w.fresh("tk")
            w.line(f"{tk} = np.zeros({lv}.shape[0], dtype=bool)")
            wi = w.fresh("i")
            w.line(f"{wi} = np.flatnonzero({wn})")
            w.line(f"if len({wi}):")
            w.indent()
            sg = w.fresh("sv")
            w.line(f"{sg} = {lv}[{wi}]")
            rp = w.fresh("rp")
            w.line(
                f"{rp} = np.maximum("
                f"pt_grid[{wi}, np.argmax({sg}, axis=1)], 0)"
            )
            r = w.fresh("r")
            w.line(
                f"{r} = {fn}(ctx, node[{wi}], {rp}, "
                f"{self._sub(f'[{wi}]')})"
            )
            w.line(f"{tk}[{wi}] = np.asarray({r}, dtype=bool)")
            w.dedent()
            tl = w.fresh("tl")
            el = w.fresh("el")
            w.line(f"{tl} = {lv} & {tk}[:, None]")
            w.line(f"{el} = {lv} & ~{tk}[:, None]")
            self._uderive[tl] = (cn, wn, tk, True)
            self._uderive[el] = (cn, wn, tk, False)
        else:
            if n.charges:
                self._emit_charges(n, wn, ni)
            self._emit_issue_lanes(lv, cost, cn, wn, ni)
            cv = self._emit_eval_lanes(fn, lv, cn)
            if n.strategy == "predicate":
                tl = cv
                el = w.fresh("el")
                w.line(f"{el} = {lv} ^ {cv}")
                if (
                    then_nodes
                    and not then_is_continue
                    and not self._changes_liveness(then_nodes)
                ):
                    # The then-arm will materialize tl's stats
                    # unconditionally and never rebind tl, so the
                    # else-arm can subtract instead of re-reducing.
                    self._partition[el] = (cn, tl)
            else:  # vote
                tk = w.fresh("tk")
                w.line(f"{tk} = majority_vote({cv}, {lv})")
                w.line(f"stats.warp_instructions += 1.0 * {ni}")
                tl = w.fresh("tl")
                el = w.fresh("el")
                w.line(f"{tl} = {lv} & {tk}[:, None]")
                w.line(f"{el} = {lv} & ~{tk}[:, None]")
                self._uderive[tl] = (cn, wn, tk, True)
                self._uderive[el] = (cn, wn, tk, False)
        self._emit_prof(n)
        then_changes = then_is_continue or self._changes_liveness(then_nodes)
        else_changes = n.orelse is not None and self._changes_liveness(
            n.orelse
        )
        if not then_is_continue:
            # A lone Continue arm only zeroes its mask — the merge
            # below already accounts for that, so skip the arm.
            self._emit_seq(then_nodes, tl)
        if n.orelse is not None:
            self._emit_seq(n.orelse, el)
        if then_is_continue:
            w.line(f"{lv} = {el}")
            self._invalidate(lv)
            if el in self._mstats:
                self._mstats[lv] = self._mstats[el]
            if el in self._uderive:
                self._uderive[lv] = self._uderive[el]
            if el in self._partition:
                self._partition[lv] = self._partition[el]
            self._rebound = True
        elif not then_changes and not else_changes:
            # Neither arm can zero lanes, so tl | el == lv exactly:
            # the merge is the identity and lv's stats stay valid.
            self._rebound = False
        else:
            w.line(f"{lv} = {tl} | {el}")
            self._invalidate(lv)
            self._rebound = True

    def _emit_update(self, n: ONode, lv: str) -> None:
        w = self.w
        op = n.op
        cost = repr(float(op.cost))
        cn, wn, ni = self._emit_mask_stats(lv)
        if n.charges:
            self._emit_charges(n, wn, ni)
        self._emit_issue_lanes(lv, cost, cn, wn, ni)
        fl = w.fresh("fi")
        w.line(f"{fl} = np.flatnonzero({lv})")
        w.line(f"if len({fl}):")
        w.indent()
        iw = w.fresh("iw")
        w.line(f"{iw} = {self._row_of(fl)}")
        ufn = self._bind("U", op.fn)
        w.line(
            f"{ufn}(ctx, node[{iw}], ptf[{fl}], "
            f"{self._sub(f'[{iw}]')})"
        )
        w.dedent()
        self._emit_prof(n)

    def _emit_push(self, n: ONode, lv: str) -> None:
        w = self.w
        op = n.op
        _, wn, ni = self._emit_mask_stats(lv)
        w.line(f"if {ni}:")
        w.indent()
        self._emit_charges(n, wn, ni)
        mk = w.fresh("mk")
        w.line(f"{mk} = pack_mask({lv})")
        new_full: Dict[str, str] = {}
        cur_sub: Dict[str, str] = {}
        wi = rep = None
        if op.needs_rules:
            wi = w.fresh("i")
            w.line(f"{wi} = np.flatnonzero({wn})")
            rep = w.fresh("rp")
            w.line(
                f"{rep} = np.maximum("
                f"pt_grid[{wi}, np.argmax({lv}[{wi}], axis=1)], 0)"
            )
            for name in self.arg_names:
                sv = w.fresh("s")
                w.line(f"{sv} = a_{name}[{wi}]")
                cur_sub[name] = sv
            orig = dict(cur_sub)
            orig_dict = (
                "{" + ", ".join(f"'{k}': {v}" for k, v in orig.items()) + "}"
            )
            for r in op.variant_rules:
                if r.rule is None:
                    new_full[r.name] = f"a_{r.name}"
                else:
                    rb = self._bind("R", r.rule)
                    db = self._bind("D", r.dtype)
                    vv = w.fresh("v")
                    w.line(
                        f"{vv} = np.asarray({rb}(ctx, node[{wi}], "
                        f"{rep}, {orig_dict}))"
                        f".astype({db}, copy=False)"
                    )
                    ff = w.fresh("f")
                    w.line(f"{ff} = np.empty_like(a_{r.name})")
                    w.line(f"{ff}[{wi}] = {vv}")
                    new_full[r.name] = ff
                    cur_sub[r.name] = vv
        else:
            for r in op.variant_rules:
                new_full[r.name] = f"a_{r.name}"
        for call in op.calls:
            self._ensure_safe_node()
            ch = w.fresh("ch")
            w.line(
                f"{ch} = np.where(node >= 0, "
                f"{self._childarr[call.child]}[safe_node], -1)"
            )
            push_map = dict(new_full)
            for r in call.overrides or ():
                rb = self._bind("R", r.rule)
                db = self._bind("D", r.dtype)
                cur_dict = (
                    "{"
                    + ", ".join(f"'{k}': {v}" for k, v in cur_sub.items())
                    + "}"
                )
                vv = w.fresh("v")
                w.line(
                    f"{vv} = np.asarray({rb}(ctx, node[{wi}], "
                    f"{rep}, {cur_dict})).astype({db}, copy=False)"
                )
                ff = w.fresh("f")
                w.line(f"{ff} = np.empty_like({new_full[r.name]})")
                w.line(f"{ff}[{wi}] = {vv}")
                push_map[r.name] = ff
            pm = w.fresh("p")
            if op.visits_null:
                w.line(f"{pm} = {wn}")
            else:
                w.line(f"{pm} = {wn} & ({ch} >= 0)")
            w.line(f"stats.warp_instructions += 1.0 * {ni}")
            # -- stack.push, inlined --
            w.line(f"if {pm}.any():")
            w.indent()
            dm = w.fresh("dm")
            w.line(f"{dm} = int(sp.max(initial=0, where={pm})) + 1")
            w.line(f"if {dm} > stack._capacity:")
            w.indent()
            w.line(f"stack._grow({dm})")
            self._emit_stack_refresh(channels_only=True)
            w.dedent()
            ix = w.fresh("ix")
            dp = w.fresh("dp")
            w.line(f"{ix} = np.flatnonzero({pm})")
            w.line(f"{dp} = sp[{ix}]")
            w.line(f"chn[{ix}, {dp}] = {ch}[{ix}]")
            w.line(f"chm[{ix}, {dp}] = {mk}[{ix}]")
            for name in self.variant_names:
                w.line(f"cha_{name}[{ix}, {dp}] = {push_map[name]}[{ix}]")
            self._emit_stack_account(pm, "sp", f"len({ix})")
            w.line(f"sp[{ix}] += 1")
            w.line(f"stack.high_water = max(stack.high_water, {dm})")
            w.dedent()
        w.dedent()
        self._emit_prof(n)


@register_pass
class EmitAutoropesLoop(_LoopEmitterBase):
    """Emit the per-thread autoropes loop (the Fig. 6/7 shape)."""

    kind = "autoropes"

    def _mask_col(self, var: str) -> str:
        return f"{var}.reshape(-1, ws)"

    def _addr_expr(self, group: str) -> str:
        return f"{self._rg[group]}.addresses(safe_node).reshape(-1, ws)"

    def apply(self, unit: EmitUnit) -> None:
        self._setup(unit)
        w = self.w
        facts = unit.facts
        self._emit_prelude_common()
        w.line("pt = ex.pt")
        w.line("inv = ex._invariant_args")
        w.line("vpp = ex._visits_per_point")
        w.line("wls = ex._warp_live_steps")
        w.line("try:")
        w.indent()
        w.line("while stack.any_nonempty():")
        w.indent()
        w.line("step += 1")
        w.line("ex._step = step")
        w.line("steps += 1")
        if facts.need_guard:
            w.line("stats.steps += steps")
            w.line("steps = 0")
            w.line("L.guard(step, stack)")
        if facts.compact:
            w.line("grps = stack.n_stacks // ws")
            w.line("if grps >= 8:")
            w.indent()
            w.line("gl = (stack.sp > 0).reshape(-1, ws).any(axis=1)")
            w.line("if int(gl.sum()) < grps * threshold:")
            w.indent()
            w.line("ex._compact_groups(np.nonzero(gl)[0])")
            w.line("pt = ex.pt")
            w.line("inv = ex._invariant_args")
            w.dedent()
            w.dedent()
        w.line("live = stack.nonempty()")
        w.line("popped = stack_pop(live, step)")
        w.line('node = popped["node"]')
        if facts.validate:
            w.line("validate_popped_nodes(node, live, n_nodes, step)")
        for name in self.variant_names:
            w.line(f'a_{name} = popped["arg.{name}"]')
        for name in self.invariant_names:
            w.line(f"a_{name} = inv[{name!r}]")
        w.line("useful = live & (node >= 0)")
        w.line("n_useful = useful.sum()")
        w.line("node_visits += n_useful")
        w.line("warp_live = live.reshape(-1, ws).any(axis=1)")
        w.line("warp_node_visits += warp_live.sum()")
        if facts.compact:
            w.line("if ex._compacted:")
            w.indent()
            w.line("wls[ex._warp_ids] += warp_live")
            w.dedent()
            w.line("else:")
            w.indent()
            w.line("wls += warp_live")
            w.dedent()
        else:
            w.line("wls += warp_live")
        w.line("np.add.at(vpp, pt[useful], 1)")
        if facts.visit_log:
            w.line("vl = np.nonzero(useful)[0]")
            w.line("vlog.append((pt[vl].copy(), node[vl].copy()))")
        if facts.prof:
            w.line("prof.sync(stats)")
            w.line("prof.note_depth(node, useful)")
        self._emit_charge_inits()
        if facts.compact:
            w.line("ids = ex._warp_ids if ex._compacted else None")
        if facts.trace:
            w.line("tb = stats.global_transactions")
        self._emit_seq(unit.nodes, "live")
        if facts.trace:
            w.line(
                "trace.record(int(warp_live.sum()), int(n_useful), "
                "stats.global_transactions - tb)"
            )
        w.dedent()  # while
        self._emit_finally()
        unit.source = w.source()

    # -- ops -----------------------------------------------------------------

    def _emit_cond(self, n: ONode, lv: str) -> None:
        w = self.w
        op = n.op
        fn = self._bind("C", op.fn)
        self._emit_charges(n, lv)
        w.line(f"issue({lv}.reshape(-1, ws), {float(op.cost)!r}{self.ids_kw})")
        ix = w.fresh("i")
        w.line(f"{ix} = np.nonzero({lv})[0]")
        r = w.fresh("r")
        w.line(
            f"{r} = {fn}(ctx, node[{ix}], pt[{ix}], {self._sub(f'[{ix}]')})"
        )
        cv = w.fresh("c")
        w.line(f"{cv} = np.zeros_like({lv})")
        w.line(f"{cv}[{ix}] = np.asarray({r}, dtype=bool)")
        self._emit_prof(n)
        tl = w.fresh("tl")
        el = w.fresh("el")
        w.line(f"{tl} = {lv} & {cv}")
        w.line(f"{el} = {lv} & ~{cv}")
        self._emit_seq(n.then or [], tl)
        if n.orelse is not None:
            self._emit_seq(n.orelse, el)
        w.line(f"{lv} = {tl} | {el}")

    def _emit_update(self, n: ONode, lv: str) -> None:
        w = self.w
        op = n.op
        self._emit_charges(n, lv)
        w.line(f"issue({lv}.reshape(-1, ws), {float(op.cost)!r}{self.ids_kw})")
        ix = w.fresh("i")
        w.line(f"{ix} = np.nonzero({lv})[0]")
        ufn = self._bind("U", op.fn)
        w.line(
            f"{ufn}(ctx, node[{ix}], pt[{ix}], {self._sub(f'[{ix}]')})"
        )
        self._emit_prof(n)

    def _emit_push(self, n: ONode, lv: str) -> None:
        w = self.w
        op = n.op
        self._emit_charges(n, lv)
        new_full: Dict[str, str] = {}
        cur_sub: Dict[str, str] = {}
        ix = None
        if op.needs_rules:
            ix = w.fresh("i")
            w.line(f"{ix} = np.nonzero({lv})[0]")
            for name in self.arg_names:
                sv = w.fresh("s")
                w.line(f"{sv} = a_{name}[{ix}]")
                cur_sub[name] = sv
            orig_dict = (
                "{"
                + ", ".join(f"'{k}': {v}" for k, v in cur_sub.items())
                + "}"
            )
            for r in op.variant_rules:
                if r.rule is None:
                    new_full[r.name] = f"a_{r.name}"
                else:
                    rb = self._bind("R", r.rule)
                    db = self._bind("D", r.dtype)
                    vv = w.fresh("v")
                    w.line(
                        f"{vv} = np.asarray({rb}(ctx, node[{ix}], "
                        f"pt[{ix}], {orig_dict})).astype({db}, copy=False)"
                    )
                    ff = w.fresh("f")
                    w.line(f"{ff} = np.empty_like(a_{r.name})")
                    w.line(f"{ff}[{ix}] = {vv}")
                    new_full[r.name] = ff
                    cur_sub[r.name] = vv
        else:
            for r in op.variant_rules:
                new_full[r.name] = f"a_{r.name}"
        lw = w.fresh("lw")
        w.line(f"{lw} = {lv}.reshape(-1, ws)")
        for call in op.calls:
            ch = w.fresh("ch")
            w.line(f"{ch} = tree.child({call.child!r}, node)")
            push_map = dict(new_full)
            for r in call.overrides or ():
                rb = self._bind("R", r.rule)
                db = self._bind("D", r.dtype)
                cur_dict = (
                    "{"
                    + ", ".join(f"'{k}': {v}" for k, v in cur_sub.items())
                    + "}"
                )
                vv = w.fresh("v")
                w.line(
                    f"{vv} = np.asarray({rb}(ctx, node[{ix}], "
                    f"pt[{ix}], {cur_dict})).astype({db}, copy=False)"
                )
                ff = w.fresh("f")
                w.line(f"{ff} = np.empty_like({new_full[r.name]})")
                w.line(f"{ff}[{ix}] = {vv}")
                push_map[r.name] = ff
            pm = w.fresh("p")
            if op.visits_null:
                w.line(f"{pm} = {lv}")
            else:
                w.line(f"{pm} = {lv} & ({ch} >= 0)")
            w.line(f"issue({lw}, 1.0{self.ids_kw})")
            payload = ", ".join(
                [f"'node': {ch}"]
                + [f"'arg.{k}': {v}" for k, v in push_map.items()]
            )
            w.line(f"stack_push({pm}, step, **{{{payload}}})")
        self._emit_prof(n)


# -- figure renderers and the scalar backend ---------------------------------
#
# The remaining source-emitting paths in the repo, folded into the same
# registry: the Fig. 4-8 pseudocode pretty-printers (documentation and
# shape-asserting tests) and the standalone per-point Python backend
# (the third implementation for differential testing).  Their public
# entry points live in :mod:`repro.core.codegen` and :mod:`repro.core
# .emit_python`, which are now thin shims over these passes.


@register_pass
class RenderRecursivePseudocode(EmitPass):
    """Render a TraversalSpec in the paper's Fig. 4/5 recursive style."""

    def can_apply(self, unit: EmitUnit) -> bool:
        return (
            unit.mode == "render_recursive"
            and unit.spec is not None
            and not unit.source
        )

    def apply(self, unit: EmitUnit) -> None:
        spec = unit.spec
        arg_list = "".join(f", {a.name}" for a in spec.args)
        lines = [f"void {spec.name}(node node, point pt{arg_list}) {{"]
        self._emit(spec.body, lines, 1, spec)
        lines.append("}")
        unit.source = "\n".join(lines)

    def _emit(
        self, stmt: Stmt, lines: List[str], depth: int, spec: TraversalSpec
    ) -> None:
        pad = _INDENT * depth
        if isinstance(stmt, Seq):
            for s in stmt.stmts:
                self._emit(s, lines, depth, spec)
        elif isinstance(stmt, If):
            lines.append(f"{pad}if ({stmt.cond.name}(node, pt)) {{")
            self._emit(stmt.then, lines, depth + 1, spec)
            if stmt.orelse is not None:
                lines.append(f"{pad}}} else {{")
                self._emit(stmt.orelse, lines, depth + 1, spec)
            lines.append(f"{pad}}}")
        elif isinstance(stmt, Update):
            lines.append(f"{pad}{stmt.fn.name}(node, pt);")
        elif isinstance(stmt, Return):
            lines.append(f"{pad}return;")
        elif isinstance(stmt, Recurse):
            args = "".join(
                f", {name}={rule}" for name, rule in stmt.arg_overrides
            )
            lines.append(f"{pad}recurse(node.{stmt.child.name}, pt{args});")
        else:
            raise TypeError(f"cannot render {type(stmt).__name__}")


@register_pass
class RenderIterativePseudocode(EmitPass):
    """Render an autoropes/lockstep kernel in the Fig. 6/7/8 style."""

    def can_apply(self, unit: EmitUnit) -> bool:
        return (
            unit.mode == "render_iterative"
            and unit.kernel is not None
            and not unit.source
        )

    def apply(self, unit: EmitUnit) -> None:
        kernel = unit.kernel
        spec = kernel.spec
        invariant = "".join(f", {a.name}" for a in spec.invariant_args)
        lines = [f"void {spec.name}(node root, point pt{invariant}) {{"]
        body_pad = _INDENT
        lines.append(f"{body_pad}stack stk = new stack();")
        init_payload = ["root"]
        init_payload += [a.name for a in spec.variant_args]
        if kernel.lockstep:
            lines.append(f"{body_pad}uint mask;")
            init_payload.append("~0 /* all threads active */")
        lines.append(f"{body_pad}stk.push({', '.join(init_payload)});")
        lines.append(f"{body_pad}while (!stk.is_empty()) {{")
        pops = ["node"] + [a.name for a in spec.variant_args]
        if kernel.lockstep:
            pops.append("mask")
        for i, name in enumerate(pops):
            lines.append(f"{body_pad * 2}{name} = stk.peek({i});")
        lines.append(f"{body_pad * 2}stk.pop();")
        if kernel.lockstep:
            lines.append(f"{body_pad * 2}if (bit_set(mask, threadId)) {{")
            self._emit(kernel.body, lines, 3, kernel)
            lines.append(f"{body_pad * 2}}}")
        else:
            self._emit(kernel.body, lines, 2, kernel)
        lines.append(f"{body_pad}}}")
        lines.append("}")
        unit.source = "\n".join(lines)

    def _emit(
        self, stmt: Stmt, lines: List[str], depth: int, kernel: IterativeKernel
    ) -> None:
        pad = _INDENT * depth
        if isinstance(stmt, Seq):
            for s in stmt.stmts:
                self._emit(s, lines, depth, kernel)
        elif isinstance(stmt, If):
            call = f"{stmt.cond.name}(node, pt)"
            if stmt.cond.name in kernel.vote_conditions:
                call = f"warp_majority({call})"
            lines.append(f"{pad}if ({call}) {{")
            self._emit(stmt.then, lines, depth + 1, kernel)
            if stmt.orelse is not None:
                lines.append(f"{pad}}} else {{")
                self._emit(stmt.orelse, lines, depth + 1, kernel)
            lines.append(f"{pad}}}")
        elif isinstance(stmt, Update):
            lines.append(f"{pad}{stmt.fn.name}(node, pt);")
        elif isinstance(stmt, Continue):
            if kernel.lockstep:
                lines.append(f"{pad}bit_clear(mask, threadId);")
            else:
                lines.append(f"{pad}continue;")
        elif isinstance(stmt, PushGroup):
            if kernel.lockstep:
                lines.append(f"{pad}mask = warp_ballot(mask);")
                lines.append(f"{pad}if (mask != 0) {{")
                inner = _INDENT * (depth + 1)
                for call in stmt.push_order:
                    payload = self._push_payload(call, kernel, with_mask=True)
                    lines.append(f"{inner}stk.push({payload});")
                lines.append(f"{pad}}}")
            else:
                for call in stmt.push_order:
                    payload = self._push_payload(call, kernel, with_mask=False)
                    lines.append(f"{pad}stk.push({payload});")
        else:
            raise TypeError(f"cannot render {type(stmt).__name__}")

    def _push_payload(
        self, call: Recurse, kernel: IterativeKernel, with_mask: bool
    ) -> str:
        parts = [f"node.{call.child.name}"]
        parts.extend(a.name for a in kernel.spec.variant_args)
        if with_mask:
            parts.append("mask")
        return ", ".join(parts)


_SCALAR_PRELUDE = '''\
def {name}(ctx, tree, pt, root):
    """Generated by repro.core.emit_python — do not edit.

    Standalone autoropes traversal for one point: returns the visited
    node ids in order and applies updates to ``ctx.out``.
    """
    visits = []
    stk = [(root, dict(_initial_args))]
    while stk:
        node, args = stk.pop()
        if node < 0 and not _visits_null:
            continue
        if node >= 0:
            visits.append(node)
'''


@register_pass
class EmitScalarPython(EmitPass):
    """Emit the standalone per-point Python traversal (runnable Fig. 6/7).

    The function name comes from ``unit.bindings['emit_name']``
    (default ``traverse``); the caller supplies the runtime namespace
    (condition/update tables, arg-rule evaluators) at compile time.
    """

    def can_apply(self, unit: EmitUnit) -> bool:
        return (
            unit.mode == "scalar_python"
            and unit.kernel is not None
            and not unit.source
        )

    def apply(self, unit: EmitUnit) -> None:
        name = unit.bindings.get("emit_name", "traverse")
        lines: List[str] = [_SCALAR_PRELUDE.format(name=name).rstrip()]
        body_lines: List[str] = []
        self._emit(unit.kernel.body, body_lines, 2, unit.kernel)
        lines.extend(body_lines)
        lines.append(f"{_INDENT}return visits")
        unit.source = "\n".join(lines)

    def _emit(
        self, stmt: Stmt, lines: List[str], depth: int, kernel: IterativeKernel
    ) -> None:
        pad = _INDENT * depth
        if isinstance(stmt, Seq):
            if not stmt.stmts:
                lines.append(f"{pad}pass")
                return
            for s in stmt.stmts:
                self._emit(s, lines, depth, kernel)
        elif isinstance(stmt, If):
            lines.append(
                f"{pad}if _cond[{stmt.cond.name!r}]"
                f"(ctx, _n1(node), _p1(pt), args)[0]:"
            )
            self._emit(stmt.then, lines, depth + 1, kernel)
            if stmt.orelse is not None:
                lines.append(f"{pad}else:")
                self._emit(stmt.orelse, lines, depth + 1, kernel)
        elif isinstance(stmt, Update):
            lines.append(
                f"{pad}_upd[{stmt.fn.name!r}](ctx, _n1(node), _p1(pt), args)"
            )
        elif isinstance(stmt, Continue):
            lines.append(f"{pad}continue")
        elif isinstance(stmt, PushGroup):
            lines.append(f"{pad}new_args = _visit_args(ctx, node, pt, args)")
            for call in stmt.push_order:
                overrides = dict(call.arg_overrides)
                lines.append(
                    f"{pad}stk.append(("
                    f"_child(tree, {call.child.name!r}, node), "
                    f"_site_args(ctx, node, pt, new_args, "
                    f"{sorted(overrides.items())!r})"
                    f"))"
                )
        else:
            raise TypeError(f"cannot emit {type(stmt).__name__}")


# -- entry points ------------------------------------------------------------


def build_emit_unit(kernel: IterativeKernel, facts: LoopFacts) -> EmitUnit:
    """Run the full pass pipeline for one (kernel, facts) pair."""
    unit = EmitUnit(kernel=kernel, facts=facts)
    run_pipeline(unit)
    if not unit.source:
        raise RuntimeError(
            f"no emitter produced source for kind={facts.kind!r} "
            f"(applied: {unit.applied})"
        )
    return unit


def emit_step_loop_source(kernel: IterativeKernel, facts: LoopFacts) -> str:
    """The emitted per-step loop source (for tests and --dump-source)."""
    return build_emit_unit(kernel, facts).source


def compile_step_loop(kernel: IterativeKernel, facts: LoopFacts):
    """Emit, ``exec``-compile, and return the specialized step loop.

    The returned function takes the executor instance as its only
    argument and runs the whole traversal loop.  Emission metadata
    rides on attributes: ``__source__`` (the emitted text),
    ``__facts__``, ``__passes__`` (pipeline provenance) and
    ``__emit_ms__`` (wall-clock emit+compile time, surfaced as the
    plan cache's codegen emit-time telemetry).
    """
    t0 = time.perf_counter()
    unit = build_emit_unit(kernel, facts)
    name = f"{kernel.spec.name}.{facts.kind}"
    ns = dict(unit.bindings)
    code = compile(unit.source, f"<codegen:{name}>", "exec")
    exec(code, ns)
    fn = ns["step_loop"]
    fn.__source__ = unit.source
    fn.__facts__ = facts
    fn.__passes__ = tuple(unit.applied)
    fn.__emit_ms__ = (time.perf_counter() - t0) * 1000.0
    if dump_sink is not None:
        dump_sink(name, unit.source)
    return fn


def step_loop_for(executor, kind: str):
    """Resolve (emitting at most once) the step loop for an executor.

    Memoized on the kernel instance keyed by the loop-facts digest, the
    same pattern ``program_for`` uses for compiled programs; the
    service layer adds a second cache in the shared plan cache so
    eviction and plan-epoch bumps also drop generated functions.
    """
    kernel = executor.kernel
    facts = facts_for(executor, kind)
    key = facts.digest()
    cache_ref = getattr(executor.L, "codegen_cache", None)
    if cache_ref is not None:
        # Service-managed launches delegate ownership to the shared
        # plan cache: eviction and plan-epoch bumps must drop the
        # generated function too, so no second memo may shadow it.
        return cache_ref.codegen_get_or_emit(
            getattr(executor.L, "codegen_key", None), key, kernel, facts
        )
    cache = kernel.__dict__.setdefault("_codegen_fns", {})
    fn = cache.get(key)
    if fn is None:
        fn = cache[key] = compile_step_loop(kernel, facts)
    return fn
