"""Pseudocode pretty-printer for original and transformed traversals.

The paper presents its transformations as source-to-source rewrites
(Figures 4-9). This module renders our IR in the same pseudocode style
so that documentation, examples and tests can exhibit — and assert —
the exact shapes of those figures: recursive calls becoming reversed
stack pushes, returns becoming ``continue``, variant arguments riding
the stack, and the lockstep mask/vote scaffolding of Fig. 8.

Since the pass-registry refactor the actual emission lives in
:mod:`repro.core.passes` (:class:`~repro.core.passes
.RenderRecursivePseudocode` and :class:`~repro.core.passes
.RenderIterativePseudocode`); this module keeps the stable public
entry points.
"""

from __future__ import annotations

from repro.core.autoropes import IterativeKernel
from repro.core.ir import TraversalSpec
from repro.core.passes import EmitUnit, run_pipeline


def render_recursive(spec: TraversalSpec) -> str:
    """Render the original recursive form (the Fig. 4/5 style)."""
    unit = EmitUnit(
        kernel=None, facts=None, mode="render_recursive", spec=spec
    )
    return run_pipeline(unit).source


def render_iterative(kernel: IterativeKernel) -> str:
    """Render an autoropes (or lockstep) kernel in the Fig. 6/7/8 style."""
    unit = EmitUnit(kernel=kernel, facts=None, mode="render_iterative")
    return run_pipeline(unit).source
