"""Pseudocode pretty-printer for original and transformed traversals.

The paper presents its transformations as source-to-source rewrites
(Figures 4-9). This module renders our IR in the same pseudocode style
so that documentation, examples and tests can exhibit — and assert —
the exact shapes of those figures: recursive calls becoming reversed
stack pushes, returns becoming ``continue``, variant arguments riding
the stack, and the lockstep mask/vote scaffolding of Fig. 8.
"""

from __future__ import annotations

from typing import List

from repro.core.autoropes import Continue, IterativeKernel, PushGroup
from repro.core.ir import If, Recurse, Return, Seq, Stmt, TraversalSpec, Update

_INDENT = "    "


def _emit_recursive(stmt: Stmt, lines: List[str], depth: int, spec: TraversalSpec) -> None:
    pad = _INDENT * depth
    if isinstance(stmt, Seq):
        for s in stmt.stmts:
            _emit_recursive(s, lines, depth, spec)
    elif isinstance(stmt, If):
        lines.append(f"{pad}if ({stmt.cond.name}(node, pt)) {{")
        _emit_recursive(stmt.then, lines, depth + 1, spec)
        if stmt.orelse is not None:
            lines.append(f"{pad}}} else {{")
            _emit_recursive(stmt.orelse, lines, depth + 1, spec)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, Update):
        lines.append(f"{pad}{stmt.fn.name}(node, pt);")
    elif isinstance(stmt, Return):
        lines.append(f"{pad}return;")
    elif isinstance(stmt, Recurse):
        args = "".join(f", {name}={rule}" for name, rule in stmt.arg_overrides)
        lines.append(f"{pad}recurse(node.{stmt.child.name}, pt{args});")
    else:
        raise TypeError(f"cannot render {type(stmt).__name__}")


def render_recursive(spec: TraversalSpec) -> str:
    """Render the original recursive form (the Fig. 4/5 style)."""
    arg_list = "".join(f", {a.name}" for a in spec.args)
    lines = [f"void {spec.name}(node node, point pt{arg_list}) {{"]
    _emit_recursive(spec.body, lines, 1, spec)
    lines.append("}")
    return "\n".join(lines)


def _emit_iterative(
    stmt: Stmt, lines: List[str], depth: int, kernel: IterativeKernel
) -> None:
    pad = _INDENT * depth
    spec = kernel.spec
    if isinstance(stmt, Seq):
        for s in stmt.stmts:
            _emit_iterative(s, lines, depth, kernel)
    elif isinstance(stmt, If):
        call = f"{stmt.cond.name}(node, pt)"
        if stmt.cond.name in kernel.vote_conditions:
            call = f"warp_majority({call})"
        lines.append(f"{pad}if ({call}) {{")
        _emit_iterative(stmt.then, lines, depth + 1, kernel)
        if stmt.orelse is not None:
            lines.append(f"{pad}}} else {{")
            _emit_iterative(stmt.orelse, lines, depth + 1, kernel)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, Update):
        lines.append(f"{pad}{stmt.fn.name}(node, pt);")
    elif isinstance(stmt, Continue):
        if kernel.lockstep:
            lines.append(f"{pad}bit_clear(mask, threadId);")
        else:
            lines.append(f"{pad}continue;")
    elif isinstance(stmt, PushGroup):
        if kernel.lockstep:
            lines.append(f"{pad}mask = warp_ballot(mask);")
            lines.append(f"{pad}if (mask != 0) {{")
            inner = _INDENT * (depth + 1)
            for call in stmt.push_order:
                payload = _push_payload(call, kernel, with_mask=True)
                lines.append(f"{inner}stk.push({payload});")
            lines.append(f"{pad}}}")
        else:
            for call in stmt.push_order:
                payload = _push_payload(call, kernel, with_mask=False)
                lines.append(f"{pad}stk.push({payload});")
    else:
        raise TypeError(f"cannot render {type(stmt).__name__}")


def _push_payload(call: Recurse, kernel: IterativeKernel, with_mask: bool) -> str:
    parts = [f"node.{call.child.name}"]
    parts.extend(a.name for a in kernel.spec.variant_args)
    if with_mask:
        parts.append("mask")
    return ", ".join(parts)


def render_iterative(kernel: IterativeKernel) -> str:
    """Render an autoropes (or lockstep) kernel in the Fig. 6/7/8 style."""
    spec = kernel.spec
    invariant = "".join(f", {a.name}" for a in spec.invariant_args)
    lines = [f"void {spec.name}(node root, point pt{invariant}) {{"]
    body_pad = _INDENT
    lines.append(f"{body_pad}stack stk = new stack();")
    init_payload = ["root"]
    init_payload += [a.name for a in spec.variant_args]
    if kernel.lockstep:
        lines.append(f"{body_pad}uint mask;")
        init_payload.append("~0 /* all threads active */")
    lines.append(f"{body_pad}stk.push({', '.join(init_payload)});")
    lines.append(f"{body_pad}while (!stk.is_empty()) {{")
    pops = ["node"] + [a.name for a in spec.variant_args]
    if kernel.lockstep:
        pops.append("mask")
    for i, name in enumerate(pops):
        lines.append(f"{body_pad * 2}{name} = stk.peek({i});")
    lines.append(f"{body_pad * 2}stk.pop();")
    if kernel.lockstep:
        lines.append(f"{body_pad * 2}if (bit_set(mask, threadId)) {{")
        _emit_iterative(kernel.body, lines, 3, kernel)
        lines.append(f"{body_pad * 2}}}")
    else:
        _emit_iterative(kernel.body, lines, 2, kernel)
    lines.append(f"{body_pad}}}")
    lines.append("}")
    return "\n".join(lines)
