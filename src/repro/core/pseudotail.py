"""Pseudo-tail-recursion: checking and systematic normalization.

Section 3.2: *"A pseudo-tail-recursive function is a function where all
recursive function calls are the immediate predecessors either of an
exit node of the function's control flow graph, or of another recursive
function call."* Autoropes applies directly only to such functions, but
*"any function with arbitrary recursive calls and control flow can be
systematically transformed to meet the criteria. At a high level, the
transformation proceeds by turning intervening code between a pair of
recursive calls into code that executes at the beginning of the latter
call's execution."* (Full details are in the authors' tech report
TR-ECE-13-09; this module implements the construction it sketches.)

Two passes establish the canonical pseudo-tail form the autoropes
rewriter consumes:

1. **Tail duplication** (:func:`tail_duplicate`): statements following a
   branch that contains recursive calls are duplicated into both arms,
   so that within every ``Seq`` the recursive calls form a contiguous
   suffix.
2. **Update push-down** (:func:`normalize_to_pseudo_tail`): an update
   sandwiched between two recursive calls is moved to the *beginning*
   of the later call's execution. A synthetic traversal argument
   ``__pend`` identifies, per call edge, which parent computation is
   owed, and ``__parent`` carries the parent node index the pushed-down
   update must run against; a dispatch prologue at function entry pays
   the debt before the truncation test runs.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

import numpy as np

from repro.core.callset import analyze_call_sets
from repro.core.ir import (
    ArgDecl,
    CondRef,
    If,
    Recurse,
    Return,
    Seq,
    Stmt,
    TraversalSpec,
    Update,
    UpdateRef,
)

PEND_ARG = "__pend"
PARENT_ARG = "__parent"
NULL_GUARD = "__node_is_null"


class NotPseudoTailRecursive(ValueError):
    """Raised when a body cannot be (or has not been) normalized."""


def is_pseudo_tail_recursive(spec_or_body) -> bool:
    """True iff every recursive call is followed only by recursive calls
    (or the function exit) on every CFG path."""
    return analyze_call_sets(spec_or_body).pseudo_tail_recursive


def _contains_recurse(stmt: Stmt) -> bool:
    return any(isinstance(s, Recurse) for s in stmt.walk())


def tail_duplicate(body: Stmt) -> Stmt:
    """Duplicate post-branch code into branch arms until recursive calls
    sit in ``Seq`` suffixes.

    ``If(c){r1}{r2}; r3`` becomes ``If(c){r1; r3}{r2; r3}`` — a standard
    tail-duplication step that leaves the set of CFG paths (and hence
    the call sets) unchanged.
    """

    def rewrite(stmts: Tuple[Stmt, ...]) -> Tuple[Stmt, ...]:
        out: List[Stmt] = []
        i = 0
        items = list(stmts)
        while i < len(items):
            s = items[i]
            rest = tuple(items[i + 1 :])
            if isinstance(s, Seq):
                items[i : i + 1] = list(s.stmts)
                continue
            if isinstance(s, If) and rest and _contains_recurse(s):
                then = Seq(*rewrite((s.then,) + rest))
                if s.orelse is not None:
                    orelse: Stmt = Seq(*rewrite((s.orelse,) + rest))
                else:
                    orelse = Seq(*rewrite(rest))
                out.append(If(cond=s.cond, then=then, orelse=orelse))
                return tuple(out)
            if isinstance(s, If):
                then = Seq(*rewrite((s.then,)))
                orelse2 = None if s.orelse is None else Seq(*rewrite((s.orelse,)))
                out.append(If(cond=s.cond, then=then, orelse=orelse2))
                i += 1
                continue
            out.append(s)
            if isinstance(s, Return):
                return tuple(out)  # unreachable tail
            i += 1
        return tuple(out)

    return Seq(*rewrite((body,)))


def _push_down_in_seq(
    stmts: Tuple[Stmt, ...],
    pending_updates: Dict[int, UpdateRef],
    next_pend_id: List[int],
) -> Tuple[Stmt, ...]:
    """Rewrite one Seq: hoist updates between Recurse statements into
    ``arg_overrides`` of the following call."""
    out: List[Stmt] = []
    i = 0
    stmts = tuple(stmts)
    while i < len(stmts):
        s = stmts[i]
        if isinstance(s, Recurse):
            # Gather any intervening updates before the *next* recurse.
            j = i + 1
            updates: List[UpdateRef] = []
            while j < len(stmts) and isinstance(stmts[j], Update):
                updates.append(stmts[j].fn)
                j += 1
            out.append(s)
            if updates:
                if j >= len(stmts) or not isinstance(stmts[j], Recurse):
                    raise NotPseudoTailRecursive(
                        "updates after the last recursive call cannot be "
                        "pushed down to a later sibling (Section 3.2's "
                        "transformation only moves code *between* calls)"
                    )
                if len(updates) > 1:
                    raise NotPseudoTailRecursive(
                        "multiple intervening updates between calls are "
                        "not supported; fuse them into one UpdateRef"
                    )
                pend_id = next_pend_id[0]
                next_pend_id[0] += 1
                pending_updates[pend_id] = updates[0]
                nxt = stmts[j]
                overrides = dict(nxt.arg_overrides)
                overrides[PEND_ARG] = f"__pend_rule_{pend_id}"
                overrides[PARENT_ARG] = "__parent_rule"
                stmts = (
                    stmts[: i + 1]
                    + (replace(nxt, arg_overrides=tuple(sorted(overrides.items()))),)
                    + stmts[j + 1 :]
                )
            i += 1
            continue
        if isinstance(s, If):
            then = Seq(
                *_push_down_in_seq(
                    s.then.stmts if isinstance(s.then, Seq) else (s.then,),
                    pending_updates,
                    next_pend_id,
                )
            )
            orelse = None
            if s.orelse is not None:
                orelse = Seq(
                    *_push_down_in_seq(
                        s.orelse.stmts if isinstance(s.orelse, Seq) else (s.orelse,),
                        pending_updates,
                        next_pend_id,
                    )
                )
            out.append(If(cond=s.cond, then=then, orelse=orelse))
            i += 1
            continue
        if isinstance(s, Seq):
            stmts = stmts[:i] + s.stmts + stmts[i + 1 :]
            continue
        out.append(s)
        i += 1
    return tuple(out)


def normalize_to_pseudo_tail(spec: TraversalSpec) -> TraversalSpec:
    """Return an equivalent pseudo-tail-recursive spec.

    Idempotent: already-pseudo-tail specs come back (structurally
    tail-duplicated but) semantically unchanged with no synthetic
    arguments. Raises :class:`NotPseudoTailRecursive` when code follows
    the *last* recursive call of a path, which the paper's push-down
    construction cannot relocate.
    """
    body = tail_duplicate(spec.body)
    if is_pseudo_tail_recursive(body):
        return replace_spec_body(spec, body)

    pending_updates: Dict[int, UpdateRef] = {}
    next_pend_id = [1]  # 0 means "no pending update"
    new_stmts = _push_down_in_seq(
        body.stmts if isinstance(body, Seq) else (body,),
        pending_updates,
        next_pend_id,
    )

    # Dispatch prologue: pay the parent's debt before anything else.
    prologue: List[Stmt] = []
    conditions = dict(spec.conditions)
    updates = dict(spec.updates)
    arg_rules = dict(spec.arg_rules)
    for pend_id, ref in pending_updates.items():
        cond_name = f"__pend_is_{pend_id}"
        upd_name = f"__deferred_{ref.name}_{pend_id}"
        conditions[cond_name] = _make_pend_check(pend_id)
        updates[upd_name] = _make_deferred_update(spec.updates[ref.name])
        arg_rules[f"__pend_rule_{pend_id}"] = _make_const_rule(pend_id)
        prologue.append(
            If(
                cond=CondRef(cond_name, point_dependent=False, cost=1.0),
                then=Update(UpdateRef(upd_name, reads=ref.reads, cost=ref.cost)),
            )
        )
    arg_rules["__parent_rule"] = _parent_rule
    arg_rules["__pend_zero"] = _make_const_rule(0)

    # Every call site that does not explicitly set __pend clears it.
    def clear_pend(stmt: Stmt) -> Stmt:
        if isinstance(stmt, Recurse):
            overrides = dict(stmt.arg_overrides)
            overrides.setdefault(PEND_ARG, "__pend_zero")
            return replace(stmt, arg_overrides=tuple(sorted(overrides.items())))
        if isinstance(stmt, Seq):
            return Seq(*[clear_pend(s) for s in stmt.stmts])
        if isinstance(stmt, If):
            return If(
                cond=stmt.cond,
                then=clear_pend(stmt.then),
                orelse=None if stmt.orelse is None else clear_pend(stmt.orelse),
            )
        return stmt

    # Null guard: recursive calls now also "visit" null children as
    # phantom entries, so a pending update owed via a missing sibling is
    # still paid; the guard truncates the phantom right after the
    # prologue ran.
    conditions[NULL_GUARD] = _null_node_check
    null_guard = If(
        cond=CondRef(NULL_GUARD, point_dependent=False, cost=1.0),
        then=Return(),
    )
    new_body = clear_pend(Seq(*prologue, null_guard, Seq(*new_stmts)))
    if not is_pseudo_tail_recursive(new_body):
        raise NotPseudoTailRecursive(
            "normalization failed to establish pseudo-tail-recursion; "
            "the body has control flow after recursive calls"
        )
    new_args = spec.args + (
        ArgDecl(PEND_ARG, 0.0, update=None, dtype=np.dtype(np.float64)),
        ArgDecl(PARENT_ARG, -1.0, update="__parent_rule", dtype=np.dtype(np.float64)),
    )
    # __pend must be variant (it changes per edge) even though its
    # declaration-level rule is "no change": mark it variant by giving
    # it an identity rule.
    arg_rules["__pend_keep"] = _keep_pend_rule
    new_args = tuple(
        replace(a, update="__pend_keep") if a.name == PEND_ARG else a
        for a in new_args
    )
    return TraversalSpec(
        name=spec.name,
        body=new_body,
        args=new_args,
        conditions=conditions,
        updates=updates,
        arg_rules=arg_rules,
        annotations=spec.annotations,
        child_field_group=spec.child_field_group,
        visits_null_children=True,
    )


def replace_spec_body(spec: TraversalSpec, body: Stmt) -> TraversalSpec:
    """A copy of ``spec`` with a different body (re-numbering sites)."""
    return TraversalSpec(
        name=spec.name,
        body=body,
        args=spec.args,
        conditions=spec.conditions,
        updates=spec.updates,
        arg_rules=spec.arg_rules,
        annotations=spec.annotations,
        child_field_group=spec.child_field_group,
        visits_null_children=spec.visits_null_children,
    )


# -- synthetic callback factories (module-level for picklability) -----------


def _make_pend_check(pend_id: int):
    def check(ctx, node, pt, args):
        return args[PEND_ARG].astype(np.int64) == pend_id

    return check


def _make_deferred_update(original):
    def deferred(ctx, node, pt, args):
        parent = args[PARENT_ARG].astype(np.int64)
        original(ctx, parent, pt, args)

    return deferred


def _make_const_rule(value: float):
    def rule(ctx, node, pt, args):
        return np.full(len(node), float(value))

    return rule


def _parent_rule(ctx, node, pt, args):
    return node.astype(np.float64)


def _null_node_check(ctx, node, pt, args):
    return node < 0


def _keep_pend_rule(ctx, node, pt, args):
    return args[PEND_ARG]
