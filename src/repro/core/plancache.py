"""Keyed cache of compiled traversal plans.

Compiling a :class:`~repro.core.ir.TraversalSpec` (call-set analysis,
pseudo-tail normalization, autoropes, lockstep derivation) is pure in
the spec, so the resulting :class:`~repro.core.pipeline.CompiledTraversal`
can be compiled once per (application, tree) pair and reused for every
launch over that tree.  Both consumers share this cache:

* the offline experiment harness (:mod:`repro.harness.runner`), which
  revisits the same (benchmark, input, sorted?) triple across tables
  and figures, and
* the online query service (:mod:`repro.service`), whose sessions
  serve many small batches against one long-lived tree and must not
  pay the compile on the request path.

Since the executor-level plan compilation pass (:mod:`repro.core
.compile`), a cached plan also carries the flattened op programs for
both kernel variants (memoized on the kernel instances), so a cache hit
skips the per-step AST walk *and* the one-time program build.

Hit/miss counters are part of the public surface — the service exposes
them in its stats snapshot and tests assert on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from repro.core.ir import TraversalSpec
from repro.core.pipeline import CompiledTraversal, TransformPipeline


@dataclass(frozen=True)
class PlanCacheStats:
    """Immutable snapshot of a cache's counters."""

    hits: int
    misses: int
    size: int
    invalidations: int = 0
    #: generated-function (engine="codegen") cache counters; emit time
    #: is cumulative wall-clock ms spent emitting + exec-compiling.
    codegen_hits: int = 0
    codegen_misses: int = 0
    codegen_size: int = 0
    codegen_emit_ms: float = 0.0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PlanCache:
    """Compile-once cache of :class:`CompiledTraversal` plans.

    Keys are caller-chosen hashables identifying the (app, tree) pair;
    the cache never inspects them.  The same spec object registered
    under two keys compiles twice — keys, not specs, define identity,
    because two trees built over different datasets need separate
    plans even when their traversal bodies coincide.
    """

    def __init__(self, pipeline: Optional[TransformPipeline] = None) -> None:
        self.pipeline = pipeline or TransformPipeline()
        self._plans: Dict[Hashable, CompiledTraversal] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._failures: Dict[Hashable, int] = {}
        #: generated step loops (engine="codegen"), bucketed by plan key
        #: so invalidation drops a plan's functions with its plan:
        #: {plan key: {(codegen key, facts digest): fn}}.
        self._codegen: Dict[Hashable, Dict[Hashable, object]] = {}
        self.codegen_hits = 0
        self.codegen_misses = 0
        self.codegen_emit_ms = 0.0
        #: optional observer called with "hit" / "miss" / "invalidate"
        #: on each cache event (the telemetry layer hangs a counter
        #: here); None — the default — costs one attribute check.
        self.on_event = None

    def get_or_compile(self, key: Hashable, spec: TraversalSpec) -> CompiledTraversal:
        """Return the cached plan for ``key``, compiling on first use."""
        plan = self._plans.get(key)
        if plan is not None:
            self.hits += 1
            if self.on_event is not None:
                self.on_event("hit")
            return plan
        self.misses += 1
        if self.on_event is not None:
            self.on_event("miss")
        plan = self.pipeline.compile(spec)
        self._plans[key] = plan
        return plan

    def codegen_get_or_emit(self, key, facts_digest, kernel, facts):
        """Resolve (emitting at most once) a generated step loop.

        The ``engine="codegen"`` analogue of :meth:`get_or_compile` for
        service-managed launches: ``key`` identifies the plan
        generation the function belongs to — the dispatcher passes
        ``(plan_key, plan_epoch)`` — and ``facts_digest`` specializes
        within it (kernel kind, device digest, plan toggles).  Entries
        are bucketed under the plan key, so :meth:`invalidate` and
        :meth:`clear` drop a plan's generated functions with the plan,
        and a ``refresh_plan`` epoch bump changes ``key``, making every
        stale function unreachable even before the invalidate lands.
        """
        from repro.core.passes import compile_step_loop

        base = key[0] if isinstance(key, tuple) and key else key
        bucket = self._codegen.setdefault(base, {})
        sub = (key, facts_digest)
        fn = bucket.get(sub)
        if fn is not None:
            self.codegen_hits += 1
            if self.on_event is not None:
                self.on_event("codegen_hit")
            return fn
        self.codegen_misses += 1
        if self.on_event is not None:
            self.on_event("codegen_miss")
        fn = compile_step_loop(kernel, facts)
        self.codegen_emit_ms += fn.__emit_ms__
        bucket[sub] = fn
        return fn

    def get(self, key: Hashable) -> Optional[CompiledTraversal]:
        """Peek without compiling (no counter changes)."""
        return self._plans.get(key)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._plans

    def __len__(self) -> int:
        return len(self._plans)

    def invalidate(self, key: Hashable) -> bool:
        """Drop the cached plan for ``key``; True if one was cached.

        The next :meth:`get_or_compile` for the key recompiles from the
        spec (a miss).  The service's resilience layer invalidates a
        plan after repeated execution failures, on the theory that a
        freshly compiled plan clears any poisoned cached state.
        """
        self._failures.pop(key, None)
        self._codegen.pop(key, None)
        if self._plans.pop(key, None) is None:
            return False
        self.invalidations += 1
        if self.on_event is not None:
            self.on_event("invalidate")
        return True

    def record_failure(self, key: Hashable, threshold: int = 3) -> bool:
        """Count one execution failure against ``key``'s plan.

        After ``threshold`` *consecutive* failures the plan is
        invalidated and True is returned; :meth:`record_success` (or a
        hit recompile) resets the count.
        """
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        n = self._failures.get(key, 0) + 1
        if n >= threshold:
            self.invalidate(key)
            return True
        self._failures[key] = n
        return False

    def record_success(self, key: Hashable) -> None:
        """Reset ``key``'s consecutive-failure count."""
        self._failures.pop(key, None)

    def failure_count(self, key: Hashable) -> int:
        return self._failures.get(key, 0)

    def clear(self) -> None:
        self._plans.clear()
        self._failures.clear()
        self._codegen.clear()

    def stats(self) -> PlanCacheStats:
        return PlanCacheStats(
            hits=self.hits,
            misses=self.misses,
            size=len(self._plans),
            invalidations=self.invalidations,
            codegen_hits=self.codegen_hits,
            codegen_misses=self.codegen_misses,
            codegen_size=sum(len(b) for b in self._codegen.values()),
            codegen_emit_ms=self.codegen_emit_ms,
        )
