"""The lockstep-traversal transformation (Section 4).

Lockstep recasts an autoropes traversal in terms of the whole warp: one
rope stack per *warp*, each entry carrying a mask bit-vector saying
which lanes should still do work at that node (Fig. 8). A truncated
lane is carried along masked-out rather than departing; the warp
truncates only when a warp vote shows every bit cleared. All lanes then
load the *same* node — perfect memory coalescing — at the price of
visiting the union of the lanes' traversals (the Table 2 "work
expansion").

Legality (Section 4.2/4.3): lockstep applies to *unguided* traversals
directly. A guided traversal qualifies only when the programmer
annotates its call sets as semantically equivalent
(:class:`~repro.core.annotations.Annotation.CALLSETS_EQUIVALENT`); the
transformation then marks each call-set-selecting condition as a **vote
condition** — the executor evaluates it per lane and takes a majority
vote among live lanes, making the algorithm dynamically
single-call-set per warp while different warps remain free to choose
differently.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Set

from repro.core.annotations import Annotation
from repro.core.autoropes import IterativeKernel, PushGroup
from repro.core.ir import If, Stmt


class LockstepNotApplicable(ValueError):
    """Lockstep requested for a guided traversal without the
    call-set-equivalence annotation (Section 4.3's fallback: guided
    traversals always perform non-lockstep traversals)."""


#: Alias making intent explicit at call sites: a lockstep kernel is an
#: :class:`IterativeKernel` with ``lockstep=True`` and vote conditions.
LockstepKernel = IterativeKernel


def _contains_push(stmt: Stmt) -> bool:
    return any(isinstance(s, PushGroup) for s in stmt.walk())


def find_vote_conditions(body: Stmt) -> Set[str]:
    """Conditions that *select between* call sets.

    An ``If`` whose both arms contain push groups chooses which call
    set executes (Fig. 5's ``closer_to_left``); under lockstep it must
    become a warp-level majority vote. An ``If`` with pushes in only
    one arm merely truncates, which masks handle.
    """
    votes: Set[str] = set()
    for s in body.walk():
        if isinstance(s, If) and s.orelse is not None:
            if _contains_push(s.then) and _contains_push(s.orelse):
                votes.add(s.cond.name)
    return votes


def apply_lockstep(kernel: IterativeKernel) -> LockstepKernel:
    """Produce the lockstep variant of an autoropes kernel.

    Raises
    ------
    LockstepNotApplicable
        for guided kernels lacking the equivalence annotation.
    """
    if kernel.lockstep:
        return kernel
    if kernel.analysis.unguided:
        vote: Set[str] = set()
        # Defensive: an unguided kernel may still syntactically contain a
        # point-independent selector; such Ifs are warp-uniform anyway
        # (the node is shared by the warp), so no vote is needed.
    else:
        if Annotation.CALLSETS_EQUIVALENT not in kernel.spec.annotations:
            raise LockstepNotApplicable(
                f"{kernel.spec.name}: guided traversal (call sets="
                f"{len(kernel.analysis.call_sets)}) without "
                "CALLSETS_EQUIVALENT annotation; use the non-lockstep "
                "variant instead"
            )
        vote = {
            name
            for name in find_vote_conditions(kernel.body)
            # Point-independent conditions are warp-uniform under
            # lockstep (the node is shared), so no vote is required.
            if _cond_is_point_dependent(kernel.body, name)
        }
    return replace(kernel, lockstep=True, vote_conditions=frozenset(vote))


def _cond_is_point_dependent(body: Stmt, name: str) -> bool:
    for s in body.walk():
        if isinstance(s, If) and s.cond.name == name:
            return s.cond.point_dependent
    return False
