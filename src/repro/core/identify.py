"""Identifying the algorithmic structure (Section 5.1).

*"The first step in translating traversal algorithms to GPUs is
identifying the key components of traversal algorithms: the recursive
tree structure itself, the point structures ..., the recursive method
..., and the loop that invokes the repeated traversals."* The paper
leans on type information, structural analysis, simple annotations and
heuristics (after Jo & Kulkarni).

In this reproduction the components arrive pre-packaged in a
:class:`~repro.core.ir.TraversalSpec` plus a
:class:`~repro.trees.linearize.LinearTree`, so identification becomes
*verification*: :func:`identify_structure` runs the same structural
checks the paper's front end performs and reports what it found —
which child slots the recursion descends, which conditions/updates
touch point state, whether the point loop is annotated independent —
failing loudly on specs that do not fit the repeated-traversal pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.annotations import Annotation
from repro.core.callset import analyze_call_sets
from repro.core.ir import If, Recurse, Stmt, TraversalSpec, Update
from repro.trees.linearize import LinearTree


class StructureError(ValueError):
    """The spec does not fit the repeated-traversal pattern of Fig. 1."""


@dataclass(frozen=True)
class StructureReport:
    """What Section 5.1's identification step found."""

    #: child slots the recursion descends (the "recursive fields").
    recursive_fields: Tuple[str, ...]
    #: conditions reading point state (candidates for truncation tests).
    point_dependent_conditions: Tuple[str, ...]
    #: conditions reading only tree structure.
    structural_conditions: Tuple[str, ...]
    #: update functions (the per-point computation).
    updates: Tuple[str, ...]
    #: number of recursive call sites.
    n_call_sites: int
    #: declared traversal arguments riding the recursion.
    traversal_args: Tuple[str, ...]
    #: the point loop carries the independence annotation.
    point_loop_annotated_independent: bool
    notes: Tuple[str, ...] = ()


def identify_structure(
    spec: TraversalSpec, tree: LinearTree, require_annotation: bool = False
) -> StructureReport:
    """Verify and report the traversal's structural components.

    Raises
    ------
    StructureError
        if the body has no recursive call (not a traversal), if a
        recursive call names a child slot the tree does not have, or if
        ``require_annotation`` is set and the point loop lacks the
        independence annotation the paper's parallelization relies on.
    """
    sites = [s for s in spec.body.walk() if isinstance(s, Recurse)]
    if not sites:
        raise StructureError(
            f"{spec.name}: no recursive call in the body; nothing to "
            "parallelize as a repeated traversal"
        )
    fields: List[str] = []
    for s in sites:
        if s.child.name not in tree.child_names:
            raise StructureError(
                f"{spec.name}: recursive call descends {s.child.name!r}, "
                f"but the tree has child slots {tree.child_names}"
            )
        if s.child.name not in fields:
            fields.append(s.child.name)

    point_conds: List[str] = []
    struct_conds: List[str] = []
    update_names: List[str] = []
    for s in spec.body.walk():
        if isinstance(s, If):
            bucket = point_conds if s.cond.point_dependent else struct_conds
            if s.cond.name not in bucket:
                bucket.append(s.cond.name)
        elif isinstance(s, Update) and s.fn.name not in update_names:
            update_names.append(s.fn.name)

    for name in list(point_conds) + list(struct_conds):
        cond = _find_cond(spec.body, name)
        for group in cond.reads:
            tree.group(group)  # raises KeyError for unknown groups

    annotated = Annotation.POINT_LOOP_INDEPENDENT in spec.annotations
    if require_annotation and not annotated:
        raise StructureError(
            f"{spec.name}: point loop lacks the POINT_LOOP_INDEPENDENT "
            "annotation (Section 5.1); cannot assert inter-point "
            "independence structurally"
        )

    notes: List[str] = []
    analysis = analyze_call_sets(spec)
    if not update_names:
        notes.append("no updates: traversal computes nothing per point")
    if analysis.n_truncating_paths == 0:
        notes.append(
            "no truncating path: every point walks the whole tree "
            "(autoropes still applies, lockstep expansion will be 1)"
        )
    if len(fields) < len(tree.child_names):
        unused = set(tree.child_names) - set(fields)
        notes.append(f"child slots never descended: {sorted(unused)}")

    return StructureReport(
        recursive_fields=tuple(fields),
        point_dependent_conditions=tuple(point_conds),
        structural_conditions=tuple(struct_conds),
        updates=tuple(update_names),
        n_call_sites=len(sites),
        traversal_args=tuple(a.name for a in spec.args),
        point_loop_annotated_independent=annotated,
        notes=tuple(notes),
    )


def _find_cond(body: Stmt, name: str):
    for s in body.walk():
        if isinstance(s, If) and s.cond.name == name:
            return s.cond
    raise KeyError(name)
