"""The autoropes transformation (Section 3, Figures 6 and 7).

Autoropes turns a pseudo-tail-recursive traversal into an iterative
traversal driven by an explicit stack of rope pointers:

* every maximal run of recursive calls becomes a :class:`PushGroup`
  that pushes the callee children onto the rope stack **in reverse call
  order** — LIFO popping then visits them in the original order, which
  is the whole correctness argument (Section 3.3);
* every ``Return`` becomes a :class:`Continue`, so truncation merely
  skips to the next stack pop instead of leaving the traversal loop
  (Fig. 6's ``continue``);
* traversal-variant arguments ride on the stack next to the rope;
  traversal-invariant arguments stay in registers (Section 3.2.2).

The result, an :class:`IterativeKernel`, is a *program*, not a run: the
executors in :mod:`repro.gpusim.executors` interpret it per-thread
(non-lockstep) or per-warp (lockstep), and
:mod:`repro.cpusim` interprets the original recursive spec to validate
that the visit orders match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.core.callset import CallSetAnalysis, analyze_call_sets
from repro.core.ir import (
    If,
    Recurse,
    Return,
    Seq,
    Stmt,
    TraversalSpec,
    Update,
)
from repro.core.pseudotail import NotPseudoTailRecursive, tail_duplicate


@dataclass(frozen=True)
class PushGroup(Stmt):
    """Replaces a maximal run of recursive calls.

    ``calls`` is kept in the *original call order*; executors must push
    in reverse (``reversed(calls)``) so that pops preserve the
    recursive visit order — mirroring Fig. 6, where
    ``recurse(left); recurse(right)`` becomes
    ``push(right); push(left)``.
    """

    calls: Tuple[Recurse, ...]

    @property
    def push_order(self) -> Tuple[Recurse, ...]:
        return tuple(reversed(self.calls))


@dataclass(frozen=True)
class Continue(Stmt):
    """Replaces ``Return``: fall through to the next stack pop."""


@dataclass(frozen=True)
class IterativeKernel:
    """An autoropes-transformed traversal, ready for an executor."""

    spec: TraversalSpec
    body: Stmt
    analysis: CallSetAnalysis
    #: names of conditions turned into warp votes by the lockstep
    #: transformation (empty until :func:`~repro.core.lockstep
    #: .apply_lockstep` runs).
    vote_conditions: frozenset = frozenset()
    lockstep: bool = False

    @property
    def unguided(self) -> bool:
        return self.analysis.unguided

    def push_groups(self) -> Tuple[PushGroup, ...]:
        return tuple(s for s in self.body.walk() if isinstance(s, PushGroup))

    @property
    def max_pushes_per_visit(self) -> int:
        """Upper bound on stack growth per node visit (for sizing)."""
        best = 0
        for g in self.push_groups():
            best = max(best, len(g.calls))
        return best


def _rewrite(stmt: Stmt) -> Stmt:
    """Recursive rewrite: trailing Recurse runs -> PushGroup; Return ->
    Continue. Raises if a Recurse appears anywhere else (the body was
    not pseudo-tail-recursive / not normalized)."""
    if isinstance(stmt, Return):
        return Continue()
    if isinstance(stmt, Recurse):
        return PushGroup(calls=(stmt,))
    if isinstance(stmt, If):
        return If(
            cond=stmt.cond,
            then=_rewrite(stmt.then),
            orelse=None if stmt.orelse is None else _rewrite(stmt.orelse),
        )
    if isinstance(stmt, Seq):
        stmts = stmt.stmts
        # Find the maximal trailing run of Recurse statements.
        k = len(stmts)
        while k > 0 and isinstance(stmts[k - 1], Recurse):
            k -= 1
        head, run = stmts[:k], stmts[k:]
        for s in head:
            if any(isinstance(x, Recurse) for x in s.walk()) and not isinstance(
                s, (If,)
            ):
                raise NotPseudoTailRecursive(
                    f"recursive call in non-tail position: {type(s).__name__}"
                )
        new_head: List[Stmt] = []
        for i, s in enumerate(head):
            if isinstance(s, If) and any(
                isinstance(x, Recurse) for x in s.walk()
            ):
                if i != len(head) - 1 or run:
                    raise NotPseudoTailRecursive(
                        "branch containing recursive calls is followed by "
                        "more statements; run tail_duplicate/normalize first"
                    )
                new_head.append(_rewrite(s))
            elif isinstance(s, (Update,)):
                new_head.append(s)
            elif isinstance(s, If):
                new_head.append(_rewrite(s))
            elif isinstance(s, Return):
                new_head.append(Continue())
            elif isinstance(s, Seq):
                new_head.append(_rewrite(s))
            else:
                new_head.append(s)
        if run:
            new_head.append(PushGroup(calls=tuple(run)))  # type: ignore[arg-type]
        return Seq(*new_head)
    return stmt


def apply_autoropes(spec: TraversalSpec) -> IterativeKernel:
    """Transform a pseudo-tail-recursive spec into an iterative kernel.

    Raises
    ------
    NotPseudoTailRecursive
        if the body is not pseudo-tail-recursive; call
        :func:`repro.core.pseudotail.normalize_to_pseudo_tail` first.
    """
    analysis = analyze_call_sets(spec)
    if not analysis.pseudo_tail_recursive:
        raise NotPseudoTailRecursive(
            f"{spec.name}: body is not pseudo-tail-recursive; apply "
            "normalize_to_pseudo_tail() before autoropes"
        )
    canonical = tail_duplicate(spec.body)
    body = _rewrite(canonical)
    _validate_iterative(body)
    return IterativeKernel(spec=spec, body=body, analysis=analysis)


def _validate_iterative(body: Stmt) -> None:
    for s in body.walk():
        if isinstance(s, Recurse):
            raise AssertionError("Recurse survived the autoropes rewrite")
        if isinstance(s, Return):
            raise AssertionError("Return survived the autoropes rewrite")
