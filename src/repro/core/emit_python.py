"""Python source-code backend for transformed kernels.

The paper's system is a *source-to-source compiler*: it consumes C++
traversal code and emits CUDA. This module is the analogous backend for
the reproduction: it consumes an :class:`~repro.core.autoropes
.IterativeKernel` and emits **executable Python source** for a
standalone, per-point, stack-driven traversal function — the literal
Fig. 6/7 code, but runnable.

The emitted function is independent of the simulator and of the AST
interpreters (it contains plain ``while``/``if``/``list`` code), which
makes it a third implementation for differential testing: interpreter
vs executor vs generated code must agree on visit order and results.

Since the pass-registry refactor the source emission lives in
:mod:`repro.core.passes` (:class:`~repro.core.passes
.EmitScalarPython`); this module keeps the stable public entry points
plus the runtime namespace the generated function closes over.

Use :func:`emit_traversal_source` to inspect the code and
:func:`compile_traversal` to get the callable.
"""

from __future__ import annotations

from typing import Callable

from repro.core.autoropes import IterativeKernel
from repro.core.passes import EmitUnit, run_pipeline


def emit_traversal_source(kernel: IterativeKernel, name: str = "traverse") -> str:
    """Render the kernel as a standalone Python function definition."""
    unit = EmitUnit(
        kernel=kernel,
        facts=None,
        mode="scalar_python",
        bindings={"emit_name": name},
    )
    return run_pipeline(unit).source


def compile_traversal(
    kernel: IterativeKernel, name: str = "traverse"
) -> Callable:
    """Compile the emitted source into a callable.

    The callable's signature is ``fn(ctx, tree, pt, root) -> list`` and
    it matches the scalar recursive interpreter's visit order exactly
    (asserted by tests/test_emit_python.py).
    """
    import numpy as np

    spec = kernel.spec

    def _n1(node):
        return np.array([node], dtype=np.int64)

    def _p1(pt):
        return np.array([pt], dtype=np.int64)

    def _child(tree, cname, node):
        if node < 0:
            return -1
        return int(tree.children[cname][node])

    def _visit_args(ctx, node, pt, args):
        out = dict(args)
        for a in spec.args:
            if a.update is not None:
                val = spec.eval_arg_rule(
                    a.update, ctx, _n1(node), _p1(pt), args
                )
                out[a.name] = val.astype(a.dtype, copy=False)
        return out

    def _site_args(ctx, node, pt, new_args, overrides):
        call_args = dict(new_args)
        for arg_name, rule in overrides:
            val = spec.eval_arg_rule(rule, ctx, _n1(node), _p1(pt), new_args)
            decl = next(a for a in spec.args if a.name == arg_name)
            call_args[arg_name] = val.astype(decl.dtype, copy=False)
        return call_args

    namespace = {
        "_cond": dict(spec.conditions),
        "_upd": dict(spec.updates),
        "_initial_args": spec.initial_args(1),
        "_visits_null": spec.visits_null_children,
        "_n1": _n1,
        "_p1": _p1,
        "_child": _child,
        "_visit_args": _visit_args,
        "_site_args": _site_args,
    }
    source = emit_traversal_source(kernel, name)
    code = compile(source, filename=f"<emitted {spec.name}>", mode="exec")
    exec(code, namespace)
    fn = namespace[name]
    fn.__source__ = source  # for inspection in tests/docs
    return fn
