"""Input point sets and point ordering.

:mod:`repro.points.datasets` generates the evaluation inputs
(Section 6.1.2) — Plummer and random body distributions for Barnes-Hut,
and covtype-like / mnist-like / random / geocity-like 7-d and 2-d point
sets for the kd-tree benchmarks. Proprietary datasets are replaced by
synthetic generators that preserve dimension, reduction method and
clustering structure (see DESIGN.md, "Substitutions").

:mod:`repro.points.sorting` provides the point-sorting step of
Section 4.4 (Morton-order space-filling-curve sort, plus tree-order
sorting) and the seeded shuffle that produces the "unsorted" variants.
"""

from repro.points.datasets import (
    Dataset,
    BodySet,
    plummer_bodies,
    random_bodies,
    covtype_like,
    mnist_like,
    random_points,
    geocity_like,
    dataset_by_name,
    DATASET_NAMES,
)
from repro.points.sorting import morton_order, morton_codes, shuffled_order, tree_order

__all__ = [
    "Dataset",
    "BodySet",
    "plummer_bodies",
    "random_bodies",
    "covtype_like",
    "mnist_like",
    "random_points",
    "geocity_like",
    "dataset_by_name",
    "DATASET_NAMES",
    "morton_order",
    "morton_codes",
    "shuffled_order",
    "tree_order",
]
