"""Synthetic evaluation inputs (Section 6.1.2).

The paper's inputs and our stand-ins:

* **Plummer** — 1M bodies from the Plummer model (Lonestar's class C
  input). We sample the Plummer sphere exactly (it is a closed-form
  distribution), scaled down in count.
* **Random** (BH) — bodies with uniform random position and velocity.
* **Covtype** — the UCI forest-cover dataset (580k x 54d) reduced to
  200k x 7d by random projection. Stand-in: a 7-component Gaussian
  mixture in 54d with anisotropic covariances (cover types form
  elongated clusters), random-projected to 7d.
* **Mnist** — 8.1M x 784d handwritten digits reduced to 200k x 7d by
  random projection. Stand-in: a 10-component mixture on a low-rank
  manifold in 784d (digit classes vary along few factors),
  random-projected to 7d.
* **Geocity** — 200k 2-d city locations. Stand-in: Zipf-weighted city
  clusters with tight Gaussian spread — the heavy clustering and low
  dimension are exactly what makes Geocity the paper's consistent
  outlier (very short traversals, CPU-friendly).

All generators take explicit seeds and sizes; defaults are laptop-scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np


@dataclass(frozen=True)
class Dataset:
    """A point set traversing a tree built over (usually) itself."""

    name: str
    points: np.ndarray  # (n, d) float64

    @property
    def n(self) -> int:
        return len(self.points)

    @property
    def dim(self) -> int:
        return self.points.shape[1]


@dataclass(frozen=True)
class BodySet:
    """Bodies for Barnes-Hut: positions, velocities, masses."""

    name: str
    pos: np.ndarray  # (n, 3)
    vel: np.ndarray  # (n, 3)
    mass: np.ndarray  # (n,)

    @property
    def n(self) -> int:
        return len(self.pos)


def _unit_vectors(rng: np.random.Generator, n: int) -> np.ndarray:
    v = rng.normal(size=(n, 3))
    norm = np.linalg.norm(v, axis=1, keepdims=True)
    norm[norm == 0] = 1.0
    return v / norm


def plummer_bodies(n: int = 4096, seed: int = 42) -> BodySet:
    """Sample the Plummer model (Aarseth, Henon & Wielen '74 recipe).

    Radii follow ``r = (u^{-2/3} - 1)^{-1/2}``; velocities are drawn by
    von Neumann rejection from the isotropic distribution
    ``g(q) = q^2 (1 - q^2)^{7/2}`` scaled by the local escape velocity.
    Masses are equal, as in the Lonestar class C input.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(seed)
    u = rng.uniform(1e-10, 1.0 - 1e-10, size=n)
    r = (u ** (-2.0 / 3.0) - 1.0) ** -0.5
    r = np.minimum(r, 10.0)  # standard practice: clip the far tail
    pos = _unit_vectors(rng, n) * r[:, None]

    q = np.empty(n)
    remaining = np.arange(n)
    while len(remaining):
        x = rng.uniform(0.0, 1.0, size=len(remaining))
        y = rng.uniform(0.0, 0.1, size=len(remaining))
        ok = y < x * x * (1.0 - x * x) ** 3.5
        q[remaining[ok]] = x[ok]
        remaining = remaining[~ok]
    v_escape = np.sqrt(2.0) * (1.0 + r * r) ** -0.25
    vel = _unit_vectors(rng, n) * (q * v_escape)[:, None]
    mass = np.full(n, 1.0 / n)
    return BodySet(name="plummer", pos=pos, vel=vel, mass=mass)


def random_bodies(n: int = 4096, seed: int = 43) -> BodySet:
    """Bodies of equal mass with random position and velocity."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(seed)
    pos = rng.uniform(-1.0, 1.0, size=(n, 3))
    vel = rng.uniform(-0.1, 0.1, size=(n, 3))
    mass = np.full(n, 1.0 / n)
    return BodySet(name="random", pos=pos, vel=vel, mass=mass)


def _random_projection(
    rng: np.random.Generator, data: np.ndarray, out_dim: int
) -> np.ndarray:
    proj = rng.normal(size=(data.shape[1], out_dim)) / np.sqrt(data.shape[1])
    low = data @ proj
    # Normalize to the unit cube so radii are comparable across inputs.
    low -= low.min(axis=0)
    span = low.max(axis=0)
    span[span == 0] = 1.0
    return low / span


def covtype_like(n: int = 4096, dim: int = 7, seed: int = 44) -> Dataset:
    """Covtype stand-in: anisotropic 7-cluster mixture in 54d, random-
    projected to ``dim`` dimensions (the paper's reduction method)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(seed)
    full_dim, k = 54, 7
    centers = rng.normal(size=(k, full_dim)) * 3.0
    # Elongated covariances: a few dominant directions per cover type.
    labels = rng.integers(0, k, size=n)
    factors = rng.normal(size=(k, full_dim, 5))
    z = rng.normal(size=(n, 5))
    noise = rng.normal(size=(n, full_dim)) * 0.2
    data = centers[labels] + np.einsum("nf,ndf->nd", z, factors[labels]) + noise
    return Dataset(name="covtype", points=_random_projection(rng, data, dim))


def mnist_like(n: int = 4096, dim: int = 7, seed: int = 45) -> Dataset:
    """MNIST stand-in: 10-class low-rank manifold mixture in 784d,
    random-projected to ``dim`` dimensions."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(seed)
    full_dim, k, rank = 784, 10, 12
    centers = rng.normal(size=(k, full_dim)) * 2.0
    basis = rng.normal(size=(k, full_dim, rank)) / np.sqrt(rank)
    labels = rng.integers(0, k, size=n)
    coeff = rng.normal(size=(n, rank))
    noise = rng.normal(size=(n, full_dim)) * 0.05
    data = centers[labels] + np.einsum("nr,ndr->nd", coeff, basis[labels]) + noise
    return Dataset(name="mnist", points=_random_projection(rng, data, dim))


def random_points(n: int = 4096, dim: int = 7, seed: int = 46) -> Dataset:
    """Uniform random coordinates in the unit cube (the paper's Random
    input for PC/kNN/NN/VP)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(seed)
    return Dataset(name="random", points=rng.uniform(0.0, 1.0, size=(n, dim)))


def geocity_like(n: int = 4096, seed: int = 47, n_cities: Optional[int] = None) -> Dataset:
    """Geocity stand-in: 2-d city locations with Zipf-distributed city
    populations and tight per-city spread — highly clustered, which
    makes traversals very short and variable (the paper's outlier)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(seed)
    if n_cities is None:
        n_cities = max(8, n // 64)
    centers = rng.uniform(0.0, 1.0, size=(n_cities, 2))
    weights = 1.0 / np.arange(1, n_cities + 1) ** 1.1
    weights /= weights.sum()
    city = rng.choice(n_cities, size=n, p=weights)
    sigma = 0.004
    pts = centers[city] + rng.normal(scale=sigma, size=(n, 2))
    return Dataset(name="geocity", points=pts)


DATASET_NAMES = ("covtype", "mnist", "random", "geocity")


def dataset_by_name(name: str, n: int, seed: int = 0, dim: int = 7) -> Dataset:
    """Factory used by the experiment harness."""
    makers: Dict[str, object] = {
        "covtype": lambda: covtype_like(n, dim=dim, seed=44 + seed),
        "mnist": lambda: mnist_like(n, dim=dim, seed=45 + seed),
        "random": lambda: random_points(n, dim=dim, seed=46 + seed),
        "geocity": lambda: geocity_like(n, seed=47 + seed),
    }
    if name not in makers:
        raise KeyError(f"unknown dataset {name!r}; options: {DATASET_NAMES}")
    return makers[name]()  # type: ignore[operator]
