"""Point sorting (Section 4.4) and the unsorted shuffle.

*"Sorting ensures that nearby points — and hence the points in a given
warp — have similar traversals."* We provide:

* :func:`morton_order` — sort by Morton (Z-order) space-filling-curve
  code, the standard semantics-light spatial sort (works in any
  dimension by per-axis quantization and bit interleaving);
* :func:`tree_order` — sort points by their bucket position in a tree
  built over them (the strongest possible agreement between warp
  membership and tree locality);
* :func:`shuffled_order` — a seeded random permutation producing the
  paper's "unsorted" input variants.
"""

from __future__ import annotations

import numpy as np


def morton_codes(points: np.ndarray, bits_per_dim: int = 0) -> np.ndarray:
    """Morton (Z-order) code of each point.

    Coordinates are normalized to the unit cube, quantized to
    ``bits_per_dim`` levels per axis, and bit-interleaved across axes
    (axis 0 contributes the most significant bit of each group). With
    the default ``bits_per_dim=0`` the maximum that fits 63 bits is
    used (e.g. 9 bits/dim at d=7, 21 at d=3).
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or len(pts) == 0:
        raise ValueError("points must be a non-empty (n, d) array")
    n, d = pts.shape
    if bits_per_dim <= 0:
        # Cap at 21: quantized levels must stay exactly representable in
        # the float64 used for scaling (and 21*3 covers 3-d fully).
        bits_per_dim = min(63 // d, 21)
    if bits_per_dim * d > 63:
        raise ValueError(f"{bits_per_dim} bits x {d} dims exceeds 63 bits")
    if bits_per_dim > 26:
        raise ValueError("bits_per_dim > 26 overflows float64 quantization")
    lo = pts.min(axis=0)
    span = pts.max(axis=0) - lo
    span[span == 0] = 1.0
    levels = (1 << bits_per_dim) - 1
    q = ((pts - lo) / span * levels).astype(np.int64)
    q = np.clip(q, 0, levels)
    codes = np.zeros(n, dtype=np.int64)
    for bit in range(bits_per_dim - 1, -1, -1):
        for axis in range(d):
            codes = (codes << 1) | ((q[:, axis] >> bit) & 1)
    return codes


def morton_order(points: np.ndarray, bits_per_dim: int = 0) -> np.ndarray:
    """Permutation sorting points into Morton order (stable)."""
    return np.argsort(morton_codes(points, bits_per_dim), kind="stable")


def tree_order(point_order: np.ndarray) -> np.ndarray:
    """Sort points by their bucket-contiguous position in a tree build.

    ``point_order`` is the permutation a bucket-tree builder produced
    (original index of each bucket slot); it *is* the sorted order, so
    this is the identity wrapper that documents the intent and checks
    the input is a permutation.
    """
    order = np.asarray(point_order, dtype=np.int64)
    n = len(order)
    seen = np.zeros(n, dtype=bool)
    seen[order] = True
    if not seen.all():
        raise ValueError("point_order is not a permutation")
    return order


def shuffled_order(n: int, seed: int = 123) -> np.ndarray:
    """Seeded random permutation (the paper's 'unsorted' variants)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return np.random.default_rng(seed).permutation(n)
