"""Point sorting (Section 4.4) and the unsorted shuffle.

*"Sorting ensures that nearby points — and hence the points in a given
warp — have similar traversals."* We provide:

* :func:`morton_order` — sort by Morton (Z-order) space-filling-curve
  code, the standard semantics-light spatial sort (works in any
  dimension by per-axis quantization and bit interleaving);
* :func:`tree_order` — sort points by their bucket position in a tree
  built over them (the strongest possible agreement between warp
  membership and tree locality);
* :func:`shuffled_order` — a seeded random permutation producing the
  paper's "unsorted" input variants.
"""

from __future__ import annotations

import numpy as np


def morton_codes(points: np.ndarray, bits_per_dim: int = 0) -> np.ndarray:
    """Morton (Z-order) code of each point.

    Coordinates are normalized to the unit cube, quantized to
    ``bits_per_dim`` levels per axis, and bit-interleaved across axes
    (axis 0 contributes the most significant bit of each group). With
    the default ``bits_per_dim=0`` the maximum that fits 63 bits is
    used (e.g. 9 bits/dim at d=7, 21 at d=3).
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or len(pts) == 0:
        raise ValueError("points must be a non-empty (n, d) array")
    n, d = pts.shape
    if bits_per_dim <= 0:
        # Cap at 21: quantized levels must stay exactly representable in
        # the float64 used for scaling (and 21*3 covers 3-d fully).
        bits_per_dim = min(63 // d, 21)
    if bits_per_dim * d > 63:
        raise ValueError(f"{bits_per_dim} bits x {d} dims exceeds 63 bits")
    if bits_per_dim > 26:
        raise ValueError("bits_per_dim > 26 overflows float64 quantization")
    lo = pts.min(axis=0)
    span = pts.max(axis=0) - lo
    span[span == 0] = 1.0
    levels = (1 << bits_per_dim) - 1
    q = ((pts - lo) / span * levels).astype(np.int64)
    q = np.clip(q, 0, levels)
    codes = np.zeros(n, dtype=np.int64)
    for bit in range(bits_per_dim - 1, -1, -1):
        for axis in range(d):
            codes = (codes << 1) | ((q[:, axis] >> bit) & 1)
    return codes


def morton_order(points: np.ndarray, bits_per_dim: int = 0) -> np.ndarray:
    """Permutation sorting points into Morton order (stable)."""
    return np.argsort(morton_codes(points, bits_per_dim), kind="stable")


def tree_order(point_order: np.ndarray) -> np.ndarray:
    """Sort points by their bucket-contiguous position in a tree build.

    ``point_order`` is the permutation a bucket-tree builder produced
    (original index of each bucket slot); it *is* the sorted order, so
    this is the identity wrapper that documents the intent and checks
    the input is a permutation.
    """
    order = np.asarray(point_order, dtype=np.int64)
    n = len(order)
    seen = np.zeros(n, dtype=bool)
    seen[order] = True
    if not seen.all():
        raise ValueError("point_order is not a permutation")
    return order


def shuffled_order(n: int, seed: int = 123) -> np.ndarray:
    """Seeded random permutation (the paper's 'unsorted' variants)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return np.random.default_rng(seed).permutation(n)


def kd_bucket_order(tree, coords: np.ndarray) -> np.ndarray:
    """Sort a batch of query points by the kd-tree leaf they land in.

    The online-batch analogue of :func:`tree_order`: instead of reusing
    a builder permutation, each query descends the already-built tree's
    splitting planes (vectorized, one level of the whole batch at a
    time) until it reaches a leaf bucket, and the batch is stably
    sorted by left-biased leaf id.  Queries reaching the same bucket —
    whose traversals overlap the most — become index-adjacent and hence
    land in the same warp.

    ``tree`` is a linearized kd tree exposing ``arrays['split_dim']``,
    ``arrays['split_val']``, ``arrays['is_leaf']`` and ``left``/``right``
    children (:class:`~repro.trees.linearize.LinearTree` duck type).
    Raises :class:`KeyError` for trees without those arrays (callers
    fall back to :func:`morton_order`).
    """
    pts = np.asarray(coords, dtype=np.float64)
    if pts.ndim != 2 or len(pts) == 0:
        raise ValueError("coords must be a non-empty (n, d) array")
    split_dim = tree.arrays["split_dim"]
    split_val = tree.arrays["split_val"]
    is_leaf = np.asarray(tree.arrays["is_leaf"], dtype=bool)
    left, right = tree.children["left"], tree.children["right"]
    node = np.full(len(pts), tree.root, dtype=np.int64)
    # Each iteration descends every still-interior query one level;
    # bounded by the node count in case of a degenerate chain.
    for _ in range(tree.n_nodes + 1):
        active = ~is_leaf[node]
        if not active.any():
            break
        cur = node[active]
        dim = np.maximum(split_dim[cur], 0)
        go_left = pts[active, dim] < split_val[cur]
        nxt = np.where(go_left, left[cur], right[cur])
        # A missing child means the query's side is empty; the present
        # node is the deepest bucket we can assign.
        stuck = nxt < 0
        nxt = np.where(stuck, cur, nxt)
        progressed = node.copy()
        progressed[active] = nxt
        if np.array_equal(progressed, node):
            break
        node = progressed
    return np.argsort(node, kind="stable")
