"""Scalar recursive reference interpreter.

Interprets the *original* recursive :class:`~repro.core.ir.TraversalSpec`
body, one point at a time, by actual recursion — the semantics every
transformed variant must preserve (Section 3.3). It is deliberately
simple and slow; tests use it as the ground-truth oracle for visit
order and results, and the Section 4.4 profiler uses its per-point
visit sets.

Bulk runs (the CPU baseline's timing input and result arrays) come from
replaying the autoropes kernel vectorized — the transformation is
order-preserving, and the property tests in ``tests/`` verify exactly
that against this interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.ir import (
    EvalContext,
    If,
    Recurse,
    Return,
    Seq,
    Stmt,
    TraversalSpec,
    Update,
)
from repro.trees.linearize import LinearTree


@dataclass
class ReferenceRun:
    """Per-point visit sequences + the context whose ``out`` holds the
    results (built from a recorded launch or interpreter sweep)."""

    sequences: List[np.ndarray]
    ctx: EvalContext

    @property
    def visits_per_point(self) -> np.ndarray:
        return np.array([len(s) for s in self.sequences], dtype=np.int64)

    def stream_for_points(self, point_ids: np.ndarray) -> np.ndarray:
        """Concatenated visit stream for a subset of points, in order —
        the CPU cache model's input."""
        seqs = [self.sequences[int(p)] for p in point_ids]
        if not seqs:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(seqs)


class RecursiveInterpreter:
    """Executes the recursive spec for single points (ground truth)."""

    def __init__(
        self,
        spec: TraversalSpec,
        tree: LinearTree,
        ctx: EvalContext,
        max_visits: int = 10_000_000,
    ) -> None:
        self.spec = spec
        self.tree = tree
        self.ctx = ctx
        self.max_visits = max_visits

    def run_point(self, pt: int) -> np.ndarray:
        """Traverse for one point; returns the visited node ids in
        recursive order and applies updates to ``ctx.out``."""
        visits: List[int] = []
        args0 = {a.name: np.array([a.initial], dtype=a.dtype) for a in self.spec.args}
        self._recurse(self.tree.root, pt, args0, visits)
        return np.array(visits, dtype=np.int64)

    def run_points(self, pts) -> List[np.ndarray]:
        return [self.run_point(int(p)) for p in pts]

    # -- recursion ---------------------------------------------------------

    def _recurse(
        self, node: int, pt: int, args: Dict[str, np.ndarray], visits: List[int]
    ) -> None:
        if node < 0 and not self.spec.visits_null_children:
            return
        if node >= 0:
            visits.append(node)
        if len(visits) > self.max_visits:
            raise RuntimeError("traversal exceeded max_visits; runaway spec?")
        state = _VisitState(args)
        self._exec(self.spec.body, node, pt, state, visits)

    def _exec(
        self,
        stmt: Stmt,
        node: int,
        pt: int,
        state: "_VisitState",
        visits: List[int],
    ) -> bool:
        """Execute one statement; returns False once the visit returned."""
        spec = self.spec
        n_arr = np.array([node], dtype=np.int64)
        p_arr = np.array([pt], dtype=np.int64)
        if isinstance(stmt, Seq):
            for s in stmt.stmts:
                if not self._exec(s, node, pt, state, visits):
                    return False
            return True
        if isinstance(stmt, Return):
            return False
        if isinstance(stmt, If):
            cond = spec.eval_condition(stmt.cond, self.ctx, n_arr, p_arr, state.args)
            if bool(cond[0]):
                return self._exec(stmt.then, node, pt, state, visits)
            if stmt.orelse is not None:
                return self._exec(stmt.orelse, node, pt, state, visits)
            return True
        if isinstance(stmt, Update):
            spec.eval_update(stmt.fn, self.ctx, n_arr, p_arr, state.args)
            return True
        if isinstance(stmt, Recurse):
            # Declaration-level arg rules are evaluated once per visit,
            # at the first recursive call (all calls of the visit share
            # the parent's new values — Fig. 5's `arg = arg + c + 1`).
            new_args = state.visit_args(spec, self.ctx, n_arr, p_arr)
            call_args = dict(new_args)
            for arg_name, rule in stmt.arg_overrides:
                val = spec.eval_arg_rule(rule, self.ctx, n_arr, p_arr, new_args)
                decl = next(a for a in spec.args if a.name == arg_name)
                call_args[arg_name] = val.astype(decl.dtype, copy=False)
            if node >= 0:
                child = int(self.tree.child(stmt.child.name, n_arr)[0])
            else:
                child = -1
            if child >= 0 or self.spec.visits_null_children:
                self._recurse(child, pt, call_args, visits)
            return True
        raise TypeError(f"cannot execute {type(stmt).__name__}")


class _VisitState:
    """Per-visit argument state with lazily-evaluated decl rules."""

    def __init__(self, args: Dict[str, np.ndarray]) -> None:
        self.args = args
        self._visit_args: Optional[Dict[str, np.ndarray]] = None

    def visit_args(self, spec, ctx, n_arr, p_arr) -> Dict[str, np.ndarray]:
        if self._visit_args is None:
            out = dict(self.args)
            for a in spec.args:
                if a.update is not None:
                    val = spec.eval_arg_rule(a.update, ctx, n_arr, p_arr, self.args)
                    out[a.name] = val.astype(a.dtype, copy=False)
            self._visit_args = out
        return self._visit_args
