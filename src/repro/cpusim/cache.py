"""Reuse-window cache model for CPU visit streams.

A full LRU simulation of a three-level hierarchy is serial by nature;
instead we use the classic reuse-distance approximation: an access hits
in a cache of capacity ``W`` lines if the *gap* (number of accesses)
since the previous touch of the same line is below ``W``. Gaps
over-estimate true LRU stack distance (they count duplicates), so the
model is slightly pessimistic, uniformly across variants — which is
what matters for the paper's comparisons: sorted points produce short
gaps (neighboring traversals re-touch the same nodes immediately) and
hit; shuffled points produce long gaps and miss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_NO_PREV = np.iinfo(np.int64).max


@dataclass(frozen=True)
class CacheConfig:
    """Per-level reuse windows (in accesses) and hit costs (cycles).

    Defaults approximate one Opteron 6176 core's slice of the hierarchy:
    64 KB L1 / 512 KB L2 per core, 6 MB L3 shared per die — divided by a
    64-byte line and scaled to window units.
    """

    l1_window: int = 1024
    l2_window: int = 8192
    l3_window: int = 98304
    l1_cycles: float = 2.0
    l2_cycles: float = 14.0
    l3_cycles: float = 50.0
    dram_cycles: float = 220.0
    line_bytes: int = 64

    def validate(self) -> "CacheConfig":
        if not self.l1_window < self.l2_window < self.l3_window:
            raise ValueError("cache windows must be strictly increasing")
        return self


def reuse_gaps(stream: np.ndarray) -> np.ndarray:
    """Gap (in accesses) since the previous access to the same line.

    First-touch accesses get a sentinel gap larger than any window.
    Vectorized: stable-sort by line id groups each line's accesses in
    time order; consecutive positions within a group give the gaps.
    """
    stream = np.asarray(stream, dtype=np.int64)
    n = len(stream)
    gaps = np.full(n, _NO_PREV, dtype=np.int64)
    if n == 0:
        return gaps
    order = np.argsort(stream, kind="stable")
    sorted_vals = stream[order]
    same = sorted_vals[1:] == sorted_vals[:-1]
    pos_gaps = order[1:] - order[:-1]
    targets = order[1:][same]
    gaps[targets] = pos_gaps[same]
    return gaps


def classify_reuse(
    stream: np.ndarray, config: CacheConfig
) -> dict:
    """Count hits per level for one access stream.

    Returns ``{"l1": n, "l2": n, "l3": n, "dram": n, "cycles": c}``.
    """
    config.validate()
    gaps = reuse_gaps(stream)
    l1 = gaps <= config.l1_window
    l2 = ~l1 & (gaps <= config.l2_window)
    l3 = ~l1 & ~l2 & (gaps <= config.l3_window)
    dram = ~l1 & ~l2 & ~l3
    n1, n2, n3, nd = map(int, (l1.sum(), l2.sum(), l3.sum(), dram.sum()))
    cycles = (
        n1 * config.l1_cycles
        + n2 * config.l2_cycles
        + n3 * config.l3_cycles
        + nd * config.dram_cycles
    )
    return {"l1": n1, "l2": n2, "l3": n3, "dram": nd, "cycles": cycles}
