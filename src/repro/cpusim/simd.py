"""CPU-SIMD lockstep traversal (extension; cf. Jo et al., PACT '13).

The paper's related work points at vectorizing tree traversals for
commodity-CPU SIMD units — structurally the same lockstep idea with a
narrower "warp" (an AVX lane group) and per-core instead of per-SM
scheduling. Because our lockstep executor is parameterized over the
device model, the extension is a device configuration: 8-lane groups,
one "SM" per core, cache-like memory costs, CPU clock.

This lets the repository answer the natural follow-on question the
paper leaves open: how much of the lockstep benefit is SIMT-specific,
and how much transfers to CPU vectors? (Spoiler, reproducible with
``benchmarks/test_ablation_simd.py``: the work expansion is smaller —
8 lanes diverge less than 32 — but so is the coalescing payoff.)
"""

from __future__ import annotations

import dataclasses

from repro.cpusim.threads import CPUConfig, OPTERON_6176
from repro.gpusim.device import DeviceConfig
from repro.gpusim.executors import LockstepExecutor, TraversalLaunch
from repro.gpusim.executors.common import LaunchResult
from repro.gpusim.stack import RopeStackLayout


def simd_device(
    cpu: CPUConfig = OPTERON_6176,
    lanes: int = 8,
    cores: int = 12,
) -> DeviceConfig:
    """An AVX-like 'device': ``lanes``-wide groups on ``cores`` cores.

    Memory-cost knobs are re-derived from the CPU model: a cache line
    is the coalescing segment, LLC plays the L2 role, and 'shared
    memory' (per-core L1, where a per-group stack would live) is large
    relative to the tiny groups.
    """
    return DeviceConfig(
        name=f"cpu-simd-{lanes}x{cores}",
        num_sms=cores,
        sps_per_sm=lanes,
        warp_size=lanes,
        max_warps_per_sm=2,  # ~2 hyperthreads' worth of lane groups
        max_threads_per_block=lanes * 2,
        segment_bytes=cpu.cache.line_bytes,
        shared_mem_per_sm=32 * 1024,
        l2_bytes=6 * 1024 * 1024,
        l2_line_bytes=cpu.cache.line_bytes,
        clock_ghz=cpu.clock_ghz,
        issue_cycles=1.0,
        dram_cycles_per_transaction=float(cpu.cache.dram_cycles) / 8.0,
        l2_hit_cost_fraction=cpu.cache.l3_cycles / cpu.cache.dram_cycles,
        shared_access_cycles=cpu.cache.l1_cycles,
        call_overhead_cycles=10.0,
        frame_bytes=32,
        recursive_divergence_cycles=0.0,
        launch_overhead_cycles=cpu.fork_join_cycles,
        full_overlap_occupancy=1.0,  # CPUs hide far less latency
    ).validate()


def run_simd_lockstep(
    app,
    compiled,
    lanes: int = 8,
    cores: int = 12,
    block_check: bool = True,
) -> LaunchResult:
    """Run the lockstep kernel of a compiled traversal on the CPU-SIMD
    device model and return the launch result (results land in the
    launch's fresh context, already validated against the app oracle by
    the caller if desired)."""
    device = simd_device(lanes=lanes, cores=cores)
    launch = TraversalLaunch(
        kernel=compiled.kernel(lockstep=True),
        tree=app.tree,
        ctx=app.make_ctx(),
        n_points=app.n_points,
        device=device,
        stack_layout=RopeStackLayout.SHARED,  # per-group stack in L1
    )
    result = LockstepExecutor(launch).run()
    if block_check:
        app.check(launch.ctx.out, app.brute_force())
    return result
