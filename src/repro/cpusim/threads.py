"""Multithreaded CPU baseline timing (Section 6.1.1's Opteron system).

The CPU implementations in the paper parallelize the point loop over
1-32 threads. Our model derives time from the *same* per-point visit
streams the traversal produced:

* each thread gets a contiguous chunk of points (the usual OpenMP
  static schedule); its compute time is per-visit instruction work plus
  cache-hierarchy access costs from the reuse-window model — so sorted
  inputs, whose neighboring traversals re-touch the same nodes, run
  faster, exactly the effect the paper reports;
* wall-clock is a roofline over threads: the slowest thread's compute
  (load imbalance falls out of real per-thread work, which is what
  hurts the clustered Geocity input) against total DRAM traffic over a
  shared bandwidth — which is what bends the scaling curves past ~8-16
  threads in Figures 10/11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.cpusim.cache import CacheConfig, classify_reuse


@dataclass(frozen=True)
class CPUConfig:
    """Cost parameters for one CPU system."""

    name: str = "opteron-6176"
    clock_ghz: float = 2.3
    n_cores: int = 48
    #: instruction work per node visit (distance computations etc.).
    cycles_per_visit: float = 55.0
    #: DRAM bytes the whole system can move per CPU cycle.
    dram_bytes_per_cycle: float = 24.0
    #: parallel-region overhead per launch, cycles.
    fork_join_cycles: float = 40_000.0
    cache: CacheConfig = field(default_factory=CacheConfig)

    def validate(self) -> "CPUConfig":
        if self.n_cores < 1 or self.clock_ghz <= 0:
            raise ValueError("bad CPUConfig")
        self.cache.validate()
        return self


OPTERON_6176 = CPUConfig().validate()


@dataclass(frozen=True)
class CPUTiming:
    """Modeled CPU run at one thread count."""

    threads: int
    time_ms: float
    compute_cycles_max: float
    dram_cycles: float
    total_visits: int


def _chunks(n_points: int, threads: int) -> List[np.ndarray]:
    bounds = np.linspace(0, n_points, threads + 1).astype(np.int64)
    return [np.arange(bounds[t], bounds[t + 1]) for t in range(threads)]


def cpu_time_ms(
    sequences: Sequence[np.ndarray],
    threads: int,
    config: CPUConfig = OPTERON_6176,
    visit_cost_scale: float = 1.0,
) -> CPUTiming:
    """Model one CPU run over per-point visit sequences.

    Parameters
    ----------
    sequences:
        visit sequence (node ids) per point, in point order.
    threads:
        thread count (chunked statically over points).
    visit_cost_scale:
        multiplier on per-visit instruction work — applications with
        heavier updates (e.g. BH's force kernel) pass > 1.
    """
    if threads < 1:
        raise ValueError("threads must be >= 1")
    config.validate()
    n_points = len(sequences)
    threads = min(threads, max(1, n_points))
    per_thread_compute: List[float] = []
    dram_lines = 0
    total_visits = 0
    for chunk in _chunks(n_points, threads):
        if len(chunk) == 0:
            per_thread_compute.append(0.0)
            continue
        parts = [sequences[int(p)] for p in chunk]
        stream = np.concatenate(parts) if parts else np.empty(0, np.int64)
        visits = len(stream)
        total_visits += visits
        hits = classify_reuse(stream, config.cache)
        compute = (
            visits * config.cycles_per_visit * visit_cost_scale + hits["cycles"]
        )
        per_thread_compute.append(compute)
        dram_lines += hits["dram"]

    compute_max = max(per_thread_compute) if per_thread_compute else 0.0
    dram_cycles = dram_lines * config.cache.line_bytes / config.dram_bytes_per_cycle
    total = max(compute_max, dram_cycles) + config.fork_join_cycles
    return CPUTiming(
        threads=threads,
        time_ms=total / (config.clock_ghz * 1e6),
        compute_cycles_max=compute_max,
        dram_cycles=dram_cycles,
        total_visits=total_visits,
    )
