"""CPU baseline substrate.

The paper compares its GPU kernels against multithreaded CPU
implementations on a 4-socket, 48-core AMD Opteron 6176 system
(Section 6.1.1). Here the *same* traversal specs are interpreted
per-point in recursive order (:mod:`repro.cpusim.recursive`) — which
both validates the GPU executors' visit order and yields per-point
visit streams — and those streams are priced with a reuse-window cache
model (:mod:`repro.cpusim.cache`) and a thread-scaling model
(:mod:`repro.cpusim.threads`) that derives load imbalance from actual
per-thread work and saturates on shared memory bandwidth.
"""

from repro.cpusim.cache import CacheConfig, classify_reuse, reuse_gaps
from repro.cpusim.recursive import RecursiveInterpreter, ReferenceRun
from repro.cpusim.threads import CPUConfig, CPUTiming, OPTERON_6176, cpu_time_ms

__all__ = [
    "CacheConfig",
    "classify_reuse",
    "reuse_gaps",
    "RecursiveInterpreter",
    "ReferenceRun",
    "CPUConfig",
    "CPUTiming",
    "OPTERON_6176",
    "cpu_time_ms",
]
