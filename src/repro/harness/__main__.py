"""CLI driver: ``python -m repro.harness <command>``.

Commands
--------
* ``table1`` — print the Table 1 reproduction.
* ``table2`` — print the Table 2 reproduction.
* ``fig10`` / ``fig11`` — print the figure series (sorted / unsorted).
* ``all`` — run everything and (re)write EXPERIMENTS.md.

Options: ``--scale tiny|small|medium|large`` (or env ``REPRO_SCALE``),
``--bench bh,pc,...`` to restrict benchmarks, ``--out PATH`` for
``all``'s report destination.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.harness.config import BENCHMARKS, SCALES, scale_from_env
from repro.harness.figures import figure_series, format_figures
from repro.harness.report import generate_report
from repro.harness.runner import ExperimentRunner
from repro.harness.table1 import format_table1, table1_rows
from repro.harness.table2 import format_table2, table2_rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.harness")
    parser.add_argument(
        "command", choices=["table1", "table2", "fig10", "fig11", "all"]
    )
    parser.add_argument("--scale", choices=sorted(SCALES), default=None)
    parser.add_argument(
        "--bench",
        default=None,
        help=f"comma-separated subset of {sorted(BENCHMARKS)}",
    )
    parser.add_argument("--out", default="EXPERIMENTS.md")
    args = parser.parse_args(argv)

    scale = SCALES[args.scale] if args.scale else scale_from_env()
    benches = args.bench.split(",") if args.bench else None
    runner = ExperimentRunner(scale=scale)
    t0 = time.time()

    if args.command == "table1":
        print(format_table1(table1_rows(runner, benches)))
    elif args.command == "table2":
        print(format_table2(table2_rows(runner, benches)))
    elif args.command == "fig10":
        print(format_figures(figure_series(runner, True, benches), "Figure 10"))
    elif args.command == "fig11":
        print(format_figures(figure_series(runner, False, benches), "Figure 11"))
    elif args.command == "all":
        report = generate_report(runner)
        out = pathlib.Path(args.out)
        out.write_text(report)
        print(report)
        print(f"\n[written to {out}]")
    print(f"\n[{args.command} done in {time.time() - t0:.1f}s at scale {scale.name}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
