"""Table 2: average work expansion per warp of lockstep traversals.

Work expansion compares the number of nodes a lockstep warp visits with
the longest member traversal of that warp (how long the warp would take
non-lockstep); Section 6.3 uses it to explain when lockstep pays off.
Reported as mean (std) per benchmark/input, sorted and unsorted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.harness.config import BENCHMARKS
from repro.harness.runner import ExperimentRunner
from repro.harness.table1 import BENCH_TITLES


@dataclass(frozen=True)
class Table2Row:
    bench: str
    input_name: str
    sorted_mean: float
    sorted_std: float
    unsorted_mean: float
    unsorted_std: float


def table2_rows(
    runner: ExperimentRunner,
    benches: Optional[Iterable[str]] = None,
) -> List[Table2Row]:
    rows: List[Table2Row] = []
    for bench in benches or BENCHMARKS:
        for input_name in BENCHMARKS[bench]:
            s = runner.run(bench, input_name, sorted_points=True)
            u = runner.run(bench, input_name, sorted_points=False)
            rows.append(
                Table2Row(
                    bench=bench,
                    input_name=input_name,
                    sorted_mean=s.work_expansion_mean,
                    sorted_std=s.work_expansion_std,
                    unsorted_mean=u.work_expansion_mean,
                    unsorted_std=u.work_expansion_std,
                )
            )
    return rows


def format_table2(rows: List[Table2Row]) -> str:
    header = f"{'Benchmark':<20} {'Input':<9} {'Sorted':>16} {'Unsorted':>18}"
    lines = [header, "-" * len(header)]
    prev = None
    for r in rows:
        title = BENCH_TITLES.get(r.bench, r.bench)
        show = title if r.bench != prev else ""
        prev = r.bench
        lines.append(
            f"{show:<20} {r.input_name:<9} "
            f"{r.sorted_mean:>8.2f} ({r.sorted_std:.2f}) "
            f"{r.unsorted_mean:>9.2f} ({r.unsorted_std:.2f})"
        )
    return "\n".join(lines)
