"""Benchmark/input matrix and experiment scales (Section 6.1.2).

The paper evaluates 18 benchmark/input pairs — BH x {Plummer, Random}
and PC/kNN/NN/VP x {Covtype, Mnist, Random, Geocity} — each in sorted
and unsorted variants. Input sizes are scaled to laptop size; set the
``REPRO_SCALE`` environment variable to ``small`` (default), ``medium``
or ``large``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Tuple

#: thread counts swept by Figures 10/11.
CPU_THREAD_SWEEP: Tuple[int, ...] = (1, 2, 4, 8, 12, 16, 20, 24, 32)

#: benchmark key -> input names (Section 6.1.2).
BENCHMARKS: Dict[str, Tuple[str, ...]] = {
    "bh": ("plummer", "random"),
    "pc": ("covtype", "mnist", "random", "geocity"),
    "knn": ("covtype", "mnist", "random", "geocity"),
    "nn": ("covtype", "mnist", "random", "geocity"),
    "vp": ("covtype", "mnist", "random", "geocity"),
}


@dataclass(frozen=True)
class ExperimentScale:
    """Input sizes and app parameters for one scale tier."""

    name: str
    n_bodies: int
    n_points: int
    #: PC correlation radius for 7-d inputs / for 2-d geocity.
    pc_radius_7d: float
    pc_radius_2d: float
    knn_k: int
    leaf_size: int
    bh_leaf_size: int
    theta: float

    def pc_radius(self, input_name: str) -> float:
        return self.pc_radius_2d if input_name == "geocity" else self.pc_radius_7d


TINY = ExperimentScale(
    name="tiny",
    n_bodies=256,
    n_points=256,
    pc_radius_7d=0.30,
    pc_radius_2d=0.02,
    knn_k=4,
    leaf_size=4,
    bh_leaf_size=2,
    theta=0.5,
)

SMALL = ExperimentScale(
    name="small",
    n_bodies=4096,
    n_points=4096,
    pc_radius_7d=0.12,
    pc_radius_2d=0.01,
    knn_k=4,
    leaf_size=4,
    bh_leaf_size=1,
    theta=0.5,
)

MEDIUM = ExperimentScale(
    name="medium",
    n_bodies=16384,
    n_points=16384,
    pc_radius_7d=0.10,
    pc_radius_2d=0.008,
    knn_k=4,
    leaf_size=4,
    bh_leaf_size=1,
    theta=0.5,
)

LARGE = ExperimentScale(
    name="large",
    n_bodies=32768,
    n_points=32768,
    pc_radius_7d=0.30,
    pc_radius_2d=0.01,
    knn_k=4,
    leaf_size=8,
    bh_leaf_size=1,
    theta=0.5,
)

# The xlarge tier exists for wall-clock benchmarking (benchmarks/perf):
# big enough that per-element work dominates per-call overhead.  The 2-d
# correlation radius is half the geocity cluster sigma, and the small
# leaf bucket pushes work into tree *traversal* rather than leaf scans —
# a deep-traversal regime where per-step engine overhead, the thing the
# compiled engine removes, is the dominant cost.
XLARGE = ExperimentScale(
    name="xlarge",
    n_bodies=131072,
    n_points=131072,
    pc_radius_7d=0.30,
    pc_radius_2d=0.002,
    knn_k=4,
    leaf_size=2,
    bh_leaf_size=1,
    theta=0.5,
)

SCALES = {s.name: s for s in (TINY, SMALL, MEDIUM, LARGE, XLARGE)}


def scale_from_env(default: str = "small") -> ExperimentScale:
    """Pick the scale tier from ``REPRO_SCALE`` (default ``small``)."""
    name = os.environ.get("REPRO_SCALE", default).lower()
    if name not in SCALES:
        raise KeyError(f"REPRO_SCALE={name!r}; options: {sorted(SCALES)}")
    return SCALES[name]
