"""Experiment runner: builds, compiles, launches, caches.

One :class:`ExperimentRunner` serves all tables and figures: each
(benchmark, input, sorted?) triple is executed once — four GPU variants
(autoropes lockstep & non-lockstep, recursive masked & unmasked, all on
the same simulated device) plus the CPU thread sweep priced from the
non-lockstep run's per-point visit streams — and the
:class:`ExperimentResult` is cached for reuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.apps.barneshut import build_barneshut_app
from repro.apps.base import TraversalApp
from repro.apps.knn import build_knn_app
from repro.apps.nn import build_nn_app
from repro.apps.pointcorr import build_pointcorr_app
from repro.apps.vptree_nn import build_vptree_app
from repro.core.pipeline import CompiledTraversal
from repro.core.plancache import PlanCache
from repro.cpusim.threads import CPUConfig, OPTERON_6176, cpu_time_ms
from repro.gpusim.device import DeviceConfig, TESLA_C2070
from repro.gpusim.executors import (
    AutoropesExecutor,
    LockstepExecutor,
    RecursiveExecutor,
    TraversalLaunch,
)
from repro.gpusim.executors.common import LaunchResult
from repro.gpusim.stack import (
    SHARED_STACK_BUDGET_BYTES,
    RopeStackLayout,
    lockstep_stack_layout,
)
from repro.harness.config import CPU_THREAD_SWEEP, ExperimentScale, scale_from_env
from repro.points.datasets import dataset_by_name, plummer_bodies, random_bodies
from repro.points.sorting import morton_order, shuffled_order


@dataclass
class VariantResult:
    """One GPU variant's outcome."""

    variant: str
    result: LaunchResult

    @property
    def time_ms(self) -> float:
        return self.result.time_ms

    @property
    def avg_nodes(self) -> float:
        return self.result.avg_nodes_per_point


@dataclass
class ExperimentResult:
    """Everything measured for one (benchmark, input, sorted?) triple."""

    bench: str
    input_name: str
    sorted_points: bool
    lockstep: Optional[VariantResult]
    nonlockstep: VariantResult
    recursive_lockstep: VariantResult
    recursive_nonlockstep: VariantResult
    cpu_ms: Dict[int, float]
    work_expansion_mean: float
    work_expansion_std: float

    def variant(self, lockstep: bool) -> Optional[VariantResult]:
        return self.lockstep if lockstep else self.nonlockstep

    def recursive_variant(self, lockstep: bool) -> VariantResult:
        return self.recursive_lockstep if lockstep else self.recursive_nonlockstep

    def speedup_vs_cpu(self, lockstep: bool, threads: int) -> float:
        v = self.variant(lockstep)
        if v is None:
            return float("nan")
        return self.cpu_ms[threads] / v.time_ms

    def improvement_vs_recursive(self, lockstep: bool) -> float:
        """Percent improvement of our variant over the matching
        recursive baseline (Table 1's last column)."""
        v = self.variant(lockstep)
        if v is None:
            return float("nan")
        rec = self.recursive_variant(lockstep)
        return (rec.time_ms / v.time_ms - 1.0) * 100.0

    @property
    def best_time_ms(self) -> float:
        times = [self.nonlockstep.time_ms]
        if self.lockstep is not None:
            times.append(self.lockstep.time_ms)
        return min(times)


class ExperimentRunner:
    """Builds and runs experiments, caching by (bench, input, sorted)."""

    def __init__(
        self,
        scale: Optional[ExperimentScale] = None,
        device: DeviceConfig = TESLA_C2070,
        cpu: CPUConfig = OPTERON_6176,
        seed: int = 0,
    ) -> None:
        self.scale = scale or scale_from_env()
        self.device = device
        self.cpu = cpu
        self.seed = seed
        self.plans = PlanCache()
        self._cache: Dict[Tuple[str, str, bool], ExperimentResult] = {}
        self._apps: Dict[Tuple[str, str, bool], Tuple[TraversalApp, CompiledTraversal]] = {}

    # -- construction ------------------------------------------------------

    def app_for(
        self, bench: str, input_name: str, sorted_points: bool
    ) -> Tuple[TraversalApp, CompiledTraversal]:
        key = (bench, input_name, sorted_points)
        if key in self._apps:
            return self._apps[key]
        s = self.scale
        if bench == "bh":
            if input_name == "plummer":
                bodies = plummer_bodies(s.n_bodies, seed=42 + self.seed)
            elif input_name == "random":
                bodies = random_bodies(s.n_bodies, seed=43 + self.seed)
            else:
                raise KeyError(f"BH has no input {input_name!r}")
            order = (
                morton_order(bodies.pos)
                if sorted_points
                else shuffled_order(bodies.n, seed=99 + self.seed)
            )
            app = build_barneshut_app(
                bodies, order, theta=s.theta, leaf_size=s.bh_leaf_size
            )
        else:
            ds = dataset_by_name(input_name, s.n_points, seed=self.seed)
            order = (
                morton_order(ds.points)
                if sorted_points
                else shuffled_order(ds.n, seed=99 + self.seed)
            )
            if bench == "pc":
                app = build_pointcorr_app(
                    ds.points, order, radius=s.pc_radius(input_name), leaf_size=s.leaf_size
                )
            elif bench == "knn":
                app = build_knn_app(ds.points, order, k=s.knn_k, leaf_size=s.leaf_size)
            elif bench == "nn":
                app = build_nn_app(ds.points, order)
            elif bench == "vp":
                app = build_vptree_app(ds.points, order, leaf_size=s.leaf_size)
            else:
                raise KeyError(f"unknown benchmark {bench!r}")
        compiled = self.plans.get_or_compile(key, app.spec)
        self._apps[key] = (app, compiled)
        return app, compiled

    # -- launching ---------------------------------------------------------

    def _lockstep_layout(self, app: TraversalApp, compiled: CompiledTraversal):
        return lockstep_stack_layout(
            app.tree, app.spec, budget_bytes=SHARED_STACK_BUDGET_BYTES
        )

    def _launch(
        self,
        app: TraversalApp,
        kernel,
        layout: RopeStackLayout,
        record_visits: bool = False,
    ) -> TraversalLaunch:
        return TraversalLaunch(
            kernel=kernel,
            tree=app.tree,
            ctx=app.make_ctx(),
            n_points=app.n_points,
            device=self.device,
            stack_layout=layout,
            record_visits=record_visits,
        )

    def run(self, bench: str, input_name: str, sorted_points: bool) -> ExperimentResult:
        key = (bench, input_name, sorted_points)
        if key in self._cache:
            return self._cache[key]
        app, compiled = self.app_for(bench, input_name, sorted_points)

        # Non-lockstep autoropes (records visits: the CPU model input).
        launch_n = self._launch(
            app,
            compiled.autoropes,
            RopeStackLayout.INTERLEAVED_GLOBAL,
            record_visits=True,
        )
        res_n = AutoropesExecutor(launch_n).run()
        nonlockstep = VariantResult("nonlockstep", res_n)

        # Lockstep autoropes (shared-memory stack when the tree allows).
        lockstep: Optional[VariantResult] = None
        wexp_mean = wexp_std = float("nan")
        if compiled.lockstep is not None:
            launch_l = self._launch(
                app, compiled.lockstep, self._lockstep_layout(app, compiled)
            )
            res_l = LockstepExecutor(launch_l).run()
            lockstep = VariantResult("lockstep", res_l)
            wexp = res_l.work_expansion_per_warp()
            wexp_mean, wexp_std = float(wexp.mean()), float(wexp.std())

        # Naive recursive baselines (masked / unmasked).
        rec_l_kernel = compiled.lockstep if compiled.lockstep is not None else compiled.autoropes
        res_rec_l = RecursiveExecutor(
            self._launch(app, rec_l_kernel, RopeStackLayout.INTERLEAVED_GLOBAL),
            masking=True,
        ).run()
        res_rec_n = RecursiveExecutor(
            self._launch(app, compiled.autoropes, RopeStackLayout.INTERLEAVED_GLOBAL),
            masking=False,
        ).run()

        # CPU thread sweep from the recorded per-point visit streams.
        sequences = res_n.per_point_sequences()
        cpu_ms = {
            t: cpu_time_ms(
                sequences, t, self.cpu, visit_cost_scale=app.visit_cost_scale
            ).time_ms
            for t in CPU_THREAD_SWEEP
        }

        result = ExperimentResult(
            bench=bench,
            input_name=input_name,
            sorted_points=sorted_points,
            lockstep=lockstep,
            nonlockstep=nonlockstep,
            recursive_lockstep=VariantResult("recursive_lockstep", res_rec_l),
            recursive_nonlockstep=VariantResult("recursive_nonlockstep", res_rec_n),
            cpu_ms=cpu_ms,
            work_expansion_mean=wexp_mean,
            work_expansion_std=wexp_std,
        )
        self._cache[key] = result
        return result
