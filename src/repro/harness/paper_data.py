"""The paper's published results (Tables 1 and 2), transcribed.

Used by the report generator to render side-by-side paper-vs-measured
comparisons and to compute *shape agreement* metrics — we reproduce on
a simulator at reduced scale, so the meaningful checks are directional:
which variant wins, whether an improvement is positive, how work
expansion moves between sorted and unsorted inputs.

Transcription notes: values are as printed in the paper. Two "Avg. #
Nodes" entries of the PC/Geocity rows (39723004 and 378105376) appear
garbled in the source text (inconsistent with every other row's
magnitude) and are stored as printed but excluded from comparisons, as
is PC/Geocity's Table 2 row (its sorted mean, 101.08, exceeds its
unsorted mean, 1.46 — unique in the table and likely a typo).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class PaperRow:
    """One (sorted or unsorted) half of a paper Table 1 row."""

    time_ms: float
    avg_nodes: float
    speedup_vs1: float
    speedup_vs32: float
    improv_vs_recurse_pct: float


@dataclass(frozen=True)
class PaperTable1Entry:
    sorted: PaperRow
    unsorted: PaperRow
    suspect: bool = False  # transcription judged unreliable


def _row(t, n, v1, v32, imp):
    return PaperRow(t, n, v1, v32, imp)


#: (bench, input, "L"/"N") -> the paper's Table 1 entry.
PAPER_TABLE1: Dict[Tuple[str, str, str], PaperTable1Entry] = {
    ("bh", "plummer", "L"): PaperTable1Entry(
        _row(669.07, 3345, 150.07, 7.18, 1409),
        _row(4580.48, 22107, 32.55, 1.85, 1364),
    ),
    ("bh", "plummer", "N"): PaperTable1Entry(
        _row(8206.30, 2551, 12.24, 0.59, -26),
        _row(13938.18, 2551, 10.70, 0.61, 210),
    ),
    ("bh", "random", "L"): PaperTable1Entry(
        _row(213.71, 1068, 211.16, 12.77, 1400),
        _row(2467.92, 11909, 34.85, 2.75, 1348),
    ),
    ("bh", "random", "N"): PaperTable1Entry(
        _row(2391.84, 671, 18.87, 1.14, -19),
        _row(4517.50, 671, 19.04, 1.50, 416),
    ),
    ("pc", "covtype", "L"): PaperTable1Entry(
        _row(5738.00, 76160, 123.08, 15.48, 199),
        _row(18533.40, 257771, 45.31, 4.60, 202),
    ),
    ("pc", "covtype", "N"): PaperTable1Entry(
        _row(48582.40, 28057, 14.54, 1.83, -2),
        _row(37871.60, 28057, 22.17, 2.25, 345),
    ),
    ("pc", "mnist", "L"): PaperTable1Entry(
        _row(2070.60, 26188, 48.93, 4.68, 173),
        _row(7204.40, 97653, 24.24, 1.94, 188),
    ),
    ("pc", "mnist", "N"): PaperTable1Entry(
        _row(9707.00, 6138, 10.44, 1.00, 71),
        _row(8689.40, 6138, 20.10, 1.61, 618),
    ),
    ("pc", "random", "L"): PaperTable1Entry(
        _row(3125.40, 37618, 52.20, 6.04, 186),
        _row(11586.60, 156353, 23.00, 2.52, 202),
    ),
    ("pc", "random", "N"): PaperTable1Entry(
        _row(17017.40, 10161, 9.59, 1.11, 42),
        _row(16978.00, 10161, 15.70, 1.72, 504),
    ),
    ("pc", "geocity", "L"): PaperTable1Entry(
        _row(1306.80, 39723004, 175.28, 38.71, 285),
        _row(6286.00, 378105376, 41.90, 2.41, 344),
        suspect=True,  # avg-node magnitudes garbled in the source text
    ),
    ("pc", "geocity", "N"): PaperTable1Entry(
        _row(4787.60, 20705, 47.84, 10.57, 40),
        _row(16451.60, 20705, 16.01, 0.92, 221),
    ),
    ("knn", "covtype", "L"): PaperTable1Entry(
        _row(2907.00, 25277, 4.72, 0.28, 332),
        _row(16049.00, 197160, 1.57, 0.12, 57),
    ),
    ("knn", "covtype", "N"): PaperTable1Entry(
        _row(1816.40, 1982, 7.56, 0.45, 180),
        _row(2408.50, 1982, 10.48, 0.77, 269),
    ),
    ("knn", "mnist", "L"): PaperTable1Entry(
        _row(6396.00, 60172, 4.54, 0.26, 181),
        _row(16153.00, 199840, 3.28, 0.24, 64),
    ),
    ("knn", "mnist", "N"): PaperTable1Entry(
        _row(3827.30, 4150, 7.59, 0.44, 161),
        _row(5359.30, 4150, 9.89, 0.74, 234),
    ),
    ("knn", "random", "L"): PaperTable1Entry(
        _row(2008.00, 16695, 9.63, 0.43, 599),
        _row(16234.00, 200000, 2.30, 0.17, 59),
    ),
    ("knn", "random", "N"): PaperTable1Entry(
        _row(2448.00, 2937, 7.90, 0.35, 84),
        _row(3692.90, 2937, 10.11, 0.73, 244),
    ),
    ("knn", "geocity", "L"): PaperTable1Entry(
        _row(114.00, 415, 5.20, 0.27, 273),
        _row(10689.20, 185803, 0.07, 0.00, 78),
    ),
    ("knn", "geocity", "N"): PaperTable1Entry(
        _row(4132.90, 55, 0.14, 0.01, 1),
        _row(3209.20, 55, 0.23, 0.01, 7),
    ),
    ("nn", "covtype", "L"): PaperTable1Entry(
        _row(12350.20, 53948, 27.09, 3.17, 124),
        _row(58470.80, 259132, 7.48, 0.70, 131),
    ),
    ("nn", "covtype", "N"): PaperTable1Entry(
        _row(38116.10, 16669, 8.78, 1.03, 348),
        _row(34814.90, 16669, 12.57, 1.18, 925),
    ),
    ("nn", "mnist", "L"): PaperTable1Entry(
        _row(14673.60, 65812, 25.64, 3.19, 119),
        _row(60540.20, 267645, 8.26, 0.87, 124),
    ),
    ("nn", "mnist", "N"): PaperTable1Entry(
        _row(43886.00, 19020, 8.57, 1.07, 427),
        _row(46764.00, 19020, 10.70, 1.13, 769),
    ),
    ("nn", "random", "L"): PaperTable1Entry(
        _row(1869.70, 8808, 15.32, 0.75, 110),
        _row(15666.10, 73011, 2.53, 0.19, 107),
    ),
    ("nn", "random", "N"): PaperTable1Entry(
        _row(2559.00, 1838, 11.19, 0.55, 427),
        _row(3846.00, 1838, 10.30, 0.77, 866),
    ),
    ("nn", "geocity", "L"): PaperTable1Entry(
        _row(2270.40, 21839, 129.87, 30.83, 298),
        _row(11506.30, 157037, 29.04, 1.44, 511),
    ),
    ("nn", "geocity", "N"): PaperTable1Entry(
        _row(11730.70, 19545, 25.14, 5.97, 15),
        _row(26445.50, 19545, 12.63, 0.63, 768),
    ),
    ("vp", "covtype", "L"): PaperTable1Entry(
        _row(1787.00, 11814, 6.13, 0.48, 18),
        _row(10235.40, 109719, 2.25, 0.14, 65),
    ),
    ("vp", "covtype", "N"): PaperTable1Entry(
        _row(1623.40, 686, 6.75, 0.52, 295),
        _row(1704.60, 686, 13.50, 0.81, 365),
    ),
    ("vp", "mnist", "L"): PaperTable1Entry(
        _row(4034.20, 36347, 11.46, 0.87, 43),
        _row(13835.00, 150992, 6.61, 0.39, 66),
    ),
    ("vp", "mnist", "N"): PaperTable1Entry(
        _row(5114.00, 2763, 9.04, 0.68, 412),
        _row(5599.80, 2763, 16.33, 0.96, 451),
    ),
    ("vp", "random", "L"): PaperTable1Entry(
        _row(4541.00, 41054, 11.13, 1.00, 45),
        _row(13130.60, 143189, 7.14, 0.43, 67),
    ),
    ("vp", "random", "N"): PaperTable1Entry(
        _row(5074.60, 2659, 9.96, 0.90, 401),
        _row(5355.00, 2659, 17.50, 1.05, 453),
    ),
    ("vp", "geocity", "L"): PaperTable1Entry(
        _row(711.50, 344, 1.20, 0.45, -51),
        _row(802.00, 21921, 1.90, 0.10, 351),
    ),
    ("vp", "geocity", "N"): PaperTable1Entry(
        _row(731.60, 94, 1.17, 0.44, -10),
        _row(1316.50, 94, 1.16, 0.06, -46),
    ),
}


@dataclass(frozen=True)
class PaperTable2Entry:
    sorted_mean: float
    sorted_std: float
    unsorted_mean: float
    unsorted_std: float
    suspect: bool = False


#: (bench, input) -> the paper's Table 2 work-expansion entry.
PAPER_TABLE2: Dict[Tuple[str, str], PaperTable2Entry] = {
    ("bh", "plummer"): PaperTable2Entry(1.33, 1.35, 8.97, 9.40),
    ("bh", "random"): PaperTable2Entry(1.51, 1.53, 17.35, 17.78),
    ("pc", "covtype"): PaperTable2Entry(4.16, 6.25, 20.71, 40.11),
    ("pc", "mnist"): PaperTable2Entry(6.20, 6.20, 27.49, 8.24),
    ("pc", "random"): PaperTable2Entry(4.35, 4.88, 20.00, 23.21),
    ("pc", "geocity"): PaperTable2Entry(101.08, 207.30, 1.46, 1.47, suspect=True),
    ("knn", "covtype"): PaperTable2Entry(19.59, 30.21, 187.54, 285.08),
    ("knn", "mnist"): PaperTable2Entry(17.03, 19.58, 60.86, 70.12),
    ("knn", "random"): PaperTable2Entry(6.87, 8.62, 89.29, 102.89),
    ("knn", "geocity"): PaperTable2Entry(4.03, 8.99, 1479.11, 1591.59),
    ("nn", "covtype"): PaperTable2Entry(5.20, 8.37, 35.85, 67.86),
    ("nn", "mnist"): PaperTable2Entry(4.46, 5.66, 20.68, 27.99),
    ("nn", "random"): PaperTable2Entry(5.64, 6.29, 50.60, 58.31),
    ("nn", "geocity"): PaperTable2Entry(4.62, 31.69, 618.00, 885.71),
    ("vp", "covtype"): PaperTable2Entry(4.70, 5.24, 39.34, 41.87),
    ("vp", "mnist"): PaperTable2Entry(5.58, 5.87, 22.05, 22.47),
    ("vp", "random"): PaperTable2Entry(6.62, 7.01, 20.73, 21.26),
    ("vp", "geocity"): PaperTable2Entry(3.68, 4.74, 57.76, 91.04),
}


def paper_entry(bench: str, input_name: str, ttype: str) -> Optional[PaperTable1Entry]:
    return PAPER_TABLE1.get((bench, input_name, ttype))


def paper_wexp(bench: str, input_name: str) -> Optional[PaperTable2Entry]:
    return PAPER_TABLE2.get((bench, input_name))
