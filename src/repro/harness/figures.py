"""Figures 10 & 11: CPU performance relative to GPU vs thread count.

Each subplot in the paper plots, for one benchmark and one traversal
type (lockstep / non-lockstep), the ratio ``T_gpu / T_cpu(threads)``
for every input as threads sweep 1..32 — values above 1 mean the CPU
has overtaken the GPU. Figure 10 uses sorted inputs, Figure 11
unsorted. We emit the same series as text (and as data rows the
benchmarks assert on); plotting is left to the reader's tooling since
the environment is headless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.harness.config import BENCHMARKS, CPU_THREAD_SWEEP
from repro.harness.runner import ExperimentRunner
from repro.harness.table1 import BENCH_TITLES


@dataclass(frozen=True)
class FigureSeries:
    """One curve: a benchmark/input/variant's CPU-vs-GPU ratio sweep."""

    bench: str
    input_name: str
    traversal_type: str  # "L" / "N"
    sorted_points: bool
    threads: Tuple[int, ...]
    cpu_over_gpu: Tuple[float, ...]  # T_gpu / T_cpu per thread count

    @property
    def crossover_threads(self) -> Optional[int]:
        """First thread count at which the CPU beats the GPU."""
        for t, v in zip(self.threads, self.cpu_over_gpu):
            if v >= 1.0:
                return t
        return None


def figure_series(
    runner: ExperimentRunner,
    sorted_points: bool,
    benches: Optional[Iterable[str]] = None,
) -> List[FigureSeries]:
    """All series of Figure 10 (sorted) or Figure 11 (unsorted)."""
    series: List[FigureSeries] = []
    for bench in benches or BENCHMARKS:
        for input_name in BENCHMARKS[bench]:
            res = runner.run(bench, input_name, sorted_points)
            for ttype, lockstep in (("L", True), ("N", False)):
                v = res.variant(lockstep)
                if v is None:
                    continue
                ratios = tuple(
                    v.time_ms / res.cpu_ms[t] for t in CPU_THREAD_SWEEP
                )
                series.append(
                    FigureSeries(
                        bench=bench,
                        input_name=input_name,
                        traversal_type=ttype,
                        sorted_points=sorted_points,
                        threads=CPU_THREAD_SWEEP,
                        cpu_over_gpu=ratios,
                    )
                )
    return series


def format_figures(series: List[FigureSeries], figure_name: str) -> str:
    """Text rendering of one figure's panels (10a-j / 11a-j)."""
    lines = [f"{figure_name}: CPU performance vs. GPU (ratio T_gpu/T_cpu)"]
    panels: Dict[Tuple[str, str], List[FigureSeries]] = {}
    for s in series:
        panels.setdefault((s.bench, s.traversal_type), []).append(s)
    for (bench, ttype), curves in panels.items():
        title = BENCH_TITLES.get(bench, bench)
        kind = "Lockstep" if ttype == "L" else "Non-Lockstep"
        lines.append(f"\n  [{title} {kind}]")
        head = "    " + f"{'input':<9}" + "".join(
            f"{t:>8}" for t in curves[0].threads
        )
        lines.append(head + "   crossover")
        for c in curves:
            xover = c.crossover_threads
            lines.append(
                "    "
                + f"{c.input_name:<9}"
                + "".join(f"{v:>8.3f}" for v in c.cpu_over_gpu)
                + f"   {('t=' + str(xover)) if xover else 'never'}"
            )
    return "\n".join(lines)
