"""Table 1: performance summary of transformed traversals.

For every benchmark/input pair and traversal type (L = lockstep, N =
non-lockstep), in sorted and unsorted variants: traversal time, average
nodes visited per point, speedup over the 1-thread and 32-thread CPU
baselines, and percentage improvement over the matching recursive GPU
baseline — the same columns as the paper's Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.harness.config import BENCHMARKS
from repro.harness.runner import ExperimentRunner

BENCH_TITLES = {
    "bh": "Barnes Hut",
    "pc": "Point Correlation",
    "knn": "k-Nearest Neighbor",
    "nn": "Nearest Neighbor",
    "vp": "Vantage Point",
}


@dataclass(frozen=True)
class Table1Row:
    bench: str
    input_name: str
    traversal_type: str  # "L" or "N"
    # sorted columns
    s_time_ms: float
    s_avg_nodes: float
    s_speedup_vs1: float
    s_speedup_vs32: float
    s_improv_vs_recurse_pct: float
    # unsorted columns
    u_time_ms: float
    u_avg_nodes: float
    u_speedup_vs1: float
    u_speedup_vs32: float
    u_improv_vs_recurse_pct: float


def table1_rows(
    runner: ExperimentRunner,
    benches: Optional[Iterable[str]] = None,
) -> List[Table1Row]:
    """Run (or fetch cached) experiments and produce all Table 1 rows."""
    rows: List[Table1Row] = []
    for bench in benches or BENCHMARKS:
        for input_name in BENCHMARKS[bench]:
            s = runner.run(bench, input_name, sorted_points=True)
            u = runner.run(bench, input_name, sorted_points=False)
            for ttype, lockstep in (("L", True), ("N", False)):
                vs, vu = s.variant(lockstep), u.variant(lockstep)
                if vs is None or vu is None:
                    continue
                rows.append(
                    Table1Row(
                        bench=bench,
                        input_name=input_name,
                        traversal_type=ttype,
                        s_time_ms=vs.time_ms,
                        s_avg_nodes=vs.avg_nodes,
                        s_speedup_vs1=s.speedup_vs_cpu(lockstep, 1),
                        s_speedup_vs32=s.speedup_vs_cpu(lockstep, 32),
                        s_improv_vs_recurse_pct=s.improvement_vs_recursive(lockstep),
                        u_time_ms=vu.time_ms,
                        u_avg_nodes=vu.avg_nodes,
                        u_speedup_vs1=u.speedup_vs_cpu(lockstep, 1),
                        u_speedup_vs32=u.speedup_vs_cpu(lockstep, 32),
                        u_improv_vs_recurse_pct=u.improvement_vs_recursive(lockstep),
                    )
                )
    return rows


def format_table1(rows: List[Table1Row]) -> str:
    """Render rows in the paper's layout."""
    header = (
        f"{'Benchmark':<20} {'Input':<9} {'T':<2} "
        f"{'Time(ms)':>10} {'AvgNodes':>9} {'vs1':>8} {'vs32':>7} {'vsRec':>8}   "
        f"{'Time(ms)':>10} {'AvgNodes':>10} {'vs1':>8} {'vs32':>7} {'vsRec':>8}"
    )
    bar = "-" * len(header)
    lines = [
        f"{'':<33}{'--- Sorted ---':^47}   {'--- Unsorted ---':^47}",
        header,
        bar,
    ]
    prev = None
    for r in rows:
        title = BENCH_TITLES.get(r.bench, r.bench)
        show = title if (r.bench, r.input_name) != prev else ""
        show_input = r.input_name if (r.bench, r.input_name) != prev else ""
        prev = (r.bench, r.input_name)
        lines.append(
            f"{show:<20} {show_input:<9} {r.traversal_type:<2} "
            f"{r.s_time_ms:>10.2f} {r.s_avg_nodes:>9.0f} {r.s_speedup_vs1:>8.2f} "
            f"{r.s_speedup_vs32:>7.2f} {r.s_improv_vs_recurse_pct:>7.0f}%   "
            f"{r.u_time_ms:>10.2f} {r.u_avg_nodes:>10.0f} {r.u_speedup_vs1:>8.2f} "
            f"{r.u_speedup_vs32:>7.2f} {r.u_improv_vs_recurse_pct:>7.0f}%"
        )
    return "\n".join(lines)
