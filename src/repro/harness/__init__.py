"""Experiment harness: regenerates every table and figure of Section 6.

* :mod:`repro.harness.config` — benchmark/input matrix and scales.
* :mod:`repro.harness.runner` — builds apps, compiles specs, runs all
  four GPU variants plus the CPU model, and caches results.
* :mod:`repro.harness.table1` — the Table 1 performance summary.
* :mod:`repro.harness.table2` — the Table 2 work-expansion summary.
* :mod:`repro.harness.figures` — the Figure 10/11 thread sweeps.
* :mod:`repro.harness.report` — EXPERIMENTS.md generation.

Run ``python -m repro.harness all`` to regenerate everything.
"""

from repro.harness.config import (
    BENCHMARKS,
    CPU_THREAD_SWEEP,
    ExperimentScale,
    scale_from_env,
)
from repro.harness.runner import ExperimentResult, ExperimentRunner, VariantResult
from repro.harness.table1 import table1_rows, format_table1
from repro.harness.table2 import table2_rows, format_table2
from repro.harness.figures import figure_series, format_figures

__all__ = [
    "BENCHMARKS",
    "CPU_THREAD_SWEEP",
    "ExperimentScale",
    "scale_from_env",
    "ExperimentResult",
    "ExperimentRunner",
    "VariantResult",
    "table1_rows",
    "format_table1",
    "table2_rows",
    "format_table2",
    "figure_series",
    "format_figures",
]
