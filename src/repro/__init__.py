"""repro: a reproduction of *General Transformations for GPU Execution
of Tree Traversals* (Goldfarb, Jo & Kulkarni, SC '13).

The package implements the paper's semantics-agnostic transformations —
**autoropes** (recursive traversals to iterative rope-stack traversals)
and **lockstep traversal** (warp-synchronous traversal with mask
bit-vectors and call-set majority voting) — over a small traversal IR,
and evaluates them on a deterministic SIMT GPU simulator against a
modeled multicore CPU baseline, reproducing the shape of the paper's
Table 1, Table 2 and Figures 10/11.

Layout
------
* :mod:`repro.core` — the transformations (the paper's contribution).
* :mod:`repro.gpusim` — the simulated GPU substrate and executors.
* :mod:`repro.cpusim` — the CPU baseline substrate.
* :mod:`repro.trees` — oct-tree / kd-tree / VP-tree builders + layout.
* :mod:`repro.points` — input generators and point sorting.
* :mod:`repro.apps` — the five benchmarks with brute-force oracles.
* :mod:`repro.harness` — experiment drivers for every table & figure.
"""

__version__ = "1.0.0"

from repro.core.pipeline import TransformPipeline, CompiledTraversal
from repro.core.ir import TraversalSpec, EvalContext

__all__ = [
    "__version__",
    "TransformPipeline",
    "CompiledTraversal",
    "TraversalSpec",
    "EvalContext",
]
