"""Per-step execution traces: how divergence and traffic evolve.

Section 4's whole argument is about what happens *per warp per step* —
threads drifting apart in the tree, masks thinning out, coalescing
degrading. A :class:`StepTrace` records, for every traversal-loop
iteration of a launch, how many warps were still running, how many
lanes did useful work, and how many memory transactions the step
generated, so the dynamics behind the aggregate numbers can be
inspected (and asserted on).

Enable with ``TraversalLaunch(..., trace=True)``; the executors append
one sample per step and :class:`~repro.gpusim.executors.common
.LaunchResult` carries the finished trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np


@dataclass
class StepTrace:
    """Per-step samples of one kernel launch."""

    active_warps: List[int] = field(default_factory=list)
    live_lanes: List[int] = field(default_factory=list)
    transactions: List[int] = field(default_factory=list)

    def record(self, active_warps: int, live_lanes: int, transactions: int) -> None:
        self.active_warps.append(int(active_warps))
        self.live_lanes.append(int(live_lanes))
        self.transactions.append(int(transactions))

    def __len__(self) -> int:
        return len(self.active_warps)

    def as_arrays(self) -> Dict[str, np.ndarray]:
        return {
            "active_warps": np.array(self.active_warps, dtype=np.int64),
            "live_lanes": np.array(self.live_lanes, dtype=np.int64),
            "transactions": np.array(self.transactions, dtype=np.int64),
        }

    def lane_utilization(self, warp_size: int) -> np.ndarray:
        """Fraction of lanes doing useful work among running warps."""
        w = np.array(self.active_warps, dtype=np.float64)
        l = np.array(self.live_lanes, dtype=np.float64)
        out = np.zeros_like(w)
        running = w > 0
        out[running] = l[running] / (w[running] * warp_size)
        return out

    def sample_events(self, max_events: int) -> List[Dict[str, int]]:
        """Decimate the trace to at most ``max_events`` samples.

        Used by the telemetry layer to attach per-step dynamics to a
        launch span without exploding long traces: samples are taken at
        evenly spaced steps, always including the first and last step,
        each as ``{"step", "active_warps", "live_lanes",
        "transactions"}``.  Returns ``[]`` for an empty trace or
        ``max_events <= 0``.
        """
        n = len(self.active_warps)
        if n == 0 or max_events <= 0:
            return []
        if n <= max_events:
            idx = range(n)
        else:
            idx = sorted(
                {round(i * (n - 1) / (max_events - 1)) for i in range(max_events)}
            )
        return [
            {
                "step": int(i),
                "active_warps": self.active_warps[i],
                "live_lanes": self.live_lanes[i],
                "transactions": self.transactions[i],
            }
            for i in idx
        ]

    def tail_fraction(self, threshold: float = 0.1) -> float:
        """Fraction of steps spent in the 'tail' where fewer than
        ``threshold`` of the peak warps remain active — the load-
        imbalance signature of clustered inputs (Section 6.2)."""
        if not self.active_warps:
            return 0.0
        w = np.array(self.active_warps, dtype=np.float64)
        peak = w.max()
        if peak == 0:
            return 0.0
        return float((w < threshold * peak).mean())
