"""Throughput cost model: counted events -> kernel time.

The simulator does not execute real PTX; instead every executor counts
the architectural events the paper attributes performance to (warp
instruction issue, coalesced global transactions and their L2 hits,
shared-memory traffic, recursive-call overhead). This module converts a
:class:`~repro.gpusim.stats.KernelStats` into model time with a
roofline-style formula:

``cycles = max(compute, memory) * overlap + (compute + memory) * (1 - overlap)``

where *compute* is per-SM instruction issue, *memory* is device-wide
DRAM/L2 service occupancy, and *overlap* grows with occupancy — at high
occupancy warps hide each other's memory latency (Section 2.2), at low
occupancy (e.g. shared-memory stacks that are too deep, Section 5.2)
compute and memory serialize.

Only the relative magnitudes of the cost knobs in
:class:`~repro.gpusim.device.DeviceConfig` matter; the paper's
evaluation is about *ratios* between variants on the same device.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.device import DeviceConfig
from repro.gpusim.stats import KernelStats


@dataclass(frozen=True)
class KernelTiming:
    """Breakdown of one kernel launch's modeled time."""

    compute_cycles: float
    memory_cycles: float
    overlap: float
    total_cycles: float
    time_ms: float

    @property
    def bound(self) -> str:
        """Which resource dominates ('compute' or 'memory')."""
        return "compute" if self.compute_cycles >= self.memory_cycles else "memory"


class CostModel:
    """Stateless translator from event counts to model time."""

    def __init__(self, device: DeviceConfig) -> None:
        self.device = device

    def compute_cycles(self, stats: KernelStats) -> float:
        """Per-SM instruction-issue cycles (the compute roof)."""
        d = self.device
        issue = (
            stats.warp_instructions * d.issue_cycles
            + stats.recursive_calls * d.call_overhead_cycles
            + stats.shared_accesses * d.shared_access_cycles
        )
        return issue / d.num_sms

    def memory_cycles(self, stats: KernelStats) -> float:
        """Device-wide memory-system occupancy cycles (the memory roof)."""
        d = self.device
        misses = stats.global_transactions - stats.l2_hit_transactions
        return (
            misses * d.dram_cycles_per_transaction
            + stats.l2_hit_transactions
            * d.dram_cycles_per_transaction
            * d.l2_hit_cost_fraction
        )

    def imbalance_factor(self, warp_work: "np.ndarray") -> float:
        """SM load imbalance from per-warp traversal lengths.

        Warps are assigned to SMs round-robin at launch; the kernel ends
        when the most loaded SM drains. Highly variable warp lengths —
        the paper's clustered Geocity input — leave most SMs idle while
        a few long warps finish ("leading to load imbalance and hence
        poor performance", Section 6.2).
        """
        work = np.asarray(warp_work, dtype=np.float64)
        if work.size == 0 or work.sum() == 0:
            return 1.0
        sms = self.device.num_sms
        per_sm = np.zeros(sms)
        np.add.at(per_sm, np.arange(work.size) % sms, work)
        mean = per_sm.mean()
        if mean == 0:
            return 1.0
        return float(per_sm.max() / mean)

    def timing(
        self,
        stats: KernelStats,
        occupancy: float = 1.0,
        imbalance: float = 1.0,
    ) -> KernelTiming:
        """Model the launch time for counted events at given occupancy."""
        if not 0.0 < occupancy <= 1.0:
            raise ValueError(f"occupancy must be in (0, 1], got {occupancy}")
        if imbalance < 1.0:
            raise ValueError("imbalance factor must be >= 1")
        d = self.device
        c = self.compute_cycles(stats) * imbalance
        m = self.memory_cycles(stats)
        overlap = min(1.0, occupancy / d.full_overlap_occupancy)
        total = max(c, m) * overlap + (c + m) * (1.0 - overlap)
        total += d.launch_overhead_cycles
        time_ms = total / (d.clock_ghz * 1e6)
        return KernelTiming(
            compute_cycles=c,
            memory_cycles=m,
            overlap=overlap,
            total_cycles=total,
            time_ms=time_ms,
        )

    def launch_time(
        self,
        stats: KernelStats,
        occupancy: float = 1.0,
        imbalance: float = 1.0,
    ) -> float:
        """Modeled launch time in milliseconds (the :meth:`timing`
        scalar, for callers that don't need the breakdown)."""
        return self.timing(stats, occupancy=occupancy, imbalance=imbalance).time_ms
