"""Device configuration for the simulated GPU.

The defaults model the nVidia Tesla C2070 used in the paper's evaluation
(Section 6.1.1): 14 streaming multiprocessors (SMs) of 32 streaming
processors each, 32-thread warps, 6 GB of global memory behind a 768 KB
L2 with 128-byte lines, and 64 KB of configurable shared memory per SM
(48 KB usable as software-managed cache in the common configuration).

Only *ratios* between the cost parameters matter for reproducing the
paper's comparisons; absolute times are reported in model-milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DeviceConfig:
    """Architectural and cost parameters of the simulated device.

    Attributes mirror the quantities the paper's performance model
    depends on: warp width (SIMT granularity), the 128-byte coalescing
    segment (Section 2.2), shared-memory capacity (stack placement,
    Section 5.2) and the relative costs of instruction issue versus
    DRAM transactions.
    """

    name: str = "tesla-c2070"
    num_sms: int = 14
    sps_per_sm: int = 32
    warp_size: int = 32
    max_warps_per_sm: int = 48
    max_threads_per_block: int = 1024

    #: Width of a coalescing segment; accesses from a warp that fall in
    #: the same segment merge into one global-memory transaction.
    segment_bytes: int = 128

    #: Shared memory available per SM for software-managed stacks.
    shared_mem_per_sm: int = 48 * 1024

    l2_bytes: int = 768 * 1024
    l2_line_bytes: int = 128

    clock_ghz: float = 1.15

    # --- cost model knobs (relative costs, see repro.gpusim.cost) ---

    #: Cycles for one warp-instruction issue.
    issue_cycles: float = 1.0
    #: Device cycles of DRAM occupancy per 128-byte transaction
    #: (aggregate bandwidth ~144 GB/s at 1.15 GHz -> ~1 cycle/segment,
    #: inflated slightly for row activation overheads).
    dram_cycles_per_transaction: float = 1.6
    #: L2 hits are serviced at a fraction of the DRAM cost.
    l2_hit_cost_fraction: float = 0.16
    #: Shared-memory access cost per warp access (conflict-free).
    shared_access_cycles: float = 1.0
    #: Extra issue cycles charged per recursive call/return pair in the
    #: naive recursive kernels (frame bookkeeping, Section 6.1).
    call_overhead_cycles: float = 60.0
    #: Bytes of local-memory (global) stack frame saved/restored per
    #: recursive call in the naive implementation (most locals stay in
    #: registers; this is the spilled residue).
    frame_bytes: int = 32
    #: Extra per-visit issue cycles charged to *unmasked* recursive
    #: kernels: hardware post-dominator reconvergence handles the long
    #: divergent call chains less efficiently than explicit predication
    #: (Section 6.1's footnote on why masked recursive variants run
    #: faster).
    recursive_divergence_cycles: float = 20.0
    #: Fixed kernel launch overhead in cycles.
    launch_overhead_cycles: float = 6000.0
    #: Occupancy (resident warps / max warps) at which memory latency is
    #: considered fully hidden; below it, compute/memory overlap degrades.
    full_overlap_occupancy: float = 0.5

    def validate(self) -> "DeviceConfig":
        """Return ``self`` after sanity-checking parameters.

        Raises :class:`ValueError` for non-physical configurations so
        misconfigured experiments fail loudly rather than producing
        silently meaningless timings.
        """
        if self.warp_size < 1:
            raise ValueError(f"warp_size must be >= 1, got {self.warp_size}")
        if self.num_sms < 1:
            raise ValueError(f"num_sms must be >= 1, got {self.num_sms}")
        if self.segment_bytes < 1 or self.segment_bytes & (self.segment_bytes - 1):
            raise ValueError(
                f"segment_bytes must be a positive power of two, got {self.segment_bytes}"
            )
        if self.l2_line_bytes % self.segment_bytes not in (0,) and (
            self.segment_bytes % self.l2_line_bytes != 0
        ):
            raise ValueError("l2_line_bytes and segment_bytes must nest")
        if not 0.0 < self.full_overlap_occupancy <= 1.0:
            raise ValueError("full_overlap_occupancy must be in (0, 1]")
        return self

    @property
    def max_resident_threads(self) -> int:
        """Threads the whole device can keep resident simultaneously."""
        return self.num_sms * self.max_warps_per_sm * self.warp_size

    def with_warp_size(self, warp_size: int) -> "DeviceConfig":
        """A copy with a different warp width (tests use tiny warps)."""
        return replace(self, warp_size=warp_size).validate()

    def derate(self, factor: float) -> "DeviceConfig":
        """A clock-derated copy: modeled times inflate by ``factor``.

        The chaos layer's latency spikes run a launch on a derated
        device (thermal throttling / a contended SM partition) rather
        than patching the resulting time, so the inflation flows
        through the cost model like any real slowdown would.
        """
        if factor < 1.0:
            raise ValueError(f"derate factor must be >= 1, got {factor}")
        if factor == 1.0:
            return self
        return replace(
            self,
            name=f"{self.name}-derated-{factor:g}x",
            clock_ghz=self.clock_ghz / factor,
        ).validate()


#: The paper's evaluation GPU (Section 6.1.1).
TESLA_C2070 = DeviceConfig().validate()


def small_test_device(warp_size: int = 4, num_sms: int = 2) -> DeviceConfig:
    """A tiny device for unit tests: small warps keep fixtures readable."""
    return replace(
        TESLA_C2070,
        name=f"test-device-w{warp_size}",
        warp_size=warp_size,
        num_sms=num_sms,
        max_warps_per_sm=8,
        shared_mem_per_sm=4 * 1024,
        l2_bytes=16 * 1024,
        launch_overhead_cycles=0.0,
    ).validate()
