"""Warp-level primitives: masks, votes, and divergence accounting.

The lockstep transformation (Section 4.2) relies on a warp vote — the
paper uses nVidia's ``ballot`` instruction to combine per-thread mask
bits — and on pushing mask bit-vectors onto the rope stack. This module
provides those primitives for the simulator, operating on *batches* of
warps at once (arrays shaped ``(n_warps, warp_size)``), plus the
bookkeeping that attributes instruction-issue waste to divergence.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.gpusim.stats import KernelStats


#: per-warp-size lane weights / lane indices, built once (pack/unpack
#: run on every traversal step — the allocations added up).
_PACK_WEIGHTS: dict = {}
_LANE_INDICES: dict = {}

#: ``packbits(bitorder="little")`` + a byte-level uint64 view computes
#: the same mask words as the multiply-sum but ~5x faster; the view
#: trick assumes the machine is little-endian (everything we run on).
_LITTLE_ENDIAN = sys.byteorder == "little"


def _pack_weights(warp_size: int) -> np.ndarray:
    w = _PACK_WEIGHTS.get(warp_size)
    if w is None:
        w = np.uint64(1) << np.arange(warp_size, dtype=np.uint64)
        _PACK_WEIGHTS[warp_size] = w
    return w


def _lane_indices(warp_size: int) -> np.ndarray:
    l = _LANE_INDICES.get(warp_size)
    if l is None:
        l = np.arange(warp_size, dtype=np.uint64)
        _LANE_INDICES[warp_size] = l
    return l


def pack_mask(bits: np.ndarray) -> np.ndarray:
    """Pack bool lane masks ``(n_warps, warp_size)`` into uint64 words.

    This is the representation pushed onto the rope stack by the
    lockstep transformation (one machine word per entry, Fig. 8).
    """
    n_warps, warp_size = bits.shape
    if warp_size > 64:
        raise ValueError("warp_size > 64 cannot pack into a uint64 mask")
    if _LITTLE_ENDIAN:
        packed = np.packbits(bits, axis=1, bitorder="little")
        nbytes = packed.shape[1]
        if nbytes == 8:
            return packed.view(np.uint64)[:, 0]
        out = np.zeros((n_warps, 8), dtype=np.uint8)
        out[:, :nbytes] = packed
        return out.view(np.uint64)[:, 0]
    weights = _pack_weights(warp_size)
    return (bits.astype(np.uint64) * weights).sum(axis=1, dtype=np.uint64)


def unpack_mask(words: np.ndarray, warp_size: int) -> np.ndarray:
    """Inverse of :func:`pack_mask`."""
    if warp_size > 64:
        raise ValueError("warp_size > 64 cannot unpack from a uint64 mask")
    if _LITTLE_ENDIAN:
        u8 = np.ascontiguousarray(words).view(np.uint8).reshape(-1, 8)
        nbytes = (warp_size + 7) // 8
        lane_bits = np.unpackbits(u8[:, :nbytes], axis=1, bitorder="little")
        return lane_bits[:, :warp_size].astype(bool)
    lanes = _lane_indices(warp_size)
    return ((words[:, None] >> lanes) & np.uint64(1)).astype(bool)


def warp_any(bits: np.ndarray) -> np.ndarray:
    """Vote: does any lane of each warp have its bit set? (``ballot != 0``)"""
    return bits.any(axis=1)


def warp_all(bits: np.ndarray) -> np.ndarray:
    """Vote: do all lanes of each warp have their bit set?"""
    return bits.all(axis=1)


def majority_vote(choice: np.ndarray, active: np.ndarray) -> np.ndarray:
    """Per-warp majority over a binary per-lane ``choice``.

    Used by the dynamic single-call-set optimization (Section 4.3): each
    active lane votes for a call set; the warp executes the most popular
    one. Ties resolve to call set 0 (the textually-first call set), and
    warps with no active lanes also report 0.

    Parameters
    ----------
    choice:
        int/bool array ``(n_warps, warp_size)`` with values in {0, 1}.
    active:
        bool array of the same shape; inactive lanes do not vote.
    """
    votes_for_1 = (choice.astype(bool) & active).sum(axis=1)
    voters = active.sum(axis=1)
    return votes_for_1 * 2 > voters


class WarpIssueAccountant:
    """Attributes instruction issue (and divergence waste) to warps.

    Every simulated operation executed under a lane-mask calls
    :meth:`issue`. A warp that has *any* active lane must issue the
    instruction (SIMT semantics, Section 2.2); lanes that are masked
    off represent wasted execution slots, which is exactly the
    divergence penalty the paper's naive-recursive baseline suffers
    from and that autoropes' loop re-convergence avoids.

    Ragged launches (``n_points`` not a multiple of the warp size) pad
    the trailing warp with lanes that never carry a point.  Those
    padding lanes are idle by construction, not by divergence, so
    ``valid_lanes`` — the per-warp count of populated lanes — caps the
    denominator of the waste accounting: a partial warp whose real
    lanes all agree issues zero divergent instructions.
    """

    def __init__(
        self,
        warp_size: int,
        stats: KernelStats,
        valid_lanes: "np.ndarray | None" = None,
    ) -> None:
        self.warp_size = warp_size
        self.stats = stats
        self.valid_lanes = (
            None if valid_lanes is None else np.asarray(valid_lanes, dtype=np.int64)
        )

    def issue(
        self,
        lane_active: np.ndarray,
        n_inst: float = 1.0,
        warp_ids: "np.ndarray | None" = None,
    ) -> None:
        """Charge ``n_inst`` instructions to each warp with active lanes.

        ``lane_active`` is ``(n_warps, lanes)`` where ``lanes`` is the
        true warp width for per-thread execution or 1 for warp-uniform
        (lockstep control) instructions.  Under frontier compaction the
        rows are a gathered subset of the launch's warps; ``warp_ids``
        then maps each row back to its original warp so the
        ragged-trailing-warp ``valid_lanes`` cap stays attributed
        correctly.
        """
        if lane_active.ndim != 2:
            raise ValueError("lane_active must be 2-D (n_warps, lanes)")
        if lane_active.shape[1] == 1:
            # Warp-uniform (control) instructions: no divergence to
            # attribute, just count the issuing warps.
            n_issuing = int(np.count_nonzero(lane_active))
            if n_issuing:
                self.stats.warp_instructions += n_inst * n_issuing
            return
        active_count = lane_active.sum(axis=1)
        issuing = active_count > 0
        n_issuing = int(issuing.sum())
        if n_issuing == 0:
            return
        self.stats.warp_instructions += n_inst * n_issuing
        lanes = lane_active.shape[1]
        if lanes > 1:
            if self.valid_lanes is not None and lanes == self.warp_size:
                valid = (
                    self.valid_lanes
                    if warp_ids is None
                    else self.valid_lanes[warp_ids]
                )
            else:
                valid = np.full(lane_active.shape[0], lanes, dtype=np.int64)
            partial = issuing & (active_count < valid)
            n_partial = int(partial.sum())
            self.stats.divergent_instructions += n_inst * n_partial
            wasted = np.maximum(valid - active_count, 0)[issuing].sum() / lanes
            self.stats.wasted_lane_fraction += n_inst * float(wasted)
