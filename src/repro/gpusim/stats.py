"""Architectural event counters for a simulated kernel launch.

Every executor accumulates a :class:`KernelStats` as it steps warps.
The counters are exactly the events the paper's discussion attributes
performance to:

* warp instructions issued (and how many were issued redundantly due to
  intra-warp control divergence),
* global-memory transactions, split by L2 hit/miss, produced by the
  coalescing model,
* shared-memory accesses (per-warp rope stacks),
* rope-stack pushes/pops and recursive call frames (naive baseline),
* node visits, both per-thread useful visits and warp-level visits
  (whose ratio is the Table 2 "work expansion").
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict


@dataclass
class KernelStats:
    """Mutable counter bundle for one kernel launch."""

    #: Warp-instructions issued (one per warp per executed operation).
    warp_instructions: float = 0.0
    #: Of those, instructions issued for warps where some lanes were
    #: masked off (a measure of divergence-induced waste).
    divergent_instructions: float = 0.0
    #: Instruction slots wasted: (inactive lanes / warp_size) summed
    #: over issued instructions.
    wasted_lane_fraction: float = 0.0

    #: Global-memory transactions (segment-granularity requests).
    global_transactions: int = 0
    #: Transactions that hit in the simulated L2.
    l2_hit_transactions: int = 0
    #: Bytes transferred from DRAM (L2 misses * segment size).
    dram_bytes: int = 0
    #: Bytes the kernel actually asked for (sum of field-group record
    #: sizes loaded); field splitting reduces this directly, whereas its
    #: effect on transactions depends on alignment and coalescing.
    bytes_requested: int = 0

    #: Shared-memory warp accesses (lockstep per-warp stacks).
    shared_accesses: int = 0

    #: Rope-stack operations (pushes + pops), any layout.
    stack_ops: int = 0
    #: Recursive call/return pairs executed (naive baseline only).
    recursive_calls: int = 0

    #: Per-thread node visits where the thread did useful work.
    node_visits: int = 0
    #: Warp-level node visits (a warp arriving at a node counts once).
    warp_node_visits: int = 0

    #: Number of warp time-steps executed (max traversal length proxy).
    steps: int = 0

    #: Free-form auxiliary metrics (e.g. per-warp traversal lengths).
    extra: Dict[str, float] = field(default_factory=dict)

    def merge(self, other: "KernelStats") -> "KernelStats":
        """Accumulate ``other`` into ``self`` and return ``self``.

        ``steps`` merges by max (launch waves overlap in time is not
        modeled; sequential waves sum via explicit addition by callers),
        everything else by sum.
        """
        for f in fields(self):
            if f.name == "extra":
                continue
            if f.name == "steps":
                self.steps = max(self.steps, other.steps)
            else:
                setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0.0) + value
        return self

    @property
    def l2_hit_rate(self) -> float:
        """Fraction of global transactions serviced by the L2."""
        if self.global_transactions == 0:
            return 0.0
        return self.l2_hit_transactions / self.global_transactions

    @property
    def avg_transactions_per_step(self) -> float:
        if self.steps == 0:
            return 0.0
        return self.global_transactions / self.steps

    def as_dict(self) -> Dict[str, float]:
        """Flat dict view (for harness reports and tests)."""
        out: Dict[str, float] = {}
        for f in fields(self):
            if f.name == "extra":
                continue
            out[f.name] = getattr(self, f.name)
        out.update({f"extra.{k}": v for k, v in self.extra.items()})
        return out
