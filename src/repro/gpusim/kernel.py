"""Kernel launch geometry and occupancy.

Section 5.2: the repeated point loop is strip-mined and moved into the
kernel so that "each thread only processes one point per thread grid";
the grid covers all points in one or more resident waves. Occupancy —
how many warps an SM can keep resident — controls how well memory
latency is hidden; shared-memory rope stacks reduce occupancy when they
grow large, which is why the paper only places stacks in shared memory
"if the depth of the tree is reasonably small".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.gpusim.device import DeviceConfig


class VisitBudgetExceeded(RuntimeError):
    """A traversal ran past its visit budget (watchdog trip).

    Raised by :class:`Watchdog` when a kernel's main loop exceeds the
    per-launch step budget — a livelocked warp, a corrupted traversal,
    or simply a pathological query whose work must be bounded
    operationally (the service maps this to its ``BudgetExhausted``
    error and retries on a degraded backend).
    """

    def __init__(self, message: str, step: int = 0, budget: Optional[int] = None):
        super().__init__(message)
        self.step = step
        self.budget = budget


@dataclass
class Watchdog:
    """Step-budget watchdog for an executor's main loop.

    The paper's transformations bound per-query work *structurally*
    (ropes never revisit a node); the watchdog bounds it
    *operationally*: executors call :meth:`tick` once per traversal
    step, and a launch that spins past ``budget`` steps is killed with
    :class:`VisitBudgetExceeded` instead of hanging the service.
    """

    budget: int

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ValueError("watchdog budget must be >= 1")

    def tick(self, step: int) -> None:
        if step > self.budget:
            raise VisitBudgetExceeded(
                f"traversal exceeded visit budget {self.budget} "
                f"(step {step}); killed by watchdog",
                step=step,
                budget=self.budget,
            )


def occupancy_for(device: DeviceConfig, shared_bytes_per_warp: int) -> float:
    """Occupancy (0..1] given per-warp shared-memory consumption."""
    if shared_bytes_per_warp < 0:
        raise ValueError("shared_bytes_per_warp must be >= 0")
    warps = device.max_warps_per_sm
    if shared_bytes_per_warp > 0:
        fit = device.shared_mem_per_sm // shared_bytes_per_warp
        if fit == 0:
            # The kernel still launches with one resident warp per SM —
            # spilling beyond shared memory is a configuration error the
            # executors avoid by falling back to global stacks first.
            fit = 1
        warps = min(warps, fit)
    return warps / device.max_warps_per_sm


@dataclass(frozen=True)
class LaunchConfig:
    """Geometry of one kernel launch over ``n_points`` traversals."""

    n_points: int
    device: DeviceConfig
    block_size: int = 256

    def __post_init__(self) -> None:
        if self.n_points <= 0:
            raise ValueError("n_points must be positive")
        if self.block_size % self.device.warp_size != 0:
            raise ValueError("block_size must be a multiple of warp_size")
        if self.block_size > self.device.max_threads_per_block:
            raise ValueError("block_size exceeds device limit")

    @property
    def n_threads(self) -> int:
        """Threads launched: points padded up to a whole warp."""
        w = self.device.warp_size
        return ((self.n_points + w - 1) // w) * w

    @property
    def n_warps(self) -> int:
        return self.n_threads // self.device.warp_size

    @property
    def n_blocks(self) -> int:
        return (self.n_threads + self.block_size - 1) // self.block_size

    @property
    def waves(self) -> int:
        """Resident waves needed to cover the grid (strip-mined loop)."""
        resident = self.device.max_resident_threads
        return max(1, -(-self.n_threads // resident))

    def lane_of_thread(self, thread_ids):
        return thread_ids % self.device.warp_size

    def warp_of_thread(self, thread_ids):
        return thread_ids // self.device.warp_size
