"""Deterministic fault injection for the simulated GPU (chaos layer).

The online service (:mod:`repro.service`) must keep answering queries
when a backend misbehaves.  This module makes backends misbehave *on
purpose*, deterministically, so resilience machinery (retries, circuit
breakers, degraded-mode routing, watchdog budgets) can be exercised and
regression-tested with reproducible failure schedules.

Faults are planned per ``(batch, backend, attempt)`` from a seeded
generator — the same :class:`ChaosConfig` seed yields the identical
fault schedule across runs — and applied inside the executors' real
main loops via :meth:`repro.gpusim.executors.common.TraversalLaunch
.guard`, so an injected failure travels the same error path a genuine
one would:

* **backend error** — :class:`InjectedBackendError` raised mid-launch
  (a device fault / kernel abort);
* **latency spike** — the launch runs on a clock-derated copy of the
  device (:meth:`repro.gpusim.device.DeviceConfig.derate`), inflating
  modeled time by the spike factor;
* **stuck warp** — the traversal stops making progress; the simulated
  warp spins until the executor watchdog's visit budget trips
  (:class:`repro.gpusim.kernel.VisitBudgetExceeded`);
* **corrupted rope stack** — the top stack entry's node pointer is
  overwritten with garbage (:meth:`repro.gpusim.stack.StackStorage
  .corrupt_top`); the executor's node validation then raises
  :class:`repro.gpusim.stack.CorruptedRopeStack`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.gpusim.kernel import VisitBudgetExceeded


class InjectedBackendError(RuntimeError):
    """A chaos-injected backend failure (device fault / kernel abort)."""

    def __init__(self, message: str, step: int = 0) -> None:
        super().__init__(message)
        self.step = step


@dataclass(frozen=True)
class ChaosConfig:
    """Fault-injection rates and targets; all rates are per (batch,
    backend, attempt) probabilities in [0, 1]."""

    seed: int = 0
    p_backend_error: float = 0.0
    p_latency_spike: float = 0.0
    p_stuck_warp: float = 0.0
    p_corrupt_stack: float = 0.0
    #: modeled-time inflation of a latency spike.
    latency_spike_factor: float = 8.0
    #: backends eligible for injection (the modeled CPU is the safe
    #: harbor of the degradation chain and is never targeted by
    #: default).
    targets: Tuple[str, ...] = ("lockstep",)
    #: injected faults fire within the first this-many traversal steps.
    max_fault_step: int = 8

    def __post_init__(self) -> None:
        for name in (
            "p_backend_error",
            "p_latency_spike",
            "p_stuck_warp",
            "p_corrupt_stack",
        ):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.latency_spike_factor < 1.0:
            raise ValueError("latency_spike_factor must be >= 1")
        if self.max_fault_step < 1:
            raise ValueError("max_fault_step must be >= 1")

    @property
    def enabled(self) -> bool:
        return (
            self.p_backend_error > 0
            or self.p_latency_spike > 0
            or self.p_stuck_warp > 0
            or self.p_corrupt_stack > 0
        )


@dataclass(frozen=True)
class BatchFaultPlan:
    """The faults armed for one (batch, backend, attempt) execution."""

    backend_error_at: Optional[int] = None
    stuck_warp_at: Optional[int] = None
    corrupt_stack_at: Optional[int] = None
    latency_factor: float = 1.0

    @property
    def any_armed(self) -> bool:
        return (
            self.backend_error_at is not None
            or self.stuck_warp_at is not None
            or self.corrupt_stack_at is not None
            or self.latency_factor != 1.0
        )

    @property
    def events(self) -> Tuple[str, ...]:
        """Names of the armed faults (stats/log keys)."""
        out = []
        if self.backend_error_at is not None:
            out.append("backend_error")
        if self.stuck_warp_at is not None:
            out.append("stuck_warp")
        if self.corrupt_stack_at is not None:
            out.append("corrupt_stack")
        if self.latency_factor != 1.0:
            out.append("latency_spike")
        return tuple(out)

    def apply(self, launch, step: int, stack=None) -> None:
        """Fire whatever is armed for traversal step ``step``.

        Called from the executors' main loops (via ``launch.guard``);
        ``stack`` is the executor's rope stack when it has one.
        """
        if self.corrupt_stack_at is not None and step == self.corrupt_stack_at:
            if stack is not None:
                # Garbage node pointer: past the end of the tree.
                stack.corrupt_top("node", launch.tree.n_nodes + 7)
        if self.backend_error_at is not None and step == self.backend_error_at:
            raise InjectedBackendError(
                f"injected backend error at step {step}", step=step
            )
        if self.stuck_warp_at is not None and step >= self.stuck_warp_at:
            # The warp stops making progress.  With a watchdog armed it
            # spins its whole visit budget away and the budget trips;
            # with no watchdog the livelock is still surfaced (a real
            # deployment would hang — the simulator refuses to).
            budget = launch.visit_budget
            if budget is not None:
                launch.stats.steps += max(0, budget - step)
            raise VisitBudgetExceeded(
                f"stuck warp: traversal livelocked at step {step}"
                + (f" (visit budget {budget} exhausted)" if budget else ""),
                step=step,
                budget=budget,
            )


#: the do-nothing plan (chaos disabled or batch not selected).
NO_FAULTS = BatchFaultPlan()


@dataclass
class FaultInjector:
    """Plans deterministic faults from a :class:`ChaosConfig`.

    The schedule for a given ``(batch_id, backend, attempt)`` depends
    only on the config seed, so two runs over the same trace see the
    same failures at the same points — the property the chaos tests
    assert.
    """

    config: ChaosConfig
    #: log of (batch_id, backend, attempt, events) for armed plans.
    injected: list = field(default_factory=list)

    def plan(self, batch_id: int, backend: str, attempt: int = 0) -> BatchFaultPlan:
        cfg = self.config
        if not cfg.enabled or backend not in cfg.targets:
            return NO_FAULTS
        backend_key = sum(ord(c) for c in backend)
        rng = np.random.default_rng(
            [
                np.uint64(cfg.seed),
                np.uint64(abs(int(batch_id))),
                np.uint64(backend_key),
                np.uint64(attempt),
            ]
        )
        # One draw per fault class, in a fixed order (determinism).
        draws = rng.random(4)
        step_of = lambda i: int(rng.integers(1, cfg.max_fault_step + 1))
        plan = BatchFaultPlan(
            backend_error_at=step_of(0) if draws[0] < cfg.p_backend_error else None,
            stuck_warp_at=step_of(1) if draws[1] < cfg.p_stuck_warp else None,
            corrupt_stack_at=step_of(2) if draws[2] < cfg.p_corrupt_stack else None,
            latency_factor=(
                cfg.latency_spike_factor
                if draws[3] < cfg.p_latency_spike
                else 1.0
            ),
        )
        if plan.any_armed:
            self.injected.append((batch_id, backend, attempt, plan.events))
        return plan

    def schedule(self) -> Tuple:
        """The armed-fault log as a hashable value (for replay checks)."""
        return tuple(self.injected)
