"""Simulated SIMT GPU substrate.

The paper evaluates its transformations on an nVidia Tesla C2070. This
package provides a deterministic, laptop-scale stand-in: a SIMT execution
model with warps, divergence masks and a warp-vote primitive
(:mod:`repro.gpusim.warp`), a global-memory model that counts 128-byte
coalesced transactions and approximates the L2 (:mod:`repro.gpusim.memory`),
rope-stack storage layouts including per-warp shared-memory stacks
(:mod:`repro.gpusim.stack`), and a throughput cost model that converts
counted architectural events into kernel time
(:mod:`repro.gpusim.cost`).

Executors that run transformed traversal kernels live in
:mod:`repro.gpusim.executors`.
"""

from repro.gpusim.device import DeviceConfig, TESLA_C2070
from repro.gpusim.stats import KernelStats
from repro.gpusim.memory import DeviceAllocator, GlobalMemory, Region
from repro.gpusim.stack import RopeStackLayout, StackStorage
from repro.gpusim.cost import CostModel, KernelTiming
from repro.gpusim.trace import StepTrace
from repro.gpusim.kernel import LaunchConfig, occupancy_for

__all__ = [
    "DeviceConfig",
    "TESLA_C2070",
    "KernelStats",
    "DeviceAllocator",
    "GlobalMemory",
    "Region",
    "RopeStackLayout",
    "StackStorage",
    "CostModel",
    "KernelTiming",
    "StepTrace",
    "LaunchConfig",
    "occupancy_for",
]
