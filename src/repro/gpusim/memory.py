"""Global-memory model: coalescing into 128-byte transactions + L2.

Section 2.2 of the paper: *"Global memory is capable of achieving very
high throughput as long as threads of a warp access elements from the
same 128-byte segment. If memory accesses are coalesced then each
request will be merged into a single global memory transaction;
otherwise the hardware will group accesses into as few transactions as
possible."* This module implements exactly that accounting: a warp
access touching ``k`` distinct segments costs ``k`` transactions.

The L2 is approximated with a reuse-window model: a segment access hits
if the segment was touched within the last ``W`` warp-steps, where ``W``
adapts so that ``W x (average distinct segments per step)`` matches the
L2 capacity in lines. This is a deterministic stand-in for LRU that
preserves the effect the evaluation depends on: small, shared working
sets (lockstep warps marching down the same nodes) hit; scattered
non-lockstep accesses miss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.gpusim.device import DeviceConfig
from repro.gpusim.stats import KernelStats

_FAR_PAST = -(10**9)
_SENTINEL = np.iinfo(np.int64).max


@dataclass(frozen=True)
class Region:
    """A named allocation in simulated device global memory.

    ``addresses(idx)`` maps element indices to byte addresses, which is
    all the coalescing model needs; no element data is stored here (the
    executors keep real data in host numpy arrays).
    """

    name: str
    base: int
    itemsize: int
    count: int

    @property
    def nbytes(self) -> int:
        return self.itemsize * self.count

    def addresses(self, indices: np.ndarray) -> np.ndarray:
        """Byte address of each element index (vectorized)."""
        return self.base + indices.astype(np.int64, copy=False) * self.itemsize


class DeviceAllocator:
    """Bump allocator handing out segment-aligned :class:`Region`\\ s.

    Distinct regions never share a coalescing segment, mirroring
    ``cudaMalloc``'s alignment guarantees, so cross-region accesses are
    never spuriously coalesced together.
    """

    def __init__(self, device: DeviceConfig) -> None:
        self.device = device
        self._next = device.segment_bytes  # keep address 0 unused
        self._regions: dict[str, Region] = {}

    def alloc(self, name: str, itemsize: int, count: int) -> Region:
        """Allocate ``count`` elements of ``itemsize`` bytes."""
        if itemsize <= 0 or count < 0:
            raise ValueError(f"bad allocation {name}: {itemsize=} {count=}")
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated")
        seg = self.device.segment_bytes
        base = self._next
        size = itemsize * count
        self._next = ((base + size + seg - 1) // seg) * seg
        region = Region(name=name, base=base, itemsize=itemsize, count=count)
        self._regions[name] = region
        return region

    def region(self, name: str) -> Region:
        return self._regions[name]

    @property
    def heap_bytes(self) -> int:
        """Total allocated bytes (upper bound of any valid address)."""
        return self._next


class GlobalMemory:
    """Coalescing + L2 accounting for warp accesses.

    One instance per kernel launch; accumulates into a
    :class:`~repro.gpusim.stats.KernelStats`.
    """

    def __init__(
        self,
        device: DeviceConfig,
        allocator: DeviceAllocator,
        stats: KernelStats,
        l2_enabled: bool = True,
    ) -> None:
        self.device = device
        self.allocator = allocator
        self.stats = stats
        self.l2_enabled = l2_enabled
        n_segments = allocator.heap_bytes // device.segment_bytes + 2
        seg = device.segment_bytes
        #: segment size as a shift when it is a power of two (it always
        #: is on real devices): ``addr >> shift`` replaces the int64
        #: floor-division, which numpy cannot vectorize nearly as well.
        self._seg_shift = seg.bit_length() - 1 if seg & (seg - 1) == 0 else None
        self._last_touch = np.full(n_segments, _FAR_PAST, dtype=np.int64)
        self._ema_unique_per_step = 1.0
        self._capacity_lines = max(1, device.l2_bytes // device.l2_line_bytes)

    # -- internal -----------------------------------------------------

    def _ensure_capacity(self, max_segment: int) -> None:
        if max_segment >= len(self._last_touch):
            grown = np.full(max_segment + 1024, _FAR_PAST, dtype=np.int64)
            grown[: len(self._last_touch)] = self._last_touch
            self._last_touch = grown

    def _l2_window(self) -> float:
        return self._capacity_lines / max(1.0, self._ema_unique_per_step)

    # -- public API ---------------------------------------------------

    def warp_access(
        self,
        addresses: np.ndarray,
        nbytes: int,
        active: Optional[np.ndarray],
        step: int,
    ) -> int:
        """Account one memory operation issued by many warps at once.

        Parameters
        ----------
        addresses:
            int64 array of shape ``(n_warps, lanes)`` — byte address
            requested by each lane. For warp-uniform (lockstep) loads
            pass shape ``(n_warps, 1)``.
        nbytes:
            bytes read/written per lane (may straddle two segments).
        active:
            bool mask of the same shape, or ``None`` for all-active.
        step:
            current warp-step (the L2 reuse clock).

        Returns
        -------
        int
            number of global transactions generated.
        """
        if addresses.ndim != 2:
            raise ValueError("addresses must be (n_warps, lanes)")
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        seg_size = self.device.segment_bytes
        addr = addresses.astype(np.int64, copy=False)
        if active is None:
            act = np.ones(addr.shape, dtype=bool)
        else:
            act = active
        shift = self._seg_shift
        if shift is not None:
            seg_lo = addr >> shift
            seg_hi = (addr + (nbytes - 1)) >> shift
        else:
            seg_lo = addr // seg_size
            seg_hi = (addr + (nbytes - 1)) // seg_size
        if addr.shape[1] == 1:
            # One lane per access group (per-warp lockstep loads and
            # warp-stack entries): a row's transactions are just its
            # own segment(s), no cross-lane dedup needed.  Same counts
            # and L2 touches as the general path, far fewer array ops.
            lo, hi, on = seg_lo[:, 0], seg_hi[:, 0], act[:, 0]
            straddle = on & (hi > lo)
            n_straddle = int(np.count_nonzero(straddle))
            n_trans = int(np.count_nonzero(on)) + n_straddle
            if n_trans == 0:
                return 0
            self.stats.global_transactions += n_trans
            if n_straddle:
                flat = np.concatenate([lo[on], hi[straddle]])
            else:
                flat = lo[on]
        else:
            if np.any(seg_hi > seg_lo):
                segs = np.concatenate([seg_lo, seg_hi], axis=1)
                act2 = np.concatenate([act, act & (seg_hi > seg_lo)], axis=1)
            else:
                segs, act2 = seg_lo, act

            masked = np.where(act2, segs, _SENTINEL)
            masked.sort(axis=1)
            first_valid = masked[:, 0] < _SENTINEL
            if masked.shape[1] > 1:
                fresh = (masked[:, 1:] != masked[:, :-1]) & (
                    masked[:, 1:] < _SENTINEL
                )
                per_warp = first_valid.astype(np.int64) + fresh.sum(axis=1)
            else:
                per_warp = first_valid.astype(np.int64)
            n_trans = int(per_warp.sum())
            if n_trans == 0:
                return 0

            self.stats.global_transactions += n_trans
            flat = masked[masked < _SENTINEL]

        # L2: device-wide reuse-window filter over distinct segments.
        # Sort-based dedup instead of np.unique: same values, but it
        # skips unique's dispatch/reshape overhead, which at millions
        # of small per-step calls is a measurable slice of a launch.
        flat.sort()
        if len(flat) > 1:
            keep = np.empty(len(flat), dtype=bool)
            keep[0] = True
            np.not_equal(flat[1:], flat[:-1], out=keep[1:])
            unique_segs = flat[keep]
        else:
            unique_segs = flat
        self._ensure_capacity(int(unique_segs[-1]))
        if self.l2_enabled:
            window = self._l2_window()
            age = step - self._last_touch[unique_segs]
            hit_seg = age <= window
            # A warp re-touching a segment another warp touched in this
            # same step also hits (the transaction is still counted, it
            # is just serviced from L2): duplicates across warps.
            dup_trans = n_trans - len(unique_segs)
            hits = int(hit_seg.sum()) + dup_trans
        else:
            hits = 0
        self._last_touch[unique_segs] = step
        self._ema_unique_per_step = (
            0.98 * self._ema_unique_per_step + 0.02 * len(unique_segs)
        )

        self.stats.l2_hit_transactions += hits
        self.stats.dram_bytes += (n_trans - hits) * seg_size
        return n_trans
