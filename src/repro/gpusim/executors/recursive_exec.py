"""Naive recursive GPU baselines (Section 6.1).

The paper compares against "a naive GPU implementation that uses CUDA
compute capability 2.0's support for recursion to directly map the
recursive algorithm to the GPU", in masked ("lockstep") and unmasked
flavors.

Mechanically, SIMT recursion on an *unguided* traversal walks the union
of the warp's call trees: a lane that truncates merely idles (masked by
hardware) while the others step through the shared call structure, so
the warp's visit set is the union — the same set an explicitly-masked
lockstep walk visits. That is why the paper's footnote observes that
lockstep "should have no effect on recursive implementations" (the
masked variant only wins by enabling predication). For *guided*
traversals the call orders differ per lane, the reconvergence stack
cannot merge differing call chains, and each call-order subgroup
descends separately — which the union machinery reproduces because the
plain autoropes kernel has no votes: a call-order branch splits the
warp and both arms push their (differently-ordered) children with
complementary masks.

On top of the walk, recursion pays per visited node: a call/return pair
(``DeviceConfig.call_overhead_cycles``) and a local-memory frame
save/restore of ``DeviceConfig.frame_bytes`` per active lane (CUDA's
interleaved local-memory layout, so converged lanes coalesce). The
unmasked flavor additionally pays
``DeviceConfig.recursive_divergence_cycles`` per visit — hardware
post-dominator reconvergence handles long divergent call chains less
efficiently than explicit predication (the footnote again).

The performance story the evaluation tells then falls out: against the
*non-lockstep* autoropes variant, the recursive baseline does
union-size work instead of own-traversal work, so sorted inputs (union
close to the longest member) leave it competitive while shuffled inputs
(union many times larger) sink it; against the *lockstep* variant it
does the same walk but pays the recursion tax on every node.

``RecursiveExecutor(launch, masking=...)`` is the factory the harness
uses: pass the lockstep kernel for the masked flavor where one exists,
and the plain autoropes kernel for the unmasked flavor.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.executors.common import TraversalLaunch
from repro.gpusim.executors.lockstep_exec import LockstepExecutor


class _RecursiveBase(LockstepExecutor):
    """Union-walk recursion with frame/call accounting."""

    _require_lockstep = False
    _stack_account = False
    _masking = True

    def __init__(self, launch: TraversalLaunch) -> None:
        super().__init__(launch)
        self._frame_depth_cap = 128
        self._frames = launch.allocator.alloc(
            "call_frames",
            launch.device.frame_bytes,
            launch.n_threads * self._frame_depth_cap,
        )

    def _on_visit(
        self, warp_on: np.ndarray, live: np.ndarray, node: np.ndarray
    ) -> None:
        L = self.L
        dev = L.device
        L.stats.recursive_calls += int(warp_on.sum())
        # Frame save at call + restore at return, per active lane, at
        # the warp's current call depth (interleaved local memory).
        depth = np.minimum(self.stack.sp, self._frame_depth_cap - 1)
        lanes = np.arange(self.ws, dtype=np.int64)[None, :]
        # Under frontier compaction the rows are a gathered subset of the
        # warps; address frames by original warp id so the interleaved
        # local-memory layout (and its coalescing) is unchanged.
        thread_ids = self._warp_ids[:, None] * self.ws + lanes
        frame_idx = depth[:, None] * L.n_threads + thread_ids
        addrs = self._frames.addresses(frame_idx)
        for _ in range(2):
            L.memory.warp_access(addrs, dev.frame_bytes, live, self._step)
        if not self._masking:
            L.issue.issue(warp_on[:, None], dev.recursive_divergence_cycles)


class RecursiveMaskedExecutor(_RecursiveBase):
    """Masked flavor: run with the lockstep kernel where one exists
    (its votes mirror what an explicitly-masked recursive guided
    implementation does)."""

    _masking = True


class RecursiveUnmaskedExecutor(_RecursiveBase):
    """Unmasked flavor: run with the plain autoropes kernel so guided
    call-order branches stay per-lane (subgroup serialization)."""

    _masking = False

    def __init__(self, launch: TraversalLaunch) -> None:
        if launch.kernel.lockstep:
            raise ValueError(
                "the unmasked recursive baseline runs the plain autoropes "
                "kernel (its call-order branches must stay per-lane)"
            )
        super().__init__(launch)


def RecursiveExecutor(launch: TraversalLaunch, masking: bool):
    """Factory: the masked or unmasked recursive baseline executor."""
    if masking:
        return RecursiveMaskedExecutor(launch)
    return RecursiveUnmaskedExecutor(launch)
