"""Non-lockstep autoropes executor: per-thread rope stacks.

Each thread owns a rope stack and traverses independently (Fig. 6/7's
code, one instance per thread). Control re-converges at the top of the
traversal loop every iteration — the autoropes divergence benefit — but
as threads' traversals drift apart, each warp's 32 lanes load 32
*different* tree nodes per step, and the coalescing model charges the
resulting scattered transactions (Section 4.1's observation that
autoropes alone "inhibits memory coalescing").

The interpreter is a vectorized predicated AST walker: conditions are
evaluated for all live threads at once, both branch arms execute under
complementary masks (charging the SIMT both-sides issue cost), and
``Continue`` clears a thread's live bit for the rest of the body.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.autoropes import Continue, IterativeKernel, PushGroup
from repro.core.ir import If, Seq, Stmt, Update
from repro.gpusim.cost import CostModel
from repro.gpusim.executors.common import (
    LaunchResult,
    TraversalLaunch,
    validate_popped_nodes,
)
from repro.gpusim.kernel import occupancy_for
from repro.gpusim.stack import RopeStackLayout, StackStorage
from repro.gpusim.trace import StepTrace


class AutoropesExecutor:
    """Runs an autoropes kernel with one stack per thread."""

    def __init__(self, launch: TraversalLaunch) -> None:
        if launch.kernel.lockstep:
            raise ValueError(
                "AutoropesExecutor runs non-lockstep kernels; use "
                "LockstepExecutor for lockstep variants"
            )
        self.L = launch
        self.kernel: IterativeKernel = launch.kernel
        self.spec = launch.kernel.spec
        self.tree = launch.tree
        self.ctx = launch.ctx
        dev = launch.device
        channels: Dict[str, Tuple[np.dtype, int]] = {"node": (np.int64, 1)}
        for a in self.spec.variant_args:
            channels[f"arg.{a.name}"] = (a.dtype, 1)
        self.stack = StackStorage(
            n_stacks=launch.n_threads,
            channels=channels,
            layout=launch.stack_layout,
            device=dev,
            allocator=launch.allocator
            if launch.stack_layout is not RopeStackLayout.SHARED
            else None,
            memory=launch.memory,
            stats=launch.stats,
            lanes_per_access=dev.warp_size,
            max_depth=launch.max_stack_depth,
        )
        self.pt = launch.thread_points()
        self._invariant_args = {
            a.name: np.full(launch.n_threads, a.initial, dtype=a.dtype)
            for a in self.spec.invariant_args
        }
        self._step = 0
        self._visits_per_point = np.zeros(launch.n_points, dtype=np.int64)
        self._warp_live_steps = np.zeros(launch.n_warps, dtype=np.int64)
        self._visit_log: Optional[List] = [] if launch.record_visits else None
        self._trace: Optional[StepTrace] = StepTrace() if launch.trace else None

    # -- memory helpers --------------------------------------------------

    def _warpify(self, arr: np.ndarray) -> np.ndarray:
        return arr.reshape(self.L.n_warps, self.L.device.warp_size)

    def _charge_groups(
        self,
        names: Tuple[str, ...],
        live: np.ndarray,
        node: np.ndarray,
        charged: Dict[str, np.ndarray],
    ) -> None:
        for name in names:
            seen = charged.setdefault(name, np.zeros(self.L.n_threads, dtype=bool))
            to_charge = live & ~seen
            if not to_charge.any():
                continue
            region = self.L.regions[name]
            addrs = region.addresses(np.maximum(node, 0))
            self.L.stats.bytes_requested += int(to_charge.sum()) * region.itemsize
            self.L.memory.warp_access(
                self._warpify(addrs),
                region.itemsize,
                self._warpify(to_charge),
                self._step,
            )
            seen |= to_charge

    # -- interpreter -------------------------------------------------------

    def _interp(
        self,
        stmt: Stmt,
        live: np.ndarray,
        node: np.ndarray,
        args: Dict[str, np.ndarray],
        charged: Dict[str, np.ndarray],
    ) -> np.ndarray:
        if not live.any():
            return live
        if isinstance(stmt, Seq):
            for s in stmt.stmts:
                live = self._interp(s, live, node, args, charged)
            return live
        if isinstance(stmt, Continue):
            return np.zeros_like(live)
        if isinstance(stmt, If):
            self._charge_groups(stmt.cond.reads, live, node, charged)
            self.L.issue.issue(self._warpify(live), stmt.cond.cost)
            idx = np.nonzero(live)[0]
            sub = self.spec.eval_condition(
                stmt.cond,
                self.ctx,
                node[idx],
                self.pt[idx],
                {k: v[idx] for k, v in args.items()},
            )
            cond = np.zeros_like(live)
            cond[idx] = sub
            then_live = self._interp(stmt.then, live & cond, node, args, charged)
            if stmt.orelse is not None:
                else_live = self._interp(
                    stmt.orelse, live & ~cond, node, args, charged
                )
            else:
                else_live = live & ~cond
            return then_live | else_live
        if isinstance(stmt, Update):
            self._charge_groups(stmt.fn.reads, live, node, charged)
            self.L.issue.issue(self._warpify(live), stmt.fn.cost)
            idx = np.nonzero(live)[0]
            self.spec.eval_update(
                stmt.fn,
                self.ctx,
                node[idx],
                self.pt[idx],
                {k: v[idx] for k, v in args.items()},
            )
            return live
        if isinstance(stmt, PushGroup):
            self._push_group(stmt, live, node, args, charged)
            return live
        raise TypeError(f"cannot interpret {type(stmt).__name__}")

    def _push_group(
        self,
        group: PushGroup,
        live: np.ndarray,
        node: np.ndarray,
        args: Dict[str, np.ndarray],
        charged: Dict[str, np.ndarray],
    ) -> None:
        spec = self.spec
        self._charge_groups((spec.child_field_group,), live, node, charged)
        idx = np.nonzero(live)[0]
        sub_args = {k: v[idx] for k, v in args.items()}
        # Declaration-level arg rules: evaluated once per visit, at the
        # parent (the `dsq * 0.25` of Fig. 9, the `arg + c + 1` of Fig. 5).
        new_args: Dict[str, np.ndarray] = {}
        for a in spec.variant_args:
            if a.update is not None:
                val = spec.eval_arg_rule(a.update, self.ctx, node[idx], self.pt[idx], sub_args)
            else:
                val = sub_args[a.name]
            full = args[a.name].copy()
            full[idx] = val.astype(a.dtype, copy=False)
            new_args[a.name] = full
        for call in group.push_order:
            child = self.tree.child(call.child.name, node)
            push_args = dict(new_args)
            if call.arg_overrides:
                for arg_name, rule in call.arg_overrides:
                    val = spec.eval_arg_rule(
                        rule,
                        self.ctx,
                        node[idx],
                        self.pt[idx],
                        {k: v[idx] for k, v in new_args.items()},
                    )
                    decl = next(a for a in spec.args if a.name == arg_name)
                    full = push_args[arg_name].copy()
                    full[idx] = val.astype(decl.dtype, copy=False)
                    push_args[arg_name] = full
            if spec.visits_null_children:
                push_mask = live  # phantom entries pay pending updates
            else:
                push_mask = live & (child >= 0)
            self.L.issue.issue(self._warpify(live), 1.0)
            payload = {"node": child}
            payload.update(
                {f"arg.{k}": v for k, v in push_args.items()}
            )
            self.stack.push(push_mask, self._step, **payload)

    # -- main loop -----------------------------------------------------------

    def run(self) -> LaunchResult:
        L = self.L
        spec = self.spec
        real = self.pt >= 0
        init = {"node": np.zeros(L.n_threads, dtype=np.int64)}
        for a in spec.variant_args:
            init[f"arg.{a.name}"] = np.full(L.n_threads, a.initial, dtype=a.dtype)
        init["node"][:] = self.tree.root
        self.stack.push(real, self._step, **init)

        while self.stack.any_nonempty():
            self._step += 1
            L.stats.steps += 1
            L.guard(self._step, self.stack)
            live = self.stack.nonempty()
            popped = self.stack.pop(live, self._step)
            node = popped["node"]
            validate_popped_nodes(node, live, self.tree.n_nodes, self._step)
            args = {a.name: popped[f"arg.{a.name}"] for a in spec.variant_args}
            args.update(self._invariant_args)
            # Book-keeping: every popped rope to a real node is a node
            # visit (phantom null entries from the pseudo-tail
            # normalization are control, not visits).
            useful = live & (node >= 0)
            L.stats.node_visits += int(useful.sum())
            warp_live = self._warpify(live).any(axis=1)
            L.stats.warp_node_visits += int(warp_live.sum())
            self._warp_live_steps += warp_live
            np.add.at(self._visits_per_point, self.pt[useful], 1)
            if self._visit_log is not None:
                lidx = np.nonzero(useful)[0]
                self._visit_log.append((self.pt[lidx].copy(), node[lidx].copy()))
            charged: Dict[str, np.ndarray] = {}
            trans_before = L.stats.global_transactions
            self._interp(self.kernel.body, live, node, args, charged)
            if self._trace is not None:
                self._trace.record(
                    int(warp_live.sum()),
                    int(useful.sum()),
                    L.stats.global_transactions - trans_before,
                )

        occ = occupancy_for(L.device, self.stack.shared_bytes_per_group)
        cm = CostModel(L.device)
        imbalance = cm.imbalance_factor(self._warp_live_steps)
        timing = cm.timing(L.stats, occ, imbalance)
        per_point = self._visits_per_point
        per_warp_longest = self._longest_member_per_warp(per_point)
        return LaunchResult(
            stats=L.stats,
            timing=timing,
            occupancy=occ,
            nodes_per_point=per_point,
            nodes_per_warp=self._warp_live_steps,
            longest_member_per_warp=per_warp_longest,
            visits=self._visit_log,
            trace=self._trace,
        )

    def _longest_member_per_warp(self, per_point: np.ndarray) -> np.ndarray:
        padded = np.zeros(self.L.n_threads, dtype=np.int64)
        padded[: self.L.n_points] = per_point
        return self._warpify(padded).max(axis=1)
