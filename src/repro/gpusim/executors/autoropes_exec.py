"""Non-lockstep autoropes executor: per-thread rope stacks.

Each thread owns a rope stack and traverses independently (Fig. 6/7's
code, one instance per thread). Control re-converges at the top of the
traversal loop every iteration — the autoropes divergence benefit — but
as threads' traversals drift apart, each warp's 32 lanes load 32
*different* tree nodes per step, and the coalescing model charges the
resulting scattered transactions (Section 4.1's observation that
autoropes alone "inhibits memory coalescing").

The interpreter is a vectorized predicated AST walker: conditions are
evaluated for all live threads at once, both branch arms execute under
complementary masks (charging the SIMT both-sides issue cost), and
``Continue`` clears a thread's live bit for the rest of the body.

The default ``engine="compiled"`` runs the plan-compiled op program
(:mod:`repro.core.compile`) instead of re-walking the AST, and applies
**frontier compaction** at warp granularity: when the fraction of warps
with any live thread drops below ``launch.compact_threshold``, whole
warp groups of stacks (plus point ids and invariant argument values)
are gathered into compact arrays.  Lanes never migrate between warps
and rows keep their original stack ids, so the coalescing, L2, and
issue accounting are bit-identical to the full-width run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.autoropes import Continue, IterativeKernel, PushGroup
from repro.core.compile import (
    TAG_COND,
    TAG_CONTINUE,
    TAG_PUSH,
    TAG_UPDATE,
    CompiledProgram,
    PushGroupOp,
    program_for,
)
from repro.core.ir import If, Seq, Stmt, Update
from repro.gpusim.cost import CostModel
from repro.gpusim.executors.common import (
    LaunchResult,
    TraversalLaunch,
    validate_popped_nodes,
)
from repro.gpusim.kernel import occupancy_for
from repro.gpusim.stack import RopeStackLayout, StackStorage
from repro.gpusim.trace import StepTrace

#: below this many warp groups the gather costs more than it saves.
MIN_COMPACT_GROUPS = 8


class AutoropesExecutor:
    """Runs an autoropes kernel with one stack per thread."""

    #: whether ``engine="codegen"`` can run this executor class; classes
    #: that override the main loop itself (static ropes) opt out and
    #: fall back to the compiled walker.
    _codegen_supported = True

    def __init__(self, launch: TraversalLaunch) -> None:
        if launch.kernel.lockstep:
            raise ValueError(
                "AutoropesExecutor runs non-lockstep kernels; use "
                "LockstepExecutor for lockstep variants"
            )
        self.L = launch
        self.kernel: IterativeKernel = launch.kernel
        self.spec = launch.kernel.spec
        self.tree = launch.tree
        self.ctx = launch.ctx
        dev = launch.device
        channels: Dict[str, Tuple[np.dtype, int]] = {"node": (np.int64, 1)}
        for a in self.spec.variant_args:
            channels[f"arg.{a.name}"] = (a.dtype, 1)
        self.stack = StackStorage(
            n_stacks=launch.n_threads,
            channels=channels,
            layout=launch.stack_layout,
            device=dev,
            allocator=launch.allocator
            if launch.stack_layout is not RopeStackLayout.SHARED
            else None,
            memory=launch.memory,
            stats=launch.stats,
            lanes_per_access=dev.warp_size,
            max_depth=launch.max_stack_depth,
        )
        self.ws = dev.warp_size
        self.pt = launch.thread_points()
        self._invariant_args = {
            a.name: np.full(launch.n_threads, a.initial, dtype=a.dtype)
            for a in self.spec.invariant_args
        }
        self._step = 0
        self._visits_per_point = np.zeros(launch.n_points, dtype=np.int64)
        self._warp_live_steps = np.zeros(launch.n_warps, dtype=np.int64)
        self._visit_log: Optional[List] = [] if launch.record_visits else None
        self._trace: Optional[StepTrace] = StepTrace() if launch.trace else None
        #: per-op cost attribution for sampled launches (None = off).
        self._prof = launch.op_profile
        #: original warp id of each current warp group (frontier
        #: compaction gathers whole groups; identity until then).
        self._warp_ids = np.arange(launch.n_warps, dtype=np.int64)
        self._compacted = False
        self.program: Optional[CompiledProgram] = (
            program_for(self.kernel)
            if launch.engine in ("compiled", "codegen")
            else None
        )
        #: set when engine="codegen" was requested but this executor
        #: class cannot run generated loops (it ran compiled instead).
        self.codegen_fallback = (
            launch.engine == "codegen" and not self._codegen_supported
        )

    # -- memory helpers --------------------------------------------------

    def _warpify(self, arr: np.ndarray) -> np.ndarray:
        return arr.reshape(-1, self.ws)

    def _issue_ids(self) -> Optional[np.ndarray]:
        return self._warp_ids if self._compacted else None

    def _charge_groups(
        self,
        names: Tuple[str, ...],
        live: np.ndarray,
        node: np.ndarray,
        charged: Dict[str, np.ndarray],
    ) -> None:
        safe_node = None
        for name in names:
            seen = charged.setdefault(name, np.zeros(len(node), dtype=bool))
            to_charge = live & ~seen
            if not to_charge.any():
                continue
            if safe_node is None:
                safe_node = charged.get("__safe_node")
                if safe_node is None:
                    safe_node = np.maximum(node, 0)
                    charged["__safe_node"] = safe_node
            region = self.L.regions[name]
            addrs = region.addresses(safe_node)
            self.L.stats.bytes_requested += int(to_charge.sum()) * region.itemsize
            self.L.memory.warp_access(
                self._warpify(addrs),
                region.itemsize,
                self._warpify(to_charge),
                self._step,
            )
            seen |= to_charge

    # -- interpreter (engine="interp": the differential baseline) -----------

    def _interp(
        self,
        stmt: Stmt,
        live: np.ndarray,
        node: np.ndarray,
        args: Dict[str, np.ndarray],
        charged: Dict[str, np.ndarray],
    ) -> np.ndarray:
        if not live.any():
            return live
        if isinstance(stmt, Seq):
            for s in stmt.stmts:
                live = self._interp(s, live, node, args, charged)
            return live
        if isinstance(stmt, Continue):
            return np.zeros_like(live)
        if isinstance(stmt, If):
            self._charge_groups(stmt.cond.reads, live, node, charged)
            self.L.issue.issue(self._warpify(live), stmt.cond.cost)
            idx = np.nonzero(live)[0]
            sub = self.spec.eval_condition(
                stmt.cond,
                self.ctx,
                node[idx],
                self.pt[idx],
                {k: v[idx] for k, v in args.items()},
            )
            cond = np.zeros_like(live)
            cond[idx] = sub
            if self._prof is not None:
                self._prof.note(stmt, self.L.stats)
            then_live = self._interp(stmt.then, live & cond, node, args, charged)
            if stmt.orelse is not None:
                else_live = self._interp(
                    stmt.orelse, live & ~cond, node, args, charged
                )
            else:
                else_live = live & ~cond
            return then_live | else_live
        if isinstance(stmt, Update):
            self._charge_groups(stmt.fn.reads, live, node, charged)
            self.L.issue.issue(self._warpify(live), stmt.fn.cost)
            idx = np.nonzero(live)[0]
            self.spec.eval_update(
                stmt.fn,
                self.ctx,
                node[idx],
                self.pt[idx],
                {k: v[idx] for k, v in args.items()},
            )
            if self._prof is not None:
                self._prof.note(stmt, self.L.stats)
            return live
        if isinstance(stmt, PushGroup):
            self._push_group(stmt, live, node, args, charged)
            if self._prof is not None:
                self._prof.note(stmt, self.L.stats)
            return live
        raise TypeError(f"cannot interpret {type(stmt).__name__}")

    def _push_group(
        self,
        group: PushGroup,
        live: np.ndarray,
        node: np.ndarray,
        args: Dict[str, np.ndarray],
        charged: Dict[str, np.ndarray],
    ) -> None:
        spec = self.spec
        self._charge_groups((spec.child_field_group,), live, node, charged)
        idx = np.nonzero(live)[0]
        sub_args = {k: v[idx] for k, v in args.items()}
        # Declaration-level arg rules: evaluated once per visit, at the
        # parent (the `dsq * 0.25` of Fig. 9, the `arg + c + 1` of Fig. 5).
        new_args: Dict[str, np.ndarray] = {}
        for a in spec.variant_args:
            if a.update is not None:
                val = spec.eval_arg_rule(a.update, self.ctx, node[idx], self.pt[idx], sub_args)
            else:
                val = sub_args[a.name]
            full = args[a.name].copy()
            full[idx] = val.astype(a.dtype, copy=False)
            new_args[a.name] = full
        for call in group.push_order:
            child = self.tree.child(call.child.name, node)
            push_args = dict(new_args)
            if call.arg_overrides:
                for arg_name, rule in call.arg_overrides:
                    val = spec.eval_arg_rule(
                        rule,
                        self.ctx,
                        node[idx],
                        self.pt[idx],
                        {k: v[idx] for k, v in new_args.items()},
                    )
                    decl = next(a for a in spec.args if a.name == arg_name)
                    full = push_args[arg_name].copy()
                    full[idx] = val.astype(decl.dtype, copy=False)
                    push_args[arg_name] = full
            if spec.visits_null_children:
                push_mask = live  # phantom entries pay pending updates
            else:
                push_mask = live & (child >= 0)
            self.L.issue.issue(self._warpify(live), 1.0)
            payload = {"node": child}
            payload.update(
                {f"arg.{k}": v for k, v in push_args.items()}
            )
            self.stack.push(push_mask, self._step, **payload)

    # -- compiled program walker (engine="compiled") -------------------------

    def _run_ops(
        self,
        ops: Tuple,
        live: np.ndarray,
        node: np.ndarray,
        args: Dict[str, np.ndarray],
        charged: Dict[str, np.ndarray],
    ) -> np.ndarray:
        """Walk the op program under per-thread predication.

        Non-lockstep execution predicates *every* branch per thread
        (threads sit on different nodes, so no warp-uniform shortcut
        exists); the compiled branch kinds only matter to lockstep.
        """
        issue = self.L.issue.issue
        ids = self._issue_ids()
        for op in ops:
            if not live.any():
                return live
            tag = op.tag
            if tag == TAG_COND:
                if op.reads:
                    self._charge_groups(op.reads, live, node, charged)
                issue(self._warpify(live), op.cost, warp_ids=ids)
                idx = np.nonzero(live)[0]
                res = op.fn(
                    self.ctx,
                    node[idx],
                    self.pt[idx],
                    {k: v[idx] for k, v in args.items()},
                )
                cond = np.zeros_like(live)
                cond[idx] = np.asarray(res, dtype=bool)
                if self._prof is not None:
                    self._prof.note(op, self.L.stats)
                then_live = self._run_ops(op.then_ops, live & cond, node, args, charged)
                if op.else_ops is not None:
                    else_live = self._run_ops(
                        op.else_ops, live & ~cond, node, args, charged
                    )
                else:
                    else_live = live & ~cond
                live = then_live | else_live
            elif tag == TAG_UPDATE:
                if op.reads:
                    self._charge_groups(op.reads, live, node, charged)
                issue(self._warpify(live), op.cost, warp_ids=ids)
                idx = np.nonzero(live)[0]
                op.fn(
                    self.ctx,
                    node[idx],
                    self.pt[idx],
                    {k: v[idx] for k, v in args.items()},
                )
                if self._prof is not None:
                    self._prof.note(op, self.L.stats)
            elif tag == TAG_PUSH:
                self._push_group_op(op, live, node, args, charged)
                if self._prof is not None:
                    self._prof.note(op, self.L.stats)
            else:  # TAG_CONTINUE
                return np.zeros_like(live)
        return live

    def _push_group_op(
        self,
        op: PushGroupOp,
        live: np.ndarray,
        node: np.ndarray,
        args: Dict[str, np.ndarray],
        charged: Dict[str, np.ndarray],
    ) -> None:
        if op.child_group:
            self._charge_groups(op.child_group, live, node, charged)
        if op.needs_rules:
            idx = np.nonzero(live)[0]
            sub_args = {k: v[idx] for k, v in args.items()}
            # Pushes only read rows in the push mask (a subset of idx),
            # so rule outputs scatter into empty_like scratch instead of
            # the interpreter's full-array copies; stored values are
            # identical.
            new_full: Dict[str, np.ndarray] = {}
            new_sub: Dict[str, np.ndarray] = dict(sub_args)
            for r in op.variant_rules:
                if r.rule is None:
                    new_full[r.name] = args[r.name]
                else:
                    val = np.asarray(
                        r.rule(self.ctx, node[idx], self.pt[idx], sub_args)
                    ).astype(r.dtype, copy=False)
                    full = np.empty_like(args[r.name])
                    full[idx] = val
                    new_full[r.name] = full
                    new_sub[r.name] = val
        else:
            new_full = {r.name: args[r.name] for r in op.variant_rules}
        issue = self.L.issue.issue
        ids = self._issue_ids()
        live_w = self._warpify(live)
        for call in op.calls:
            child = self.tree.child(call.child, node)
            push_full = new_full
            if call.overrides:
                push_full = dict(new_full)
                for r in call.overrides:
                    val = np.asarray(
                        r.rule(self.ctx, node[idx], self.pt[idx], new_sub)
                    ).astype(r.dtype, copy=False)
                    full = np.empty_like(new_full[r.name])
                    full[idx] = val
                    push_full[r.name] = full
            if op.visits_null:
                push_mask = live
            else:
                push_mask = live & (child >= 0)
            issue(live_w, 1.0, warp_ids=ids)
            payload: Dict[str, np.ndarray] = {"node": child}
            for k, v in push_full.items():
                payload[f"arg.{k}"] = v
            self.stack.push(push_mask, self._step, **payload)

    # -- frontier compaction -------------------------------------------------

    def _maybe_compact(self) -> None:
        threshold = self.L.compact_threshold
        groups = self.stack.n_stacks // self.ws
        if threshold <= 0.0 or groups < MIN_COMPACT_GROUPS:
            return
        grp_live = self._warpify(self.stack.sp > 0).any(axis=1)
        n_live = int(grp_live.sum())
        if n_live >= groups * threshold:
            return
        self._compact_groups(np.nonzero(grp_live)[0])

    def _compact_groups(self, sel: np.ndarray) -> None:
        """Gather executor state down to the selected warp groups.

        The cold half of compaction, shared by the compiled walker and
        the generated codegen loops (which inline the cheap trigger
        checks and call back here for the gather)."""
        self.stack.compact(sel)
        rows = (sel[:, None] * self.ws + np.arange(self.ws)).ravel()
        self.pt = self.pt[rows]
        self._invariant_args = {k: v[rows] for k, v in self._invariant_args.items()}
        self._warp_ids = self._warp_ids[sel]
        self._compacted = True

    # -- main loop -----------------------------------------------------------

    def run(self) -> LaunchResult:
        L = self.L
        spec = self.spec
        real = self.pt >= 0
        init = {"node": np.zeros(L.n_threads, dtype=np.int64)}
        for a in spec.variant_args:
            init[f"arg.{a.name}"] = np.full(L.n_threads, a.initial, dtype=a.dtype)
        init["node"][:] = self.tree.root
        self.stack.push(real, self._step, **init)

        if L.engine == "codegen" and self._codegen_supported:
            from repro.core.passes import step_loop_for

            step_loop_for(self, "autoropes")(self)
        elif self.program is not None:
            self._run_compiled()
        else:
            self._run_interp()

        occ = occupancy_for(L.device, self.stack.shared_bytes_per_group)
        cm = CostModel(L.device)
        imbalance = cm.imbalance_factor(self._warp_live_steps)
        timing = cm.timing(L.stats, occ, imbalance)
        per_point = self._visits_per_point
        per_warp_longest = self._longest_member_per_warp(per_point)
        return LaunchResult(
            stats=L.stats,
            timing=timing,
            occupancy=occ,
            nodes_per_point=per_point,
            nodes_per_warp=self._warp_live_steps,
            longest_member_per_warp=per_warp_longest,
            visits=self._visit_log,
            trace=self._trace,
        )

    def _run_interp(self) -> None:
        """Original full-width AST-interpreting loop (baseline engine)."""
        L = self.L
        spec = self.spec
        need_guard = L.needs_guard
        validate = L.validate
        while self.stack.any_nonempty():
            self._step += 1
            L.stats.steps += 1
            if need_guard:
                L.guard(self._step, self.stack)
            live = self.stack.nonempty()
            popped = self.stack.pop(live, self._step)
            node = popped["node"]
            if validate:
                validate_popped_nodes(node, live, self.tree.n_nodes, self._step)
            args = {a.name: popped[f"arg.{a.name}"] for a in spec.variant_args}
            args.update(self._invariant_args)
            # Book-keeping: every popped rope to a real node is a node
            # visit (phantom null entries from the pseudo-tail
            # normalization are control, not visits).
            useful = live & (node >= 0)
            L.stats.node_visits += int(useful.sum())
            warp_live = self._warpify(live).any(axis=1)
            L.stats.warp_node_visits += int(warp_live.sum())
            self._warp_live_steps += warp_live
            np.add.at(self._visits_per_point, self.pt[useful], 1)
            if self._visit_log is not None:
                lidx = np.nonzero(useful)[0]
                self._visit_log.append((self.pt[lidx].copy(), node[lidx].copy()))
            if self._prof is not None:
                self._prof.sync(L.stats)
                self._prof.note_depth(node, useful)
            charged: Dict[str, np.ndarray] = {}
            trans_before = L.stats.global_transactions
            self._interp(self.kernel.body, live, node, args, charged)
            if self._trace is not None:
                self._trace.record(
                    int(warp_live.sum()),
                    int(useful.sum()),
                    L.stats.global_transactions - trans_before,
                )

    def _run_compiled(self) -> None:
        """Plan-compiled loop: frontier compaction + batched counters."""
        L = self.L
        spec = self.spec
        stats = L.stats
        need_guard = L.needs_guard
        validate = L.validate
        trace = self._trace
        ops = self.program.ops
        variant_keys = [(a.name, f"arg.{a.name}") for a in spec.variant_args]
        steps = 0
        node_visits = np.int64(0)
        warp_node_visits = np.int64(0)
        try:
            while self.stack.any_nonempty():
                self._step += 1
                steps += 1
                if need_guard:
                    # guard reads stats.steps; flush the batch first.
                    stats.steps += steps
                    steps = 0
                    L.guard(self._step, self.stack)
                self._maybe_compact()
                live = self.stack.nonempty()
                popped = self.stack.pop(live, self._step)
                node = popped["node"]
                if validate:
                    validate_popped_nodes(node, live, self.tree.n_nodes, self._step)
                args = {name: popped[key] for name, key in variant_keys}
                args.update(self._invariant_args)
                useful = live & (node >= 0)
                n_useful = useful.sum()
                node_visits += n_useful
                warp_live = self._warpify(live).any(axis=1)
                warp_node_visits += warp_live.sum()
                if self._compacted:
                    self._warp_live_steps[self._warp_ids] += warp_live
                else:
                    self._warp_live_steps += warp_live
                np.add.at(self._visits_per_point, self.pt[useful], 1)
                if self._visit_log is not None:
                    lidx = np.nonzero(useful)[0]
                    self._visit_log.append((self.pt[lidx].copy(), node[lidx].copy()))
                if self._prof is not None:
                    self._prof.sync(stats)
                    self._prof.note_depth(node, useful)
                charged: Dict[str, np.ndarray] = {}
                if trace is not None:
                    trans_before = stats.global_transactions
                    self._run_ops(ops, live, node, args, charged)
                    trace.record(
                        int(warp_live.sum()),
                        int(n_useful),
                        stats.global_transactions - trans_before,
                    )
                else:
                    self._run_ops(ops, live, node, args, charged)
        finally:
            stats.steps += steps
            stats.node_visits += int(node_visits)
            stats.warp_node_visits += int(warp_node_visits)

    def _longest_member_per_warp(self, per_point: np.ndarray) -> np.ndarray:
        padded = np.zeros(self.L.n_threads, dtype=np.int64)
        padded[: self.L.n_points] = per_point
        return padded.reshape(self.L.n_warps, self.ws).max(axis=1)
