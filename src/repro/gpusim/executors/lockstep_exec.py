"""Lockstep executor: per-warp rope stacks with mask bit-vectors.

Implements Section 4.2 / Fig. 8: the whole warp pops one (node, mask)
entry per step, every lane whose mask bit is set works on that node,
truncated lanes clear their bit, and the children are pushed (reversed)
with the combined surviving mask — but only if the warp vote shows at
least one live bit. All lanes load the *same* node, so every partial-
node load coalesces into a single transaction; the price is that the
warp walks the union of its lanes' traversals (work expansion,
Section 6.3).

Guided kernels arrive here only with the call-set-equivalence
annotation applied; their call-set-selecting conditions are evaluated
per lane and resolved by a per-warp **majority vote** (Section 4.3), so
each warp follows a single dynamic call set while disagreeing lanes
simply tag along (their results are unaffected, only their truncation
may come later).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.autoropes import Continue, IterativeKernel, PushGroup
from repro.core.ir import If, Seq, Stmt, Update
from repro.gpusim.cost import CostModel
from repro.gpusim.executors.common import (
    LaunchResult,
    TraversalLaunch,
    validate_popped_nodes,
)
from repro.gpusim.kernel import occupancy_for
from repro.gpusim.stack import RopeStackLayout, StackStorage
from repro.gpusim.trace import StepTrace
from repro.gpusim.warp import majority_vote, pack_mask, unpack_mask


class LockstepExecutor:
    """Runs a lockstep kernel with one stack (and mask) per warp."""

    #: subclasses (the recursive baseline) relax the kernel-kind check
    #: and replace rope-stack accounting with call-frame accounting.
    _require_lockstep = True
    _stack_account = True

    def __init__(self, launch: TraversalLaunch) -> None:
        if self._require_lockstep and not launch.kernel.lockstep:
            raise ValueError("LockstepExecutor requires a lockstep kernel")
        self.L = launch
        self.kernel: IterativeKernel = launch.kernel
        self.spec = launch.kernel.spec
        self.tree = launch.tree
        self.ctx = launch.ctx
        dev = launch.device
        for a in self.spec.variant_args:
            if a.point_dependent:
                raise NotImplementedError(
                    f"variant argument {a.name!r} is point-dependent; "
                    "lockstep stores stack arguments per warp "
                    "(Section 5.2) and so requires warp-uniform values"
                )
        channels: Dict[str, Tuple[np.dtype, int]] = {
            "node": (np.int64, 1),
            "mask": (np.uint64, 1),
        }
        for a in self.spec.variant_args:
            channels[f"arg.{a.name}"] = (a.dtype, 1)
        self.stack = StackStorage(
            n_stacks=launch.n_warps,
            channels=channels,
            layout=launch.stack_layout,
            device=dev,
            allocator=launch.allocator
            if launch.stack_layout is not RopeStackLayout.SHARED
            else None,
            memory=launch.memory,
            stats=launch.stats,
            lanes_per_access=1,
            max_depth=launch.max_stack_depth,
            name="warp_rope_stack",
            account=self._stack_account,
        )
        self.ws = dev.warp_size
        self.pt_grid = launch.thread_points().reshape(launch.n_warps, self.ws)
        self.real = self.pt_grid >= 0
        self._invariant_vals = {
            a.name: np.full(launch.n_warps, a.initial, dtype=a.dtype)
            for a in self.spec.invariant_args
        }
        self._step = 0
        self._lane_useful = np.zeros((launch.n_warps, self.ws), dtype=np.int64)
        self._warp_len = np.zeros(launch.n_warps, dtype=np.int64)
        self._visit_log: Optional[List] = [] if launch.record_visits else None
        self._trace: Optional[StepTrace] = StepTrace() if launch.trace else None

    # -- helpers -------------------------------------------------------------

    def _charge_node_groups(
        self,
        names: Tuple[str, ...],
        warp_on: np.ndarray,
        node: np.ndarray,
        charged: Dict[str, np.ndarray],
    ) -> None:
        """One warp-uniform load per group per warp per visit."""
        for name in names:
            seen = charged.setdefault(name, np.zeros(self.L.n_warps, dtype=bool))
            to_charge = warp_on & ~seen
            if not to_charge.any():
                continue
            region = self.L.regions[name]
            addrs = region.addresses(np.maximum(node, 0))[:, None]
            self.L.stats.bytes_requested += int(to_charge.sum()) * region.itemsize
            self.L.memory.warp_access(
                addrs, region.itemsize, to_charge[:, None], self._step
            )
            seen |= to_charge

    def _eval_cond_lanes(
        self,
        cond,
        live: np.ndarray,
        node: np.ndarray,
        args: Dict[str, np.ndarray],
    ) -> np.ndarray:
        """Evaluate a condition per (warp, lane) for live lanes."""
        out = np.zeros_like(live)
        widx, lidx = np.nonzero(live)
        if len(widx) == 0:
            return out
        pts = self.pt_grid[widx, lidx]
        nodes = node[widx]
        sub_args = {k: v[widx] for k, v in args.items()}
        res = self.spec.eval_condition(cond, self.ctx, nodes, pts, sub_args)
        out[widx, lidx] = res
        return out

    # -- interpreter -----------------------------------------------------------

    def _interp(
        self,
        stmt: Stmt,
        live: np.ndarray,
        warp_on: np.ndarray,
        node: np.ndarray,
        args: Dict[str, np.ndarray],
        charged: Dict[str, np.ndarray],
    ) -> np.ndarray:
        """Interpret under (n_warps, ws) lane-liveness; returns updated
        liveness (Continue clears bits for the rest of the body)."""
        if not live.any():
            return live
        if isinstance(stmt, Seq):
            for s in stmt.stmts:
                live = self._interp(s, live, warp_on, node, args, charged)
            return live
        if isinstance(stmt, Continue):
            return np.zeros_like(live)
        if isinstance(stmt, If):
            self._charge_node_groups(stmt.cond.reads, live.any(axis=1), node, charged)
            self.L.issue.issue(live, stmt.cond.cost)
            cond = self._eval_cond_lanes(stmt.cond, live, node, args)
            if stmt.cond.name in self.kernel.vote_conditions:
                # Dynamic single-call-set: majority vote per warp; all
                # live lanes follow the winning arm (Section 4.3).
                take_then = majority_vote(cond, live)
                self.L.issue.issue(live.any(axis=1)[:, None], 1.0)  # the vote op
                then_live = live & take_then[:, None]
                else_live = live & ~take_then[:, None]
            elif not stmt.cond.point_dependent:
                # Structure-only condition: warp-uniform because the
                # node is shared (no vote needed).
                take_then = majority_vote(cond, live)
                then_live = live & take_then[:, None]
                else_live = live & ~take_then[:, None]
            else:
                # Per-lane predication (truncation-style conditions).
                then_live = live & cond
                else_live = live & ~cond
            out_then = self._interp(stmt.then, then_live, warp_on, node, args, charged)
            if stmt.orelse is not None:
                out_else = self._interp(
                    stmt.orelse, else_live, warp_on, node, args, charged
                )
            else:
                out_else = else_live
            return out_then | out_else
        if isinstance(stmt, Update):
            self._charge_node_groups(stmt.fn.reads, live.any(axis=1), node, charged)
            self.L.issue.issue(live, stmt.fn.cost)
            widx, lidx = np.nonzero(live)
            if len(widx):
                self.spec.eval_update(
                    stmt.fn,
                    self.ctx,
                    node[widx],
                    self.pt_grid[widx, lidx],
                    {k: v[widx] for k, v in args.items()},
                )
            return live
        if isinstance(stmt, PushGroup):
            self._push_group(stmt, live, node, args, charged)
            return live
        raise TypeError(f"cannot interpret {type(stmt).__name__}")

    def _push_group(
        self,
        group: PushGroup,
        live: np.ndarray,
        node: np.ndarray,
        args: Dict[str, np.ndarray],
        charged: Dict[str, np.ndarray],
    ) -> None:
        spec = self.spec
        warp_on = live.any(axis=1)
        if not warp_on.any():
            return
        self._charge_node_groups((spec.child_field_group,), warp_on, node, charged)
        # The combined surviving mask (the Fig. 8 warp_and/ballot step).
        mask_words = pack_mask(live)
        rep = self._representative_pt(live)
        widx = np.nonzero(warp_on)[0]
        sub_args = {k: v[widx] for k, v in args.items()}
        new_args: Dict[str, np.ndarray] = {}
        for a in spec.variant_args:
            if a.update is not None:
                val = spec.eval_arg_rule(
                    a.update, self.ctx, node[widx], rep[widx], sub_args
                )
            else:
                val = sub_args[a.name]
            full = args[a.name].copy()
            full[widx] = val.astype(a.dtype, copy=False)
            new_args[a.name] = full
        for call in group.push_order:
            child = self.tree.child(call.child.name, node)
            push_args = dict(new_args)
            if call.arg_overrides:
                for arg_name, rule in call.arg_overrides:
                    val = spec.eval_arg_rule(
                        rule,
                        self.ctx,
                        node[widx],
                        rep[widx],
                        {k: v[widx] for k, v in new_args.items()},
                    )
                    decl = next(a for a in spec.args if a.name == arg_name)
                    full = push_args[arg_name].copy()
                    full[widx] = val.astype(decl.dtype, copy=False)
                    push_args[arg_name] = full
            if spec.visits_null_children:
                push_mask = warp_on
            else:
                push_mask = warp_on & (child >= 0)
            self.L.issue.issue(warp_on[:, None], 1.0)
            payload: Dict[str, np.ndarray] = {"node": child, "mask": mask_words}
            payload.update({f"arg.{k}": v for k, v in push_args.items()})
            self.stack.push(push_mask, self._step, **payload)

    def _on_visit(
        self, warp_on: np.ndarray, live: np.ndarray, node: np.ndarray
    ) -> None:
        """Per-visit hook for subclasses (no-op for lockstep proper)."""

    def _representative_pt(self, live: np.ndarray) -> np.ndarray:
        """First live lane's point per warp (for warp-uniform rules)."""
        first_lane = np.argmax(live, axis=1)
        rep = self.pt_grid[np.arange(self.L.n_warps), first_lane]
        return np.maximum(rep, 0)

    # -- main loop -----------------------------------------------------------

    def run(self) -> LaunchResult:
        L = self.L
        spec = self.spec
        warp_real = self.real.any(axis=1)
        init: Dict[str, np.ndarray] = {
            "node": np.full(L.n_warps, self.tree.root, dtype=np.int64),
            "mask": pack_mask(self.real),
        }
        for a in spec.variant_args:
            init[f"arg.{a.name}"] = np.full(L.n_warps, a.initial, dtype=a.dtype)
        self.stack.push(warp_real, self._step, **init)

        while self.stack.any_nonempty():
            self._step += 1
            L.stats.steps += 1
            L.guard(self._step, self.stack)
            warp_on = self.stack.nonempty()
            popped = self.stack.pop(warp_on, self._step)
            node = popped["node"]
            validate_popped_nodes(node, warp_on, self.tree.n_nodes, self._step)
            live = unpack_mask(popped["mask"], self.ws) & warp_on[:, None] & self.real
            args = {a.name: popped[f"arg.{a.name}"] for a in spec.variant_args}
            args.update(self._invariant_vals)
            useful = live & (node >= 0)[:, None]
            L.stats.node_visits += int(useful.sum())
            L.stats.warp_node_visits += int(warp_on.sum())
            self._warp_len += warp_on
            self._lane_useful += useful
            if self._visit_log is not None:
                widx, lidx = np.nonzero(useful)
                self._visit_log.append(
                    (self.pt_grid[widx, lidx].copy(), node[widx].copy())
                )
            self._on_visit(warp_on, live, node)
            charged: Dict[str, np.ndarray] = {}
            trans_before = L.stats.global_transactions
            self._interp(self.kernel.body, live, warp_on, node, args, charged)
            if self._trace is not None:
                self._trace.record(
                    int(warp_on.sum()),
                    int(useful.sum()),
                    L.stats.global_transactions - trans_before,
                )

        occ = occupancy_for(L.device, self.stack.shared_bytes_per_group)
        cm = CostModel(L.device)
        imbalance = cm.imbalance_factor(self._warp_len)
        timing = cm.timing(L.stats, occ, imbalance)
        # Table 1's "Avg. # Nodes" for lockstep rows: each point rides
        # along for its whole warp's traversal.
        nodes_per_point = np.repeat(self._warp_len, self.ws)[: L.n_points]
        longest_member = self._lane_useful.max(axis=1)
        return LaunchResult(
            stats=L.stats,
            timing=timing,
            occupancy=occ,
            nodes_per_point=nodes_per_point,
            nodes_per_warp=self._warp_len,
            longest_member_per_warp=longest_member,
            visits=self._visit_log,
            trace=self._trace,
        )
