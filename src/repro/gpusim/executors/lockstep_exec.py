"""Lockstep executor: per-warp rope stacks with mask bit-vectors.

Implements Section 4.2 / Fig. 8: the whole warp pops one (node, mask)
entry per step, every lane whose mask bit is set works on that node,
truncated lanes clear their bit, and the children are pushed (reversed)
with the combined surviving mask — but only if the warp vote shows at
least one live bit. All lanes load the *same* node, so every partial-
node load coalesces into a single transaction; the price is that the
warp walks the union of its lanes' traversals (work expansion,
Section 6.3).

Guided kernels arrive here only with the call-set-equivalence
annotation applied; their call-set-selecting conditions are evaluated
per lane and resolved by a per-warp **majority vote** (Section 4.3), so
each warp follows a single dynamic call set while disagreeing lanes
simply tag along (their results are unaffected, only their truncation
may come later).

Two engines run the same kernel:

* ``engine="compiled"`` (default) executes the plan-compiled linear
  program from :mod:`repro.core.compile` and applies **frontier
  compaction**: once the fraction of non-empty warp stacks drops below
  ``launch.compact_threshold``, the loop gathers the live warps —
  stack rows, point grid, invariant argument values — into compact
  arrays and runs the long tail at frontier width.  Original warp ids
  travel with the rows, so stack addressing, issue accounting, and the
  L2 reuse model see exactly the traffic of the full-width run.
* ``engine="interp"`` keeps the original per-step AST interpreter as
  the differential baseline; ``benchmarks/perf`` and the equivalence
  tests assert the two produce bit-identical simulated stats.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.autoropes import Continue, IterativeKernel, PushGroup
from repro.core.compile import (
    BRANCH_PREDICATE,
    BRANCH_UNIFORM,
    TAG_COND,
    TAG_CONTINUE,
    TAG_PUSH,
    TAG_UPDATE,
    CompiledProgram,
    PushGroupOp,
    program_for,
)
from repro.core.ir import If, Seq, Stmt, Update
from repro.gpusim.cost import CostModel
from repro.gpusim.executors.common import (
    LaunchResult,
    TraversalLaunch,
    validate_popped_nodes,
)
from repro.gpusim.kernel import occupancy_for
from repro.gpusim.stack import RopeStackLayout, StackStorage
from repro.gpusim.trace import StepTrace
from repro.gpusim.warp import majority_vote, pack_mask, unpack_mask

#: never bother gathering fewer rows than this away (the gather itself
#: costs more than the savings on a handful of warps).
MIN_COMPACT_ROWS = 8


class LockstepExecutor:
    """Runs a lockstep kernel with one stack (and mask) per warp."""

    #: subclasses (the recursive baseline) relax the kernel-kind check
    #: and replace rope-stack accounting with call-frame accounting.
    _require_lockstep = True
    _stack_account = True
    #: whether ``engine="codegen"`` can run this executor class; classes
    #: that override the main loop itself opt out and fall back to the
    #: compiled walker (``codegen_fallback`` records that on instances).
    _codegen_supported = True

    def __init__(self, launch: TraversalLaunch) -> None:
        if self._require_lockstep and not launch.kernel.lockstep:
            raise ValueError("LockstepExecutor requires a lockstep kernel")
        self.L = launch
        self.kernel: IterativeKernel = launch.kernel
        self.spec = launch.kernel.spec
        self.tree = launch.tree
        self.ctx = launch.ctx
        dev = launch.device
        for a in self.spec.variant_args:
            if a.point_dependent:
                raise NotImplementedError(
                    f"variant argument {a.name!r} is point-dependent; "
                    "lockstep stores stack arguments per warp "
                    "(Section 5.2) and so requires warp-uniform values"
                )
        channels: Dict[str, Tuple[np.dtype, int]] = {
            "node": (np.int64, 1),
            "mask": (np.uint64, 1),
        }
        for a in self.spec.variant_args:
            channels[f"arg.{a.name}"] = (a.dtype, 1)
        self.stack = StackStorage(
            n_stacks=launch.n_warps,
            channels=channels,
            layout=launch.stack_layout,
            device=dev,
            allocator=launch.allocator
            if launch.stack_layout is not RopeStackLayout.SHARED
            else None,
            memory=launch.memory,
            stats=launch.stats,
            lanes_per_access=1,
            max_depth=launch.max_stack_depth,
            name="warp_rope_stack",
            account=self._stack_account,
        )
        self.ws = dev.warp_size
        self.pt_grid = launch.thread_points().reshape(launch.n_warps, self.ws)
        self.real = self.pt_grid >= 0
        self._invariant_vals = {
            a.name: np.full(launch.n_warps, a.initial, dtype=a.dtype)
            for a in self.spec.invariant_args
        }
        self._step = 0
        self._lane_useful = np.zeros((launch.n_warps, self.ws), dtype=np.int64)
        self._warp_len = np.zeros(launch.n_warps, dtype=np.int64)
        self._visit_log: Optional[List] = [] if launch.record_visits else None
        self._trace: Optional[StepTrace] = StepTrace() if launch.trace else None
        #: per-op cost attribution for sampled launches (None = off).
        self._prof = launch.op_profile
        #: original warp id of each current row; identity until frontier
        #: compaction gathers rows.  ``_compacted`` doubles as the "pass
        #: warp_ids to the issue accountant" switch so the uncompacted
        #: path pays no indirection.
        self._warp_ids = np.arange(launch.n_warps, dtype=np.int64)
        self._compacted = False
        self.program: Optional[CompiledProgram] = (
            program_for(self.kernel)
            if launch.engine in ("compiled", "codegen")
            else None
        )
        #: set when engine="codegen" was requested but this executor
        #: class cannot run generated loops (it ran compiled instead).
        self.codegen_fallback = (
            launch.engine == "codegen" and not self._codegen_supported
        )

    # -- helpers -------------------------------------------------------------

    def _issue_ids(self) -> Optional[np.ndarray]:
        return self._warp_ids if self._compacted else None

    def _charge_node_groups(
        self,
        names: Tuple[str, ...],
        warp_on: np.ndarray,
        node: np.ndarray,
        charged: Dict[str, np.ndarray],
    ) -> None:
        """One warp-uniform load per group per warp per visit."""
        safe_node = None
        for name in names:
            seen = charged.get(name)
            if seen is None:
                seen = charged[name] = np.zeros(len(node), dtype=bool)
            to_charge = warp_on & ~seen
            if not to_charge.any():
                continue
            if safe_node is None:
                # The clamped node array is identical across groups and
                # across the ops of one step; memoize it per step.
                safe_node = charged.get("__safe_node")
                if safe_node is None:
                    safe_node = np.maximum(node, 0)
                    charged["__safe_node"] = safe_node
            region = self.L.regions[name]
            addrs = region.addresses(safe_node)[:, None]
            self.L.stats.bytes_requested += int(to_charge.sum()) * region.itemsize
            self.L.memory.warp_access(
                addrs, region.itemsize, to_charge[:, None], self._step
            )
            seen |= to_charge

    def _eval_cond_lanes(
        self,
        fn,
        live: np.ndarray,
        node: np.ndarray,
        args: Dict[str, np.ndarray],
    ) -> np.ndarray:
        """Evaluate a condition per (warp, lane) for live lanes.

        Conditions are pure row-wise predicates, so when most lanes are
        live it is cheaper to evaluate the full grid and mask (skipping
        the nonzero/gather/scatter round trip) — each lane's result is
        identical either way, dead lanes are simply discarded.  The
        dense path belongs to the compiled engine; ``engine="interp"``
        keeps the seed's gather/scatter evaluation throughout.
        """
        n_live = int(live.sum())
        if n_live == 0:
            return np.zeros_like(live)
        if self.program is not None and 20 * n_live >= 19 * live.size:
            ws = live.shape[1]
            res = fn(
                self.ctx,
                np.repeat(node, ws),
                self.pt_grid.ravel(),
                {k: np.repeat(v, ws) for k, v in args.items()},
            )
            return np.asarray(res, dtype=bool).reshape(live.shape) & live
        out = np.zeros_like(live)
        widx, lidx = np.nonzero(live)
        pts = self.pt_grid[widx, lidx]
        nodes = node[widx]
        sub_args = {k: v[widx] for k, v in args.items()}
        res = fn(self.ctx, nodes, pts, sub_args)
        out[widx, lidx] = np.asarray(res, dtype=bool)
        return out

    def _eval_cond_warps(
        self,
        fn,
        warp_on: np.ndarray,
        live: np.ndarray,
        node: np.ndarray,
        args: Dict[str, np.ndarray],
    ) -> np.ndarray:
        """Evaluate a point-independent condition once per live warp.

        The result per warp equals what every live lane of that warp
        would compute (the condition ignores the point and the node is
        warp-uniform), so this replaces the interpreter's
        evaluate-per-lane-then-vote with a single row-level call.  Warps
        with no live lanes report ``False``, matching the vote's
        no-voters outcome.
        """
        take = np.zeros(live.shape[0], dtype=bool)
        widx = np.nonzero(warp_on)[0]
        if len(widx) == 0:
            return take
        rep = self._representative_pt(live)
        res = fn(
            self.ctx,
            node[widx],
            rep[widx],
            {k: v[widx] for k, v in args.items()},
        )
        take[widx] = np.asarray(res, dtype=bool)
        return take

    # -- interpreter (engine="interp": the differential baseline) -----------

    def _interp(
        self,
        stmt: Stmt,
        live: np.ndarray,
        warp_on: np.ndarray,
        node: np.ndarray,
        args: Dict[str, np.ndarray],
        charged: Dict[str, np.ndarray],
    ) -> np.ndarray:
        """Interpret under (n_warps, ws) lane-liveness; returns updated
        liveness (Continue clears bits for the rest of the body)."""
        if not live.any():
            return live
        if isinstance(stmt, Seq):
            for s in stmt.stmts:
                live = self._interp(s, live, warp_on, node, args, charged)
            return live
        if isinstance(stmt, Continue):
            return np.zeros_like(live)
        if isinstance(stmt, If):
            self._charge_node_groups(stmt.cond.reads, live.any(axis=1), node, charged)
            self.L.issue.issue(live, stmt.cond.cost)
            cond = self._eval_cond_lanes(
                self.spec.conditions[stmt.cond.name], live, node, args
            )
            if stmt.cond.name in self.kernel.vote_conditions:
                # Dynamic single-call-set: majority vote per warp; all
                # live lanes follow the winning arm (Section 4.3).
                take_then = majority_vote(cond, live)
                self.L.issue.issue(live.any(axis=1)[:, None], 1.0)  # the vote op
                then_live = live & take_then[:, None]
                else_live = live & ~take_then[:, None]
            elif not stmt.cond.point_dependent:
                # Structure-only condition: warp-uniform because the
                # node is shared (no vote needed).
                take_then = majority_vote(cond, live)
                then_live = live & take_then[:, None]
                else_live = live & ~take_then[:, None]
            else:
                # Per-lane predication (truncation-style conditions).
                then_live = live & cond
                else_live = live & ~cond
            if self._prof is not None:
                # The condition's own cost ends here; branch bodies
                # attribute to their own ops.
                self._prof.note(stmt, self.L.stats)
            out_then = self._interp(stmt.then, then_live, warp_on, node, args, charged)
            if stmt.orelse is not None:
                out_else = self._interp(
                    stmt.orelse, else_live, warp_on, node, args, charged
                )
            else:
                out_else = else_live
            return out_then | out_else
        if isinstance(stmt, Update):
            self._charge_node_groups(stmt.fn.reads, live.any(axis=1), node, charged)
            self.L.issue.issue(live, stmt.fn.cost)
            widx, lidx = np.nonzero(live)
            if len(widx):
                self.spec.eval_update(
                    stmt.fn,
                    self.ctx,
                    node[widx],
                    self.pt_grid[widx, lidx],
                    {k: v[widx] for k, v in args.items()},
                )
            if self._prof is not None:
                self._prof.note(stmt, self.L.stats)
            return live
        if isinstance(stmt, PushGroup):
            self._push_group(stmt, live, node, args, charged)
            if self._prof is not None:
                self._prof.note(stmt, self.L.stats)
            return live
        raise TypeError(f"cannot interpret {type(stmt).__name__}")

    def _push_group(
        self,
        group: PushGroup,
        live: np.ndarray,
        node: np.ndarray,
        args: Dict[str, np.ndarray],
        charged: Dict[str, np.ndarray],
    ) -> None:
        spec = self.spec
        warp_on = live.any(axis=1)
        if not warp_on.any():
            return
        self._charge_node_groups((spec.child_field_group,), warp_on, node, charged)
        # The combined surviving mask (the Fig. 8 warp_and/ballot step).
        mask_words = pack_mask(live)
        rep = self._representative_pt(live)
        widx = np.nonzero(warp_on)[0]
        sub_args = {k: v[widx] for k, v in args.items()}
        new_args: Dict[str, np.ndarray] = {}
        for a in spec.variant_args:
            if a.update is not None:
                val = spec.eval_arg_rule(
                    a.update, self.ctx, node[widx], rep[widx], sub_args
                )
            else:
                val = sub_args[a.name]
            full = args[a.name].copy()
            full[widx] = val.astype(a.dtype, copy=False)
            new_args[a.name] = full
        for call in group.push_order:
            child = self.tree.child(call.child.name, node)
            push_args = dict(new_args)
            if call.arg_overrides:
                for arg_name, rule in call.arg_overrides:
                    val = spec.eval_arg_rule(
                        rule,
                        self.ctx,
                        node[widx],
                        rep[widx],
                        {k: v[widx] for k, v in new_args.items()},
                    )
                    decl = next(a for a in spec.args if a.name == arg_name)
                    full = push_args[arg_name].copy()
                    full[widx] = val.astype(decl.dtype, copy=False)
                    push_args[arg_name] = full
            if spec.visits_null_children:
                push_mask = warp_on
            else:
                push_mask = warp_on & (child >= 0)
            self.L.issue.issue(warp_on[:, None], 1.0)
            payload: Dict[str, np.ndarray] = {"node": child, "mask": mask_words}
            payload.update({f"arg.{k}": v for k, v in push_args.items()})
            self.stack.push(push_mask, self._step, **payload)

    # -- compiled program walker (engine="compiled") -------------------------

    def _run_ops(
        self,
        ops: Tuple,
        live: np.ndarray,
        node: np.ndarray,
        args: Dict[str, np.ndarray],
        charged: Dict[str, np.ndarray],
    ) -> "np.ndarray | None":
        # Returns the surviving live mask, or ``None`` for "no
        # survivors" — a ``Continue`` (and any branch that ran dry)
        # reports None instead of allocating an all-False grid, so the
        # caller's merge skips the OR entirely.  Simulated stats are
        # untouched: an all-False operand contributes nothing.
        issue = self.L.issue.issue
        ids = self._issue_ids()
        for op in ops:
            if not live.any():
                return None
            tag = op.tag
            if tag == TAG_COND:
                branch = op.branch
                if branch == BRANCH_UNIFORM:
                    # Point-independent condition: one evaluation per
                    # warp instead of per lane.  Every live lane of a
                    # warp shares the node, so the per-lane vote the
                    # interpreter takes is a foregone conclusion — the
                    # warp-level result is identical by construction.
                    warp_on = live.any(axis=1)
                    if op.reads:
                        self._charge_node_groups(op.reads, warp_on, node, charged)
                    issue(live, op.cost, warp_ids=ids)
                    take_then = self._eval_cond_warps(
                        op.fn, warp_on, live, node, args
                    )
                    then_live = live & take_then[:, None]
                    else_live = live & ~take_then[:, None]
                else:
                    if op.reads:
                        self._charge_node_groups(
                            op.reads, live.any(axis=1), node, charged
                        )
                    issue(live, op.cost, warp_ids=ids)
                    cond = self._eval_cond_lanes(op.fn, live, node, args)
                    if branch == BRANCH_PREDICATE:
                        # cond is already masked to live lanes, so the
                        # complement is a single XOR instead of an
                        # invert + AND.
                        then_live = cond
                        else_live = live ^ cond
                    else:
                        take_then = majority_vote(cond, live)
                        issue(live.any(axis=1)[:, None], 1.0)  # the vote op
                        then_live = live & take_then[:, None]
                        else_live = live & ~take_then[:, None]
                if self._prof is not None:
                    self._prof.note(op, self.L.stats)
                out_then = self._run_ops(op.then_ops, then_live, node, args, charged)
                if op.else_ops is not None:
                    out_else = self._run_ops(
                        op.else_ops, else_live, node, args, charged
                    )
                else:
                    out_else = else_live
                if out_then is None:
                    if out_else is None:
                        return None
                    live = out_else
                elif out_else is None:
                    live = out_then
                else:
                    live = out_then | out_else
            elif tag == TAG_UPDATE:
                if op.reads:
                    self._charge_node_groups(
                        op.reads, live.any(axis=1), node, charged
                    )
                issue(live, op.cost, warp_ids=ids)
                widx, lidx = np.nonzero(live)
                if len(widx):
                    op.fn(
                        self.ctx,
                        node[widx],
                        self.pt_grid[widx, lidx],
                        {k: v[widx] for k, v in args.items()},
                    )
                if self._prof is not None:
                    self._prof.note(op, self.L.stats)
            elif tag == TAG_PUSH:
                self._push_group_op(op, live, node, args, charged)
                if self._prof is not None:
                    self._prof.note(op, self.L.stats)
            else:  # TAG_CONTINUE
                return None
        return live

    def _push_group_op(
        self,
        op: PushGroupOp,
        live: np.ndarray,
        node: np.ndarray,
        args: Dict[str, np.ndarray],
        charged: Dict[str, np.ndarray],
    ) -> None:
        warp_on = live.any(axis=1)
        if not warp_on.any():
            return
        if op.child_group:
            self._charge_node_groups(op.child_group, warp_on, node, charged)
        mask_words = pack_mask(live)
        if op.needs_rules:
            rep = self._representative_pt(live)
            widx = np.nonzero(warp_on)[0]
            sub_args = {k: v[widx] for k, v in args.items()}
            # Pushes only read rows where push_mask is set (a subset of
            # widx), so rule outputs scatter into empty_like scratch
            # instead of the interpreter's full-array copies — the
            # values the stack stores are identical.
            new_full: Dict[str, np.ndarray] = {}
            new_sub: Dict[str, np.ndarray] = dict(sub_args)
            for r in op.variant_rules:
                if r.rule is None:
                    new_full[r.name] = args[r.name]
                else:
                    val = np.asarray(
                        r.rule(self.ctx, node[widx], rep[widx], sub_args)
                    )
                    val = val.astype(r.dtype, copy=False)
                    full = np.empty_like(args[r.name])
                    full[widx] = val
                    new_full[r.name] = full
                    new_sub[r.name] = val
        else:
            # Every variant arg is carried through unchanged (or there
            # are none): no representative point, no row subset, no
            # rule evaluation — the pushed values are the popped ones.
            new_full = {r.name: args[r.name] for r in op.variant_rules}
        issue = self.L.issue.issue
        warp_on_col = warp_on[:, None]
        for call in op.calls:
            child = self.tree.child(call.child, node)
            push_full = new_full
            if call.overrides:
                push_full = dict(new_full)
                for r in call.overrides:
                    val = np.asarray(
                        r.rule(self.ctx, node[widx], rep[widx], new_sub)
                    ).astype(r.dtype, copy=False)
                    full = np.empty_like(new_full[r.name])
                    full[widx] = val
                    push_full[r.name] = full
            if op.visits_null:
                push_mask = warp_on
            else:
                push_mask = warp_on & (child >= 0)
            issue(warp_on_col, 1.0)
            payload: Dict[str, np.ndarray] = {"node": child, "mask": mask_words}
            for k, v in push_full.items():
                payload[f"arg.{k}"] = v
            self.stack.push(push_mask, self._step, **payload)

    # -- frontier compaction -------------------------------------------------

    def _compact_rows(self, sel: np.ndarray) -> None:
        """Gather executor state down to the selected warp rows."""
        self.stack.compact(sel)
        self.pt_grid = self.pt_grid[sel]
        self.real = self.real[sel]
        self._warp_ids = self._warp_ids[sel]
        self._invariant_vals = {
            k: v[sel] for k, v in self._invariant_vals.items()
        }
        self._compacted = True

    def _on_visit(
        self, warp_on: np.ndarray, live: np.ndarray, node: np.ndarray
    ) -> None:
        """Per-visit hook for subclasses (no-op for lockstep proper)."""

    def _representative_pt(self, live: np.ndarray) -> np.ndarray:
        """First live lane's point per warp (for warp-uniform rules)."""
        first_lane = np.argmax(live, axis=1)
        rep = self.pt_grid[np.arange(live.shape[0]), first_lane]
        return np.maximum(rep, 0)

    # -- main loop -----------------------------------------------------------

    def run(self) -> LaunchResult:
        L = self.L
        spec = self.spec
        warp_real = self.real.any(axis=1)
        init: Dict[str, np.ndarray] = {
            "node": np.full(L.n_warps, self.tree.root, dtype=np.int64),
            "mask": pack_mask(self.real),
        }
        for a in spec.variant_args:
            init[f"arg.{a.name}"] = np.full(L.n_warps, a.initial, dtype=a.dtype)
        self.stack.push(warp_real, self._step, **init)

        if L.engine == "codegen" and self._codegen_supported:
            from repro.core.passes import step_loop_for

            step_loop_for(self, "lockstep")(self)
        elif self.program is not None:
            self._run_compiled()
        else:
            self._run_interp()

        occ = occupancy_for(L.device, self.stack.shared_bytes_per_group)
        cm = CostModel(L.device)
        imbalance = cm.imbalance_factor(self._warp_len)
        timing = cm.timing(L.stats, occ, imbalance)
        # Table 1's "Avg. # Nodes" for lockstep rows: each point rides
        # along for its whole warp's traversal.
        nodes_per_point = np.repeat(self._warp_len, self.ws)[: L.n_points]
        longest_member = self._lane_useful.max(axis=1)
        return LaunchResult(
            stats=L.stats,
            timing=timing,
            occupancy=occ,
            nodes_per_point=nodes_per_point,
            nodes_per_warp=self._warp_len,
            longest_member_per_warp=longest_member,
            visits=self._visit_log,
            trace=self._trace,
        )

    def _run_interp(self) -> None:
        """Original full-width AST-interpreting loop (baseline engine)."""
        L = self.L
        spec = self.spec
        need_guard = L.needs_guard
        validate = L.validate
        while self.stack.any_nonempty():
            self._step += 1
            L.stats.steps += 1
            if need_guard:
                L.guard(self._step, self.stack)
            warp_on = self.stack.nonempty()
            popped = self.stack.pop(warp_on, self._step)
            node = popped["node"]
            if validate:
                validate_popped_nodes(node, warp_on, self.tree.n_nodes, self._step)
            live = unpack_mask(popped["mask"], self.ws) & warp_on[:, None] & self.real
            args = {a.name: popped[f"arg.{a.name}"] for a in spec.variant_args}
            args.update(self._invariant_vals)
            useful = live & (node >= 0)[:, None]
            L.stats.node_visits += int(useful.sum())
            L.stats.warp_node_visits += int(warp_on.sum())
            self._warp_len += warp_on
            self._lane_useful += useful
            if self._visit_log is not None:
                widx, lidx = np.nonzero(useful)
                self._visit_log.append(
                    (self.pt_grid[widx, lidx].copy(), node[widx].copy())
                )
            self._on_visit(warp_on, live, node)
            if self._prof is not None:
                # Pop/loop costs since the previous op mark belong to
                # step overhead, not to the first op of this body.
                self._prof.sync(L.stats)
                self._prof.note_depth(
                    node, warp_on & (node >= 0), useful.sum(axis=1)
                )
            charged: Dict[str, np.ndarray] = {}
            trans_before = L.stats.global_transactions
            self._interp(self.kernel.body, live, warp_on, node, args, charged)
            if self._trace is not None:
                self._trace.record(
                    int(warp_on.sum()),
                    int(useful.sum()),
                    L.stats.global_transactions - trans_before,
                )

    def _run_compiled(self) -> None:
        """Plan-compiled loop: frontier compaction + batched counters."""
        L = self.L
        spec = self.spec
        stats = L.stats
        need_guard = L.needs_guard
        validate = L.validate
        trace = self._trace
        ops = self.program.ops
        variant_keys = [(a.name, f"arg.{a.name}") for a in spec.variant_args]
        # Scalar counters accumulate numpy-side; one int() each at exit.
        steps = 0
        node_visits = np.int64(0)
        warp_node_visits = np.int64(0)
        threshold = L.compact_threshold
        try:
            while True:
                # One `sp > 0` scan per step serves loop exit, the
                # compaction trigger, and the pop mask alike.
                warp_on = self.stack.sp > 0
                n_on = int(warp_on.sum())
                if n_on == 0:
                    break
                self._step += 1
                steps += 1
                if need_guard:
                    # The guard reads stats.steps (stuck-warp budget
                    # arithmetic), so flush the batched counter first.
                    stats.steps += steps
                    steps = 0
                    L.guard(self._step, self.stack)
                    warp_on = self.stack.sp > 0
                    n_on = int(warp_on.sum())
                if (
                    threshold > 0.0
                    and self.stack.n_stacks >= MIN_COMPACT_ROWS
                    and n_on < self.stack.n_stacks * threshold
                ):
                    self._compact_rows(np.nonzero(warp_on)[0])
                    warp_on = self.stack.sp > 0
                popped = self.stack.pop(warp_on, self._step)
                node = popped["node"]
                if validate:
                    validate_popped_nodes(
                        node, warp_on, self.tree.n_nodes, self._step
                    )
                live = (
                    unpack_mask(popped["mask"], self.ws)
                    & warp_on[:, None]
                    & self.real
                )
                args = {name: popped[key] for name, key in variant_keys}
                args.update(self._invariant_vals)
                useful = live & (node >= 0)[:, None]
                n_useful = useful.sum()
                node_visits += n_useful
                warp_node_visits += warp_on.sum()
                if self._compacted:
                    self._warp_len[self._warp_ids] += warp_on
                    self._lane_useful[self._warp_ids] += useful
                else:
                    self._warp_len += warp_on
                    self._lane_useful += useful
                if self._visit_log is not None:
                    widx, lidx = np.nonzero(useful)
                    self._visit_log.append(
                        (self.pt_grid[widx, lidx].copy(), node[widx].copy())
                    )
                self._on_visit(warp_on, live, node)
                if self._prof is not None:
                    self._prof.sync(stats)
                    self._prof.note_depth(
                        node, warp_on & (node >= 0), useful.sum(axis=1)
                    )
                charged: Dict[str, np.ndarray] = {}
                if trace is not None:
                    trans_before = stats.global_transactions
                    self._run_ops(ops, live, node, args, charged)
                    trace.record(
                        int(warp_on.sum()),
                        int(n_useful),
                        stats.global_transactions - trans_before,
                    )
                else:
                    self._run_ops(ops, live, node, args, charged)
        finally:
            stats.steps += steps
            stats.node_visits += int(node_visits)
            stats.warp_node_visits += int(warp_node_visits)
