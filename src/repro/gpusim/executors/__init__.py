"""Executors: run transformed traversal kernels on the simulated GPU.

* :mod:`repro.gpusim.executors.common` — launch plumbing shared by all
  executors (region setup, per-group load accounting, run results).
* :mod:`repro.gpusim.executors.autoropes_exec` — per-thread rope
  stacks; threads traverse independently (the non-lockstep variant).
* :mod:`repro.gpusim.executors.lockstep_exec` — per-warp rope stacks
  with mask bit-vectors and warp votes (Section 4).
* :mod:`repro.gpusim.executors.recursive_exec` — the naive baseline:
  CUDA-style recursion with function-call frames in (device) local
  memory, in masked ("lockstep") and unmasked flavors (Section 6.1).
"""

from repro.gpusim.executors.common import LaunchResult, TraversalLaunch
from repro.gpusim.executors.autoropes_exec import AutoropesExecutor
from repro.gpusim.executors.lockstep_exec import LockstepExecutor
from repro.gpusim.executors.recursive_exec import RecursiveExecutor
from repro.gpusim.executors.ropes_exec import StaticRopesExecutor

__all__ = [
    "LaunchResult",
    "TraversalLaunch",
    "AutoropesExecutor",
    "LockstepExecutor",
    "RecursiveExecutor",
    "StaticRopesExecutor",
]
