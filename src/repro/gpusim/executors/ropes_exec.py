"""Stackless executor over statically preinstalled ropes.

The hand-coded baseline autoropes generalizes (Section 3.1): ropes are
installed into the tree by a preprocessing pass (:mod:`repro.trees
.ropes`), and each thread traverses by following either the descend
pointer (first child, ``n + 1`` in the preorder layout) or the rope —
no stack, no stack traffic. The trade-offs the paper describes fall out
directly:

* it only works for **unguided** traversals (one canonical order — a
  guided traversal would need multiple rope sets and application
  knowledge to choose between them);
* it requires preprocessing the tree (``install_ropes``);
* in exchange, per-visit overhead drops below autoropes (whose rope
  stack costs pushes and pops), quantifying the "slightly more
  overhead than the hand-coded version (due to stack manipulation)"
  the paper concedes for its general transformation.

Like its parent, the default ``engine="compiled"`` walks the
plan-compiled op program and compacts the frontier at warp granularity
— here there is no stack to gather, only the node/active cursors, point
ids, and the descend scratch.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.autoropes import PushGroup
from repro.core.compile import PushGroupOp
from repro.gpusim.cost import CostModel
from repro.gpusim.executors.autoropes_exec import (
    MIN_COMPACT_GROUPS,
    AutoropesExecutor,
)
from repro.gpusim.executors.common import LaunchResult, TraversalLaunch
from repro.gpusim.kernel import occupancy_for
from repro.trees.ropes import first_children, install_ropes


class StaticRopesExecutor(AutoropesExecutor):
    """Per-thread stackless traversal via preinstalled ropes."""

    #: the stackless loop is bespoke (no rope stack, descend scratch);
    #: codegen launches fall back to the compiled walker here.
    _codegen_supported = False

    def __init__(self, launch: TraversalLaunch) -> None:
        super().__init__(launch)
        kernel = launch.kernel
        if not kernel.analysis.unguided:
            raise ValueError(
                "static ropes require an unguided traversal (a single "
                "canonical order); guided algorithms need application-"
                "specific rope sets, which is the point of autoropes"
            )
        if kernel.spec.variant_args:
            raise ValueError(
                "static ropes cannot carry traversal-variant arguments "
                "(there is no stack to put them on); derive them from "
                "node payload instead"
            )
        # Preprocessing pass (the cost the paper's approach avoids).
        if "rope" not in self.tree.arrays:
            install_ropes(self.tree)
        self._rope = self.tree.arrays["rope"]
        self._first_child = first_children(self.tree)
        # Disable the (unused) rope stack's accounting.
        self.stack.account = False
        self._descend = np.zeros(launch.n_threads, dtype=bool)

    def _push_group(self, group: PushGroup, live, node, args, charged) -> None:
        """Reaching the push point means 'visit my children': in the
        stackless scheme that is a descend to the first child."""
        self._charge_groups((self.spec.child_field_group,), live, node, charged)
        self.L.issue.issue(self._warpify(live), 1.0)
        has_child = self._first_child[np.maximum(node, 0)] >= 0
        self._descend |= live & has_child

    def _push_group_op(self, op: PushGroupOp, live, node, args, charged) -> None:
        self._charge_groups(op.child_group, live, node, charged)
        self.L.issue.issue(self._warpify(live), 1.0, warp_ids=self._issue_ids())
        has_child = self._first_child[np.maximum(node, 0)] >= 0
        self._descend |= live & has_child

    # -- frontier compaction (no stack: gather the loop cursors) ------------

    def _compact_ropes(self, node, active):
        threshold = self.L.compact_threshold
        groups = len(node) // self.ws
        if threshold <= 0.0 or groups < MIN_COMPACT_GROUPS:
            return node, active
        grp_live = self._warpify(active).any(axis=1)
        n_live = int(grp_live.sum())
        if n_live >= groups * threshold:
            return node, active
        sel = np.nonzero(grp_live)[0]
        rows = (sel[:, None] * self.ws + np.arange(self.ws)).ravel()
        self.pt = self.pt[rows]
        self._invariant_args = {
            k: v[rows] for k, v in self._invariant_args.items()
        }
        self._warp_ids = self._warp_ids[sel]
        self._descend = self._descend[rows]
        self._compacted = True
        return node[rows], active[rows]

    # -- main loop -----------------------------------------------------------

    def run(self) -> LaunchResult:
        L = self.L
        real = self.pt >= 0
        node = np.full(L.n_threads, -1, dtype=np.int64)
        node[real] = self.tree.root
        active = real.copy()

        if self.program is not None:
            self._loop_compiled(node, active)
        else:
            self._loop_interp(node, active)

        occ = occupancy_for(L.device, 0)
        cm = CostModel(L.device)
        imbalance = cm.imbalance_factor(self._warp_live_steps)
        timing = cm.timing(L.stats, occ, imbalance)
        per_point = self._visits_per_point
        return LaunchResult(
            stats=L.stats,
            timing=timing,
            occupancy=occ,
            nodes_per_point=per_point,
            nodes_per_warp=self._warp_live_steps,
            longest_member_per_warp=self._longest_member_per_warp(per_point),
            visits=self._visit_log,
            trace=self._trace,
        )

    def _loop_interp(self, node: np.ndarray, active: np.ndarray) -> None:
        """Original full-width AST-interpreting loop (baseline engine)."""
        L = self.L
        need_guard = L.needs_guard
        args = dict(self._invariant_args)
        while active.any():
            self._step += 1
            L.stats.steps += 1
            if need_guard:
                L.guard(self._step)  # stackless: watchdog/faults, no stack hook
            L.stats.node_visits += int(active.sum())
            warp_live = self._warpify(active).any(axis=1)
            L.stats.warp_node_visits += int(warp_live.sum())
            self._warp_live_steps += warp_live
            np.add.at(self._visits_per_point, self.pt[active], 1)
            if self._visit_log is not None:
                idx = np.nonzero(active)[0]
                self._visit_log.append((self.pt[idx].copy(), node[idx].copy()))
            if self._trace is not None:
                trans_before = L.stats.global_transactions

            charged: Dict[str, np.ndarray] = {}
            self._descend[:] = False
            self._interp(self.kernel.body, active, node, args, charged)

            # Next node: first child when descending, rope otherwise.
            # The rope lives in the child-pointer record, so reading it
            # is covered by the cold-group charge of the visit.
            nxt = np.where(
                self._descend,
                self._first_child[np.maximum(node, 0)],
                self._rope[np.maximum(node, 0)],
            )
            self.L.issue.issue(self._warpify(active), 1.0)
            node = np.where(active, nxt, -1)
            if self._trace is not None:
                self._trace.record(
                    int(warp_live.sum()),
                    int(active.sum()),
                    L.stats.global_transactions - trans_before,
                )
            active = active & (node >= 0)

    def _loop_compiled(self, node: np.ndarray, active: np.ndarray) -> None:
        """Plan-compiled loop: frontier compaction + batched counters."""
        L = self.L
        stats = L.stats
        need_guard = L.needs_guard
        trace = self._trace
        ops = self.program.ops
        steps = 0
        node_visits = np.int64(0)
        warp_node_visits = np.int64(0)
        try:
            while active.any():
                self._step += 1
                steps += 1
                if need_guard:
                    stats.steps += steps
                    steps = 0
                    L.guard(self._step)
                node, active = self._compact_ropes(node, active)
                n_active = active.sum()
                node_visits += n_active
                warp_live = self._warpify(active).any(axis=1)
                warp_node_visits += warp_live.sum()
                if self._compacted:
                    self._warp_live_steps[self._warp_ids] += warp_live
                else:
                    self._warp_live_steps += warp_live
                np.add.at(self._visits_per_point, self.pt[active], 1)
                if self._visit_log is not None:
                    idx = np.nonzero(active)[0]
                    self._visit_log.append(
                        (self.pt[idx].copy(), node[idx].copy())
                    )
                if trace is not None:
                    trans_before = stats.global_transactions

                charged: Dict[str, np.ndarray] = {}
                self._descend[:] = False
                self._run_ops(ops, active, node, dict(self._invariant_args), charged)

                nxt = np.where(
                    self._descend,
                    self._first_child[np.maximum(node, 0)],
                    self._rope[np.maximum(node, 0)],
                )
                self.L.issue.issue(
                    self._warpify(active), 1.0, warp_ids=self._issue_ids()
                )
                node = np.where(active, nxt, -1)
                if trace is not None:
                    trace.record(
                        int(warp_live.sum()),
                        int(n_active),
                        stats.global_transactions - trans_before,
                    )
                active = active & (node >= 0)
        finally:
            stats.steps += steps
            stats.node_visits += int(node_visits)
            stats.warp_node_visits += int(warp_node_visits)
