"""Stackless executor over statically preinstalled ropes.

The hand-coded baseline autoropes generalizes (Section 3.1): ropes are
installed into the tree by a preprocessing pass (:mod:`repro.trees
.ropes`), and each thread traverses by following either the descend
pointer (first child, ``n + 1`` in the preorder layout) or the rope —
no stack, no stack traffic. The trade-offs the paper describes fall out
directly:

* it only works for **unguided** traversals (one canonical order — a
  guided traversal would need multiple rope sets and application
  knowledge to choose between them);
* it requires preprocessing the tree (``install_ropes``);
* in exchange, per-visit overhead drops below autoropes (whose rope
  stack costs pushes and pops), quantifying the "slightly more
  overhead than the hand-coded version (due to stack manipulation)"
  the paper concedes for its general transformation.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.autoropes import PushGroup
from repro.gpusim.cost import CostModel
from repro.gpusim.executors.autoropes_exec import AutoropesExecutor
from repro.gpusim.executors.common import LaunchResult, TraversalLaunch
from repro.gpusim.kernel import occupancy_for
from repro.trees.ropes import first_children, install_ropes


class StaticRopesExecutor(AutoropesExecutor):
    """Per-thread stackless traversal via preinstalled ropes."""

    def __init__(self, launch: TraversalLaunch) -> None:
        super().__init__(launch)
        kernel = launch.kernel
        if not kernel.analysis.unguided:
            raise ValueError(
                "static ropes require an unguided traversal (a single "
                "canonical order); guided algorithms need application-"
                "specific rope sets, which is the point of autoropes"
            )
        if kernel.spec.variant_args:
            raise ValueError(
                "static ropes cannot carry traversal-variant arguments "
                "(there is no stack to put them on); derive them from "
                "node payload instead"
            )
        # Preprocessing pass (the cost the paper's approach avoids).
        if "rope" not in self.tree.arrays:
            install_ropes(self.tree)
        self._rope = self.tree.arrays["rope"]
        self._first_child = first_children(self.tree)
        # Disable the (unused) rope stack's accounting.
        self.stack.account = False
        self._descend = np.zeros(launch.n_threads, dtype=bool)

    def _push_group(self, group: PushGroup, live, node, args, charged) -> None:
        """Reaching the push point means 'visit my children': in the
        stackless scheme that is a descend to the first child."""
        self._charge_groups((self.spec.child_field_group,), live, node, charged)
        self.L.issue.issue(self._warpify(live), 1.0)
        has_child = self._first_child[np.maximum(node, 0)] >= 0
        self._descend |= live & has_child

    def run(self) -> LaunchResult:
        L = self.L
        real = self.pt >= 0
        node = np.full(L.n_threads, -1, dtype=np.int64)
        node[real] = self.tree.root
        active = real.copy()
        args = dict(self._invariant_args)

        while active.any():
            self._step += 1
            L.stats.steps += 1
            L.guard(self._step)  # stackless: watchdog/faults, no stack hook
            L.stats.node_visits += int(active.sum())
            warp_live = self._warpify(active).any(axis=1)
            L.stats.warp_node_visits += int(warp_live.sum())
            self._warp_live_steps += warp_live
            np.add.at(self._visits_per_point, self.pt[active], 1)
            if self._visit_log is not None:
                idx = np.nonzero(active)[0]
                self._visit_log.append((self.pt[idx].copy(), node[idx].copy()))
            if self._trace is not None:
                trans_before = L.stats.global_transactions

            charged: Dict[str, np.ndarray] = {}
            self._descend[:] = False
            self._interp(self.kernel.body, active, node, args, charged)

            # Next node: first child when descending, rope otherwise.
            # The rope lives in the child-pointer record, so reading it
            # is covered by the cold-group charge of the visit.
            nxt = np.where(
                self._descend,
                self._first_child[np.maximum(node, 0)],
                self._rope[np.maximum(node, 0)],
            )
            self.L.issue.issue(self._warpify(active), 1.0)
            node = np.where(active, nxt, -1)
            if self._trace is not None:
                self._trace.record(
                    int(warp_live.sum()),
                    int(active.sum()),
                    L.stats.global_transactions - trans_before,
                )
            active = active & (node >= 0)

        occ = occupancy_for(L.device, 0)
        cm = CostModel(L.device)
        imbalance = cm.imbalance_factor(self._warp_live_steps)
        timing = cm.timing(L.stats, occ, imbalance)
        per_point = self._visits_per_point
        return LaunchResult(
            stats=L.stats,
            timing=timing,
            occupancy=occ,
            nodes_per_point=per_point,
            nodes_per_warp=self._warp_live_steps,
            longest_member_per_warp=self._longest_member_per_warp(per_point),
            visits=self._visit_log,
            trace=self._trace,
        )
