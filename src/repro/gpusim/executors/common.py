"""Shared executor plumbing: launches, regions, results.

A :class:`TraversalLaunch` bundles everything a kernel run needs — the
compiled kernel, the linearized tree, the evaluation context, launch
geometry — and allocates simulated device regions for each tree field
group (the Section 5.2 layout step: "an identical linearized copy of
the tree is constructed ... and copied to the GPU's global memory").

:class:`LaunchResult` carries the counted events, the modeled timing,
and per-point / per-warp traversal statistics the harness turns into
the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.autoropes import IterativeKernel
from repro.core.ir import EvalContext
from repro.gpusim.cost import CostModel, KernelTiming
from repro.gpusim.device import DeviceConfig
from repro.gpusim.faults import BatchFaultPlan
from repro.gpusim.kernel import LaunchConfig, Watchdog, occupancy_for
from repro.gpusim.memory import DeviceAllocator, GlobalMemory, Region
from repro.gpusim.stack import RopeStackLayout
from repro.gpusim.stats import KernelStats
from repro.gpusim.trace import StepTrace
from repro.gpusim.warp import WarpIssueAccountant
from repro.trees.linearize import LinearTree


@dataclass
class TraversalLaunch:
    """One kernel launch: kernel + data + geometry + device state."""

    kernel: IterativeKernel
    tree: LinearTree
    ctx: EvalContext
    n_points: int
    device: DeviceConfig
    stack_layout: RopeStackLayout = RopeStackLayout.INTERLEAVED_GLOBAL
    record_visits: bool = False
    #: record a per-step divergence/traffic trace (repro.gpusim.trace).
    trace: bool = False
    #: per-op/per-depth cost attribution collector for this launch
    #: (:class:`repro.telemetry.profile.LaunchProfile`), set by the
    #: dispatcher for sampled launches only.  ``None`` keeps the hot
    #: loops on a single is-None branch per op.
    op_profile: Optional[object] = None
    l2_enabled: bool = True
    max_stack_depth: int = 4096
    #: operational step budget for the main loop (None = unbounded);
    #: the service's resilience layer always sets one so a livelocked
    #: traversal trips the watchdog instead of hanging a batch.
    visit_budget: Optional[int] = None
    #: armed chaos faults for this launch (see repro.gpusim.faults).
    fault_plan: Optional[BatchFaultPlan] = None
    #: execution engine: ``"compiled"`` runs the plan-compiled program
    #: with frontier compaction (repro.core.compile); ``"codegen"`` goes
    #: one level further and runs source generated per (kernel, plan)
    #: by the pass pipeline in :mod:`repro.core.passes`; ``"interp"``
    #: keeps the original per-step AST interpreter as the differential
    #: baseline.  Simulated stats are bit-identical across all three.
    engine: str = "compiled"
    #: shared :class:`repro.core.plancache.PlanCache` owning generated
    #: codegen functions for service launches (so plan eviction and
    #: epoch bumps drop them); ``None`` falls back to a per-kernel memo.
    codegen_cache: Optional[object] = None
    #: the (plan key, variant, plan_epoch) identity the service caches
    #: this launch's generated function under.
    codegen_key: Optional[object] = None
    #: per-step defensive bookkeeping (popped-node bounds validation).
    #: ``None`` resolves to "on exactly when chaos faults are armed":
    #: corruption only enters through the chaos layer, so clean runs
    #: skip the per-step validation cost.
    validate: Optional[bool] = None
    #: frontier compaction trigger: when the fraction of non-empty
    #: stacks among current rows drops below this, the compiled engine
    #: gathers the active warps into compact arrays and runs subsequent
    #: steps at frontier width.  ``0`` disables compaction.  The high
    #: default keeps row width tracking the frontier closely — the
    #: gather is linear and amortized, while every step at excess width
    #: pays full-array costs (0.9 beat 0.5 on every measured workload).
    compact_threshold: float = 0.9

    # populated in __post_init__
    launch: LaunchConfig = field(init=False)
    stats: KernelStats = field(init=False)
    allocator: DeviceAllocator = field(init=False)
    memory: GlobalMemory = field(init=False)
    issue: WarpIssueAccountant = field(init=False)
    regions: Dict[str, Region] = field(init=False)

    def __post_init__(self) -> None:
        block = min(256, self.device.max_threads_per_block)
        block -= block % self.device.warp_size
        self.launch = LaunchConfig(
            n_points=self.n_points, device=self.device, block_size=max(
                block, self.device.warp_size
            )
        )
        self.stats = KernelStats()
        self.allocator = DeviceAllocator(self.device)
        self.regions = {}
        for group in self.tree.groups:
            self.regions[group.name] = self.allocator.alloc(
                f"tree.{group.name}", group.itemsize, self.tree.n_nodes
            )
        # Per-point result/point storage (copy-in/copy-out, Section 5.2):
        # charged as one region; traversal-time accesses to point state
        # stay in registers, so only the tree and stack traffic dominate.
        self.allocator.alloc("points", 64, self.n_points)
        self.memory = GlobalMemory(
            self.device, self.allocator, self.stats, l2_enabled=self.l2_enabled
        )
        valid_lanes = (
            (self.thread_points() >= 0)
            .reshape(self.n_warps, self.device.warp_size)
            .sum(axis=1)
        )
        self.issue = WarpIssueAccountant(
            self.device.warp_size, self.stats, valid_lanes=valid_lanes
        )
        self.watchdog = (
            Watchdog(self.visit_budget) if self.visit_budget is not None else None
        )
        if self.fault_plan is not None and not self.fault_plan.any_armed:
            self.fault_plan = None
        if self.engine not in ("compiled", "codegen", "interp"):
            raise ValueError(
                "engine must be 'compiled', 'codegen' or 'interp', "
                f"got {self.engine!r}"
            )
        if not 0.0 <= self.compact_threshold <= 1.0:
            raise ValueError("compact_threshold must be in [0, 1]")
        if self.validate is None:
            self.validate = self.fault_plan is not None

    def guard(self, step: int, stack=None) -> None:
        """Per-step execution guard, called from executor main loops.

        Fires any armed chaos faults for this step, then lets the
        watchdog enforce the visit budget.  A no-op in the common case
        (no faults armed, no budget set) so offline harness runs pay
        nothing.
        """
        if self.fault_plan is not None:
            self.fault_plan.apply(self, step, stack)
        if self.watchdog is not None:
            self.watchdog.tick(step)

    @property
    def needs_guard(self) -> bool:
        """Whether :meth:`guard` can ever do anything this launch.

        Executors hoist this out of their main loops so clean runs
        (no chaos, no budget) pay zero per-step guard bookkeeping.
        """
        return self.fault_plan is not None or self.watchdog is not None

    @property
    def n_threads(self) -> int:
        return self.launch.n_threads

    @property
    def n_warps(self) -> int:
        return self.launch.n_warps

    def thread_points(self) -> np.ndarray:
        """Point index handled by each thread; padding threads -> -1."""
        pts = np.arange(self.n_threads, dtype=np.int64)
        pts[self.n_points :] = -1
        return pts


def validate_popped_nodes(
    node: np.ndarray, active: np.ndarray, n_nodes: int, step: int
) -> None:
    """Bounds-check node indices popped off a rope stack.

    Valid entries are ``-1`` (null child, when the spec visits them)
    through ``n_nodes - 1``; anything else means the stack was
    corrupted and the launch must abort before chasing the pointer.
    """
    bad = active & ((node < -1) | (node >= n_nodes))
    if bad.any():
        from repro.gpusim.stack import CorruptedRopeStack

        first = int(node[np.argmax(bad)])
        raise CorruptedRopeStack(
            f"popped node {first} outside tree bounds [0, {n_nodes}) "
            f"at step {step}: rope stack corrupted",
            step=step,
        )


@dataclass
class LaunchResult:
    """Everything measured from one simulated kernel run."""

    stats: KernelStats
    timing: KernelTiming
    occupancy: float
    #: nodes visited by each point's own traversal (useful work).
    nodes_per_point: np.ndarray
    #: warp-level traversal lengths (lockstep: nodes the warp visited;
    #: non-lockstep: the number of steps the warp stayed live).
    nodes_per_warp: np.ndarray
    #: longest member traversal per warp (Table 2's denominator).
    longest_member_per_warp: np.ndarray
    #: optional visit log: list of (point_idx array, node array) per
    #: step, only when record_visits was requested.
    visits: Optional[list] = None
    #: optional per-step divergence/traffic trace.
    trace: Optional["StepTrace"] = None

    @property
    def time_ms(self) -> float:
        return self.timing.time_ms

    @property
    def avg_nodes_per_point(self) -> float:
        if len(self.nodes_per_point) == 0:
            return 0.0
        return float(self.nodes_per_point.mean())

    def work_expansion_per_warp(self) -> np.ndarray:
        """Table 2's metric: lockstep warp nodes / longest member
        traversal, one value per warp."""
        denom = np.maximum(self.longest_member_per_warp, 1)
        return self.nodes_per_warp / denom

    def per_point_sequences(self) -> list:
        """Reconstruct each point's visit sequence from the visit log.

        Requires ``record_visits=True`` at launch. Returns a list of
        int64 arrays, one per point, in visit order.
        """
        if self.visits is None:
            raise ValueError("launch did not record visits")
        pts = (
            np.concatenate([p for p, _ in self.visits])
            if self.visits
            else np.empty(0, np.int64)
        )
        nodes = (
            np.concatenate([n for _, n in self.visits])
            if self.visits
            else np.empty(0, np.int64)
        )
        order = np.argsort(pts, kind="stable")
        pts, nodes = pts[order], nodes[order]
        n_points = len(self.nodes_per_point)
        bounds = np.searchsorted(pts, np.arange(n_points + 1))
        return [nodes[bounds[i] : bounds[i + 1]] for i in range(n_points)]
