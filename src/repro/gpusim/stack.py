"""Rope-stack storage with the layout options of Section 5.2.

The paper lays out per-thread rope stacks *interleaved* in global
memory, "such that if two adjacent threads are at the same stack level
their accesses are made to contiguous locations in memory, providing
the best opportunity for memory coalescing", and moves the stack to
per-warp *shared memory* for lockstep traversals of shallow trees.
A strided contiguous-per-thread layout is kept as an ablation baseline.

:class:`StackStorage` both stores the stack payload (host-side numpy —
node indices, traversal-variant arguments, lockstep masks) and accounts
the simulated memory traffic each push/pop generates under the chosen
layout.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple

import numpy as np

from repro.gpusim.device import DeviceConfig
from repro.gpusim.memory import DeviceAllocator, GlobalMemory
from repro.gpusim.stats import KernelStats


class RopeStackLayout(enum.Enum):
    """Where and how rope-stack entries live."""

    #: entry (stack s, depth d) at ``(d * n_stacks + s)``: neighboring
    #: threads at equal depth are contiguous -> coalesced (paper default).
    INTERLEAVED_GLOBAL = "interleaved_global"
    #: entry (s, d) at ``(s * max_depth + d)``: each thread's stack is
    #: contiguous, so warp accesses stride by ``max_depth`` (ablation).
    CONTIGUOUS_GLOBAL = "contiguous_global"
    #: per-warp stack in shared memory (lockstep, shallow trees); no
    #: global traffic but consumes shared memory, limiting occupancy.
    SHARED = "shared"


class StackOverflowError(RuntimeError):
    """A traversal exceeded the stack capacity cap."""


class CorruptedRopeStack(RuntimeError):
    """A popped rope-stack entry failed validation (garbage node).

    Executors validate every popped node index against the tree bounds;
    an out-of-range pointer means the stack memory was corrupted (the
    chaos layer injects exactly this) and the launch must be aborted
    rather than chased into unrelated memory.
    """

    def __init__(self, message: str, step: int = 0) -> None:
        super().__init__(message)
        self.step = step


#: shared-memory stacks are used when the estimated per-warp stack
#: footprint stays below this (Section 5.2: "if the depth of the tree
#: is reasonably small then the fast shared memory can be used").
SHARED_STACK_BUDGET_BYTES = 4096


def lockstep_stack_layout(
    tree, spec, budget_bytes: int = SHARED_STACK_BUDGET_BYTES
) -> RopeStackLayout:
    """Pick the rope-stack layout for a lockstep launch over ``tree``.

    Estimates the worst-case per-warp stack footprint (one entry holds
    node + mask + the traversal-variant arguments; each visit can push
    ``fanout`` entries while popping one) and chooses shared memory
    only when it fits the budget.  Shared by the experiment harness and
    the online query service so both price the same launch identically.
    """
    entry_bytes = 16 + 8 * len(spec.variant_args)
    fanout = max(1, len(tree.child_names) - 1)
    est_depth = tree.depth * fanout + 2
    if est_depth * entry_bytes <= budget_bytes:
        return RopeStackLayout.SHARED
    return RopeStackLayout.INTERLEAVED_GLOBAL


class StackStorage:
    """A set of parallel stacks with layout-aware traffic accounting.

    Parameters
    ----------
    n_stacks:
        one stack per thread (non-lockstep) or per warp (lockstep).
    channels:
        mapping ``name -> (dtype, width)`` of payload lanes stored per
        entry; e.g. ``{"node": (np.int64, 1), "mask": (np.uint64, 1)}``.
    lanes_per_access:
        how many stacks form one warp access group: ``warp_size`` for
        per-thread stacks, ``1`` for per-warp stacks.
    max_depth:
        capacity cap; storage grows lazily up to this.
    """

    def __init__(
        self,
        n_stacks: int,
        channels: Dict[str, Tuple[np.dtype, int]],
        layout: RopeStackLayout,
        device: DeviceConfig,
        allocator: Optional[DeviceAllocator],
        memory: Optional[GlobalMemory],
        stats: KernelStats,
        lanes_per_access: int,
        max_depth: int = 4096,
        initial_depth: int = 64,
        name: str = "rope_stack",
        account: bool = True,
    ) -> None:
        if n_stacks <= 0:
            raise ValueError("n_stacks must be positive")
        if n_stacks % lanes_per_access != 0:
            raise ValueError("n_stacks must be a multiple of lanes_per_access")
        self.n_stacks = n_stacks
        self.layout = layout
        self.device = device
        self.memory = memory
        self.stats = stats
        self.lanes_per_access = lanes_per_access
        self.max_depth = max_depth
        #: original stack id of each current row.  Frontier compaction
        #: (:meth:`compact`) gathers rows but keeps these ids, so entry
        #: addressing — and therefore the coalescing/L2 accounting — is
        #: identical to the uncompacted run.
        self.stack_ids = np.arange(n_stacks, dtype=np.int64)
        #: the allocation-time stack count; the INTERLEAVED layout's
        #: address arithmetic must keep using it after compaction.
        self._n_stacks_alloc = n_stacks
        #: cached row indices (pop uses them every step).
        self._rows = np.arange(n_stacks, dtype=np.int64)
        self._channels: Dict[str, np.ndarray] = {}
        self._widths: Dict[str, int] = {}
        entry_bytes = 0
        cap = max(1, min(initial_depth, max_depth))
        for cname, (dtype, width) in channels.items():
            dt = np.dtype(dtype)
            shape = (n_stacks, cap) if width == 1 else (n_stacks, cap, width)
            self._channels[cname] = np.zeros(shape, dtype=dt)
            self._widths[cname] = width
            entry_bytes += dt.itemsize * width
        self.entry_bytes = entry_bytes
        self.sp = np.zeros(n_stacks, dtype=np.int64)
        self._capacity = cap
        self.high_water = 0
        #: when False, the stack stores payload but generates no
        #: simulated traffic (used by the recursive baseline, whose
        #: control stack is accounted as call frames instead).
        self.account = account

        if layout is RopeStackLayout.SHARED:
            self.region = None  # no global allocation; traffic is shared-mem
        else:
            if allocator is None:
                raise ValueError("global stack layouts need an allocator")
            self.region = allocator.alloc(name, entry_bytes, n_stacks * max_depth)

    # -- capacity -------------------------------------------------------

    @property
    def shared_bytes_per_group(self) -> int:
        """Shared memory a warp-group of stacks consumes (occupancy input).

        Uses the high-water depth so shallow traversals are not charged
        the full capacity cap.
        """
        if self.layout is not RopeStackLayout.SHARED:
            return 0
        depth = max(1, self.high_water)
        return depth * self.entry_bytes * self.lanes_per_access

    def _grow(self, needed: int) -> None:
        if needed > self.max_depth:
            raise StackOverflowError(
                f"stack depth {needed} exceeds cap {self.max_depth}"
            )
        new_cap = self._capacity
        while new_cap < needed:
            new_cap = min(self.max_depth, new_cap * 2)
        for cname, arr in self._channels.items():
            pad_shape = list(arr.shape)
            pad_shape[1] = new_cap - arr.shape[1]
            self._channels[cname] = np.concatenate(
                [arr, np.zeros(pad_shape, dtype=arr.dtype)], axis=1
            )
        self._capacity = new_cap

    # -- traffic accounting ----------------------------------------------

    def _entry_addresses(self, stack_ids: np.ndarray, depths: np.ndarray) -> np.ndarray:
        assert self.region is not None
        if self.layout is RopeStackLayout.INTERLEAVED_GLOBAL:
            entry_idx = depths * self._n_stacks_alloc + stack_ids
        else:  # CONTIGUOUS_GLOBAL
            entry_idx = stack_ids * self.max_depth + depths
        return self.region.addresses(entry_idx)

    def _account(self, active: np.ndarray, depths: np.ndarray, step: int) -> None:
        """Charge the traffic of touching ``(stack, depth)`` entries."""
        if not self.account:
            return
        n_active = int(np.count_nonzero(active))
        if n_active == 0:
            return
        self.stats.stack_ops += n_active
        groups = self.n_stacks // self.lanes_per_access
        if self.layout is RopeStackLayout.SHARED:
            grp_active = active.reshape(groups, self.lanes_per_access).any(axis=1)
            self.stats.shared_accesses += int(grp_active.sum())
            return
        if self.memory is None:
            return
        addrs = self._entry_addresses(self.stack_ids, depths).reshape(
            groups, self.lanes_per_access
        )
        self.memory.warp_access(
            addrs, self.entry_bytes, active.reshape(groups, self.lanes_per_access), step
        )

    # -- stack operations --------------------------------------------------

    def push(self, active: np.ndarray, step: int, **values: np.ndarray) -> None:
        """Push one entry on every stack where ``active`` is set.

        ``values`` must contain exactly the configured channels; each is
        an array of shape ``(n_stacks,)`` (or ``(n_stacks, width)``).
        """
        if set(values) != set(self._channels):
            raise KeyError(
                f"push channels {sorted(values)} != {sorted(self._channels)}"
            )
        if not active.any():
            return
        depths = self.sp
        max_needed = int(depths.max(initial=0, where=active)) + 1
        if max_needed > self._capacity:
            self._grow(max_needed)
        idx = np.nonzero(active)[0]
        d = depths[idx]
        for cname, arr in self._channels.items():
            arr[idx, d] = values[cname][idx]
        self._account(active, depths, step)
        self.sp[idx] += 1
        self.high_water = max(self.high_water, max_needed)

    def pop(self, active: np.ndarray, step: int) -> Dict[str, np.ndarray]:
        """Pop the top entry of every stack where ``active`` is set.

        Returns full-width arrays; entries for inactive stacks are
        whatever was previously stored there (callers must mask).
        """
        if np.any(active & (self.sp == 0)):
            raise IndexError("pop from empty rope stack")
        out: Dict[str, np.ndarray] = {}
        if not active.any():
            for cname, arr in self._channels.items():
                out[cname] = arr[:, 0].copy()
            return out
        new_sp = np.where(active, self.sp - 1, self.sp)
        top = np.maximum(new_sp, 0)
        rows = self._rows
        for cname, arr in self._channels.items():
            out[cname] = arr[rows, top]  # fancy indexing already copies
        self._account(active, new_sp, step)
        self.sp = new_sp
        return out

    def compact(self, group_sel: np.ndarray) -> None:
        """Gather the stacks of the selected warp-access groups.

        ``group_sel`` indexes groups of ``lanes_per_access`` adjacent
        stacks (warps): frontier compaction keeps whole groups so the
        coalescing model still sees the same warp-access shapes.  Rows
        keep their original :attr:`stack_ids`, so the simulated traffic
        of every subsequent push/pop is bit-identical to the
        uncompacted run — only the host-side array widths shrink.
        """
        group_sel = np.asarray(group_sel, dtype=np.int64)
        lpa = self.lanes_per_access
        rows = (group_sel[:, None] * lpa + np.arange(lpa, dtype=np.int64)).ravel()
        for cname, arr in self._channels.items():
            self._channels[cname] = arr[rows]
        self.sp = self.sp[rows]
        self.stack_ids = self.stack_ids[rows]
        self.n_stacks = len(rows)
        self._rows = np.arange(self.n_stacks, dtype=np.int64)

    def corrupt_top(self, channel: str, value) -> int:
        """Overwrite the top entry of every non-empty stack (chaos hook).

        Models a corrupted stack region: the next pop returns garbage
        in ``channel``.  Returns how many stacks were corrupted; no
        simulated traffic is charged (corruption is not a program
        access).
        """
        if channel not in self._channels:
            raise KeyError(f"no stack channel {channel!r}")
        idx = np.nonzero(self.sp > 0)[0]
        if idx.size:
            self._channels[channel][idx, self.sp[idx] - 1] = value
        return int(idx.size)

    def nonempty(self) -> np.ndarray:
        """Bool array: which stacks still hold entries."""
        return self.sp > 0

    def any_nonempty(self) -> bool:
        return bool((self.sp > 0).any())
