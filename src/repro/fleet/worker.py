"""Fleet worker: one shared-nothing process owning a full service.

A worker is ``TraversalService`` + pipe loop, nothing else.  It builds
its own trees and plans from ``register`` frames (shared-nothing: no
memory is shared with the router or siblings), answers one reply per
request, and exits through exactly one happy path — the ``drain``
frame, after which the process return code is 0.  Any other way out
(router death, unpicklable frame) exits non-zero so the router's
drain accounting can refuse to report a clean fleet shutdown.

Determinism: the worker derives every seed it uses — service seed,
chaos schedule, synthetic load — from ``(fleet seed, worker index)``
via :func:`derive_seed`, so a fleet of N workers is reproducible from
the single fleet seed, and two fleets with the same seed submit
bit-identical query streams.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

import numpy as np

from repro.fleet.pool import pin_to_cpu
from repro.fleet import wire
from repro.fleet.hashring import stable_hash
from repro.fleet.ledger import data_digest
from repro.service.resilience import ServiceError

#: exit codes the router checks after join().
EXIT_DRAINED = 0
EXIT_ROUTER_GONE = 2
EXIT_CRASH = 3


def derive_seed(base_seed: int, worker_index: int, salt: str) -> int:
    """Per-worker, per-purpose seed from the single fleet seed.

    SHA-1-based (:func:`~repro.fleet.hashring.stable_hash`), so the
    derivation is identical across processes and Python runs — the
    property the fleet's one-seed reproducibility contract rests on.
    """
    return stable_hash(f"{base_seed}:{worker_index}:{salt}") % (2**31)


def build_worker_service(
    worker_index: int, base_seed: int, config_payload: Dict[str, Any]
):
    """Construct this worker's TraversalService from wire primitives.

    ``config_payload`` carries plain-dict ServiceConfig knobs (the
    router never pickles a ServiceConfig across the pipe — the wire
    stays primitive so protocol drift is loud, not silent).  Chaos, if
    armed, is reseeded per worker.
    """
    from repro.gpusim.faults import ChaosConfig
    from repro.service.service import ServiceConfig, TraversalService
    from repro.telemetry import TelemetryConfig

    payload = dict(config_payload)
    chaos_payload = payload.pop("chaos", None)
    chaos = None
    if chaos_payload is not None:
        chaos_payload = dict(chaos_payload)
        chaos_payload["targets"] = tuple(chaos_payload.get("targets", ()))
        chaos_payload["seed"] = derive_seed(
            int(chaos_payload.get("seed", 0)) + base_seed, worker_index, "chaos"
        )
        chaos = ChaosConfig(**chaos_payload)
    telemetry_payload = payload.pop("telemetry", {"enabled": True})
    cfg = ServiceConfig(
        seed=derive_seed(base_seed, worker_index, "service"),
        chaos=chaos,
        telemetry=TelemetryConfig(**telemetry_payload),
        **payload,
    )
    return TraversalService(cfg)


class _WorkerState:
    """Mutable per-process state the command handlers share."""

    def __init__(self, worker_id: str, worker_index: int, base_seed: int,
                 service) -> None:
        self.worker_id = worker_id
        self.worker_index = worker_index
        self.base_seed = base_seed
        self.service = service
        #: lazily-built synthetic load driver, kept across run_load
        #: frames so its seeded RNG stream continues instead of
        #: restarting (a restart would replay the same queries and
        #: turn the load into one long memo hit).
        self.driver = None


def _tracer(state: _WorkerState):
    """This worker's tracer, or None when tracing is off — every
    distributed-tracing touch point guards on this so the off path
    stays allocation-free."""
    tel = state.service.telemetry
    return tel.tracer if tel.enabled else None


def _event_log(state: _WorkerState):
    """This worker's event log, or None when logging is off — same
    guard discipline as :func:`_tracer`."""
    tel = state.service.telemetry
    return tel.log if tel.enabled else None


def _attach_spans(state: _WorkerState, reply: Dict[str, Any]) -> Dict[str, Any]:
    """Piggyback outbox'd spans *and* log records onto a reply frame.

    Each key is only present when there is something to ship: a
    telemetry-off fleet sends byte-identical frames to the
    pre-tracing protocol.
    """
    tracer = _tracer(state)
    if tracer is not None and tracer.outbox_enabled:
        spans = tracer.drain_outbox()
        if spans:
            reply["spans"] = spans
    log = _event_log(state)
    if log is not None and log.outbox_enabled:
        records = log.drain_outbox()
        if records:
            reply["logs"] = records
    return reply


def _handle_register(state: _WorkerState, frame: Dict[str, Any]) -> Dict[str, Any]:
    data = np.asarray(frame["data"], dtype=np.float64)
    state.service.register(
        frame["name"], frame["app"], data, **frame.get("build_kwargs", {})
    )
    # Echo the digest of what this worker actually built from: the
    # router's replay protocol compares it against the ledger record,
    # proving a respawned shard serves from bit-identical bytes.
    return wire.ok_reply(
        session=frame["name"], n=len(data), digest=data_digest(data)
    )


def _handle_submit(state: _WorkerState, frame: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one coords batch synchronously; per-query resolutions.

    The scatter path lands here: a slice of a larger batch arrives
    with the router's logical timestamp, runs through this worker's
    batcher on the shared clock value, and every row reports back a
    resolution — result or typed error, never silence.
    """
    from repro.telemetry import TraceContext

    session = frame["session"]
    coords = np.asarray(frame["coords"], dtype=np.float64)
    now = frame.get("now")
    svc = state.service
    if now is not None and now > svc.now_ms:
        svc.advance(float(now))
    # Adopt the router's trace context for the frame's duration: every
    # span this batch opens (query, batch, launch) joins the router's
    # ticket trace and parents under the ticket span.
    tracer = _tracer(state)
    ctx = TraceContext.from_wire(frame.get("trace")) if tracer is not None else None
    prev_ctx = tracer.activate(ctx) if tracer is not None else None
    tickets = []
    rejected = []
    try:
        for i, coord in enumerate(coords):
            try:
                tickets.append((i, svc.submit(session, coord, now=svc.now_ms)))
            except ServiceError as err:
                rejected.append((i, err))
        svc.flush(session)
    finally:
        if tracer is not None:
            tracer.activate(prev_ctx)
    results: List[Optional[Dict[str, Any]]] = [None] * len(coords)
    for i, ticket in tickets:
        results[i] = (
            wire.ticket_payload(ticket)
            if ticket.done else wire.unresolved_payload()
        )
    for i, err in rejected:
        results[i] = {
            "ok": False,
            "backend": None,
            "latency_ms": 0.0,
            "result": None,
            "error": {"code": getattr(err, "code", "error"), "message": str(err)},
        }
    return _attach_spans(state, wire.ok_reply(results=results, now_ms=svc.now_ms))


def _handle_run_load(state: _WorkerState, frame: Dict[str, Any]) -> Dict[str, Any]:
    """Run N seeded synthetic-load ticks locally (no router round-trips
    per query — this is where fleet throughput comes from)."""
    from repro.service.serve import SyntheticLoadDriver

    ticks = int(frame.get("ticks", 1))
    keep = bool(frame.get("keep_results", False))
    driver = state.driver
    if driver is None:
        driver = state.driver = SyntheticLoadDriver(
            state.service,
            threading.RLock(),
            seed=derive_seed(state.base_seed, state.worker_index, "load"),
            tick_ms=float(frame.get("tick_ms", 2.0)),
            queries_per_tick=int(frame.get("queries_per_tick", 8)),
        )
    record: Optional[List] = [] if keep else None
    driver.record = record
    for _ in range(ticks):
        driver.tick()
    state.service.flush()
    reply: Dict[str, Any] = {
        "submitted": driver.submitted,
        "rejected": driver.rejected,
        "ticks": driver.ticks,
        "now_ms": state.service.now_ms,
    }
    if keep:
        reply["results"] = [
            dict(
                session=t.session,
                coords=t.coords,
                **(wire.ticket_payload(t) if t.done else wire.unresolved_payload()),
            )
            for t in record
        ]
    return _attach_spans(state, wire.ok_reply(**reply))


def _handle_frame(state: _WorkerState, frame: Dict[str, Any]) -> Dict[str, Any]:
    cmd = frame.get("cmd")
    svc = state.service
    if cmd == "ping":
        return wire.ok_reply(
            worker=state.worker_id, index=state.worker_index,
            now_ms=svc.now_ms,
        )
    if cmd == "register":
        return _handle_register(state, frame)
    if cmd == "submit":
        return _handle_submit(state, frame)
    if cmd == "run_load":
        return _handle_run_load(state, frame)
    if cmd == "advance":
        dispatched = svc.advance(float(frame["now"]))
        return wire.ok_reply(dispatched=dispatched, now_ms=svc.now_ms)
    if cmd == "flush":
        dispatched = svc.flush(frame.get("session"))
        return wire.ok_reply(dispatched=dispatched, now_ms=svc.now_ms)
    if cmd == "stats":
        return wire.ok_reply(stats=wire.to_jsonable(svc.stats().to_dict()))
    if cmd == "metrics":
        tel = svc.telemetry
        if not tel.enabled or tel.registry is None:
            return wire.ok_reply(metrics=None)
        return wire.ok_reply(metrics=tel.registry.to_dict())
    if cmd == "health":
        return wire.ok_reply(health=wire.to_jsonable(svc.health()))
    if cmd == "trace_drain":
        tracer = _tracer(state)
        if tracer is None or not tracer.outbox_enabled:
            return wire.ok_reply(spans=None, dropped=0)
        return wire.ok_reply(
            spans=tracer.drain_outbox(), dropped=tracer.outbox_dropped
        )
    if cmd == "log_drain":
        log = _event_log(state)
        if log is None or not log.outbox_enabled:
            return wire.ok_reply(logs=None, dropped=0)
        return wire.ok_reply(
            logs=log.drain_outbox(), dropped=log.outbox_dropped
        )
    if cmd == "profile":
        tel = svc.telemetry
        if not tel.enabled or tel.profiler is None:
            return wire.ok_reply(profile=None)
        return wire.ok_reply(profile=wire.to_jsonable(tel.profiler.snapshot()))
    if cmd == "flight":
        tel = svc.telemetry
        if not tel.enabled or tel.flight is None:
            return wire.ok_reply(flight=None)
        return wire.ok_reply(flight=wire.to_jsonable(tel.flight.to_dict()))
    return wire.error_reply(f"unknown command {cmd!r}")


def worker_main(
    cpu_index: Optional[int],
    conn,
    worker_id: str,
    worker_index: int,
    base_seed: int,
    config_payload: Dict[str, Any],
) -> None:
    """Process entry point: build the service, serve frames, drain.

    Every exception inside a handler answers an error frame and keeps
    the worker alive; only drain (exit 0) and a dead router pipe
    (exit 2) end the loop.
    """
    import signal
    import sys

    # Ctrl-C delivers SIGINT to every process in the foreground group,
    # workers included — shield it so the worker can still answer the
    # router's drain protocol instead of dying mid-drain with queries
    # pending.  SIGTERM stays at its default on purpose: it is the
    # escalation (and orphan-cleanup) path, and a worker must never be
    # unkillable by it.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass  # non-main thread or unsupported platform
    pin_to_cpu(cpu_index)
    try:
        service = build_worker_service(worker_index, base_seed, config_payload)
    except Exception as exc:
        try:
            conn.send(wire.error_reply(f"worker boot failed: {exc!r}"))
        except (BrokenPipeError, OSError):
            pass
        sys.exit(EXIT_CRASH)
    state = _WorkerState(worker_id, worker_index, base_seed, service)
    tracer = _tracer(state)
    if tracer is not None:
        # Finished spans ride back on reply frames (and trace_drain
        # sweeps) to the router's fleet-wide assembler.
        tracer.enable_outbox()
    log = _event_log(state)
    if log is not None:
        # Log records ship the same way spans do: the outbox rides
        # reply frames and log_drain sweeps to the fleet assembler.
        log.enable_outbox()
    conn.send(wire.ok_reply(worker=worker_id, booted=True))
    exit_code = EXIT_ROUTER_GONE
    while True:
        try:
            frame = conn.recv()
        except (EOFError, OSError):
            break  # router died: nothing to drain into, exit non-zero
        if not isinstance(frame, dict):
            conn.send(wire.error_reply(f"malformed frame {frame!r}"))
            continue
        if frame.get("cmd") == "drain":
            # Drain-or-fail, fleet edition: flush everything, report
            # what is still pending (must be 0 for a clean fleet exit).
            try:
                service.flush()
                pending = service.queue_depth
                if log is not None:
                    # Drain verdict: the record rides this very reply.
                    (log.info if pending == 0 else log.warn)(
                        "worker.drain", service.now_ms,
                        pending=pending, drained=pending == 0,
                    )
                conn.send(_attach_spans(state, wire.ok_reply(
                    pending=pending, drained=pending == 0
                )))
                exit_code = EXIT_DRAINED
            except Exception as exc:
                conn.send(wire.error_reply(f"drain failed: {exc!r}"))
                exit_code = EXIT_CRASH
            break
        try:
            reply = _handle_frame(state, frame)
        except Exception as exc:
            reply = wire.error_reply(f"{type(exc).__name__}: {exc}")
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()
    sys.exit(exit_code)
