"""Fleet-level chaos: seeded worker-kill / reply-drop / pipe-stall.

The PR-2 chaos layer injects faults *inside* a service (backend
errors, latency spikes, corrupt stacks).  This module injects the
faults a fleet adds on top: whole worker processes dying, replies that
never arrive, pipes that stall past the deadline.  Same philosophy as
:mod:`repro.gpusim.faults` — every fault is **deterministic from the
seed**, so a red run replays exactly and two runs with the same seed
produce the identical kill/restart schedule.

Determinism model: logical time is quantized into ``bucket_ms``
buckets, and each ``(kind, worker, bucket)`` cell draws once from
``stable_hash(f"{seed}:{kind}:{worker}:{bucket}")`` — a pure function
of the seed, the worker id, and the logical clock.  No RNG state, no
ordering sensitivity: whatever order the router polls its workers in,
the same cells fire.  Cells that fire are recorded in :attr:`events`
so a benchmark can assert schedule equality across runs.

Fault kinds (where the router applies them):

* ``kill`` — SIGKILL the worker process at the top of a submit/load
  tick; the death is then *discovered* by the normal wire path
  (mid-scatter, mid-call), which is exactly the window the recovery
  machinery must survive.  At most ``max_kills_per_bucket`` workers
  die per bucket so a fleet is never chaos-killed to zero.
* ``drop_reply`` — the router consumes a worker's reply and discards
  it, then treats the exchange as a worker loss.  The worker is in
  fact healthy: this is the false-positive path (supervision must
  restart a process that did nothing wrong, and the answer must come
  from a replay or retry).
* ``stall`` — the router abandons the exchange without consuming the
  reply, as if the pipe hung past the deadline.  The pipe is now
  desynchronized by construction; recovery *must* replace the process
  (a respawn resets the pipe), which is why trips are terminal until
  the supervisor heals them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.fleet.hashring import stable_hash

KIND_KILL = "kill"
KIND_DROP_REPLY = "drop_reply"
KIND_STALL = "stall"

KINDS = (KIND_KILL, KIND_DROP_REPLY, KIND_STALL)

_HASH_SPACE = float(2**64)


@dataclass(frozen=True)
class FleetChaosConfig:
    """Knobs for the fleet-level fault injector (all seeded)."""

    #: schedule seed; the whole schedule is a pure function of it.
    seed: int = 0
    #: per-(worker, bucket) probability of a SIGKILL.
    p_kill: float = 0.0
    #: per-(worker, bucket) probability of a consumed-and-discarded reply.
    p_drop_reply: float = 0.0
    #: per-(worker, bucket) probability of an abandoned (stalled) exchange.
    p_stall: float = 0.0
    #: logical-clock quantum; each (kind, worker, bucket) draws once.
    bucket_ms: float = 10.0
    #: kills allowed per bucket across the whole fleet (never chaos-kill
    #: a fleet to zero live workers).
    max_kills_per_bucket: int = 1

    def __post_init__(self) -> None:
        for name in ("p_kill", "p_drop_reply", "p_stall"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.bucket_ms <= 0:
            raise ValueError(f"bucket_ms must be positive, got {self.bucket_ms}")
        if self.max_kills_per_bucket < 1:
            raise ValueError("max_kills_per_bucket must be >= 1")


class FleetChaos:
    """Deterministic fault scheduler over ``(kind, worker, clock)``."""

    def __init__(self, config: FleetChaosConfig) -> None:
        self.config = config
        #: fired cells, in firing order: (kind, worker, bucket).  Two
        #: runs with the same seed and the same logical-clock schedule
        #: produce equal lists — the benchmark asserts exactly this.
        self.events: List[Tuple[str, str, int]] = []
        self._fired: Set[Tuple[str, str, int]] = set()
        self._kills_in_bucket: dict = {}

    def bucket(self, now_ms: float) -> int:
        return int(now_ms // self.config.bucket_ms)

    def _draw(self, kind: str, worker: str, bucket: int) -> float:
        key = f"{self.config.seed}:{kind}:{worker}:{bucket}"
        return stable_hash(key) / _HASH_SPACE

    def _fire(self, kind: str, worker: str, bucket: int, p: float) -> bool:
        """One at-most-once draw for a (kind, worker, bucket) cell."""
        if p <= 0.0:
            return False
        cell = (kind, worker, bucket)
        if cell in self._fired:
            return False  # already fired this bucket; don't re-inject
        if self._draw(kind, worker, bucket) >= p:
            return False
        self._fired.add(cell)
        self.events.append(cell)
        return True

    # -- the three fault kinds -------------------------------------------

    def should_kill(self, worker: str, now_ms: float) -> bool:
        bucket = self.bucket(now_ms)
        if (
            self._kills_in_bucket.get(bucket, 0)
            >= self.config.max_kills_per_bucket
        ):
            return False
        if self._fire(KIND_KILL, worker, bucket, self.config.p_kill):
            self._kills_in_bucket[bucket] = (
                self._kills_in_bucket.get(bucket, 0) + 1
            )
            return True
        return False

    def should_drop_reply(self, worker: str, now_ms: float) -> bool:
        return self._fire(
            KIND_DROP_REPLY, worker, self.bucket(now_ms), self.config.p_drop_reply
        )

    def should_stall(self, worker: str, now_ms: float) -> bool:
        return self._fire(
            KIND_STALL, worker, self.bucket(now_ms), self.config.p_stall
        )

    # -- observability ---------------------------------------------------

    def schedule(self) -> List[dict]:
        """Fired cells as strict-JSON rows (for reports and diffs)."""
        return [
            {"kind": kind, "worker": worker, "bucket": bucket}
            for kind, worker, bucket in self.events
        ]


def make_fleet_chaos_payload(config: Optional[FleetChaosConfig]) -> Optional[dict]:
    """FleetChaosConfig -> plain dict (CLI/report plumbing)."""
    if config is None:
        return None
    return {
        "seed": config.seed,
        "p_kill": config.p_kill,
        "p_drop_reply": config.p_drop_reply,
        "p_stall": config.p_stall,
        "bucket_ms": config.bucket_ms,
        "max_kills_per_bucket": config.max_kills_per_bucket,
    }
