"""Pinned-process pool: the generic layer under the fleet workers.

Two consumers share this module:

* :mod:`repro.fleet.router` spawns long-lived fleet workers with
  :func:`start_process` (one pipe each, CPU-pinned round-robin);
* ``benchmarks/perf --jobs N`` runs benchmark *cells* through
  :class:`ProcessPool` — a fixed set of pinned worker processes that
  execute ``(dotted function path, kwargs)`` jobs and stream results
  back — so the full 22-cell trajectory fits a nightly wall-clock
  budget instead of running serially.

Jobs name their function by dotted path (``"benchmarks.perf:run_cell"``)
rather than shipping closures: the child imports it fresh, which keeps
the pool start-method agnostic (``fork`` where the platform has it,
``spawn`` otherwise) and the job payload picklable by construction.

CPU pinning is best-effort: ``os.sched_setaffinity`` where the OS
provides it (Linux), silently skipped elsewhere — pinning is a perf
hint, never a correctness requirement.
"""

from __future__ import annotations

import importlib
import multiprocessing as mp
import os
import traceback
from typing import Any, Dict, List, Optional, Sequence, Tuple


def mp_context(method: Optional[str] = None) -> mp.context.BaseContext:
    """The multiprocessing context the fleet uses.

    ``fork`` is preferred where available (no re-import cost per
    worker); ``spawn`` is the portable fallback.  Workers rebuild all
    of their state from wire commands either way — nothing relies on
    inherited memory.
    """
    if method is None:
        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    return mp.get_context(method)


def pin_to_cpu(cpu_index: Optional[int]) -> Optional[int]:
    """Best-effort affinity pin of the calling process to one CPU.

    Returns the CPU actually pinned to (modulo the available set), or
    None when pinning is disabled (``cpu_index=None``) or the platform
    has no affinity API.
    """
    if cpu_index is None or not hasattr(os, "sched_setaffinity"):
        return None
    try:
        available = sorted(os.sched_getaffinity(0))
        if not available:
            return None
        cpu = available[cpu_index % len(available)]
        os.sched_setaffinity(0, {cpu})
        return cpu
    except OSError:
        return None


def start_process(target, args: Tuple, cpu_index: Optional[int] = None,
                  name: Optional[str] = None, method: Optional[str] = None):
    """Spawn one daemon process running ``target(*args)``.

    ``cpu_index`` is forwarded as the target's first argument when
    given, so the child pins *itself* (affinity must be set in the
    child; a parent-side pin of a not-yet-started pid races).
    """
    ctx = mp_context(method)
    if cpu_index is not None:
        args = (cpu_index,) + args
    proc = ctx.Process(target=target, args=args, name=name, daemon=True)
    proc.start()
    return proc


def resolve_dotted(path: str):
    """``"pkg.mod:func"`` -> the callable (child-side job lookup)."""
    mod_name, sep, attr = path.partition(":")
    if not sep or not attr:
        raise ValueError(f"job path must look like 'pkg.mod:func', got {path!r}")
    module = importlib.import_module(mod_name)
    try:
        return getattr(module, attr)
    except AttributeError as exc:
        raise ValueError(f"{mod_name} has no attribute {attr!r}") from exc


def _pool_worker(cpu_index: int, conn) -> None:
    """Child loop: receive ``(job_id, path, kwargs)``, reply
    ``(job_id, ok, result_or_error)``; ``None`` is the shutdown frame."""
    pin_to_cpu(cpu_index)
    while True:
        try:
            frame = conn.recv()
        except (EOFError, OSError):
            break
        if frame is None:
            break
        job_id, path, kwargs = frame
        try:
            result = resolve_dotted(path)(**kwargs)
            conn.send((job_id, True, result))
        except BaseException:
            conn.send((job_id, False, traceback.format_exc()))
    conn.close()


class PoolJobError(RuntimeError):
    """A pool job raised in the child; carries the child traceback."""


class ProcessPool:
    """Fixed-size pool of pinned worker processes executing dotted-path
    jobs.  Use as a context manager; :meth:`run` preserves job order in
    its result list while executing out-of-order across workers."""

    def __init__(self, jobs: int, method: Optional[str] = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.n = jobs
        self._ctx = mp_context(method)
        self._procs: List = []
        self._conns: List = []

    def __enter__(self) -> "ProcessPool":
        for i in range(self.n):
            parent, child = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_pool_worker, args=(i, child),
                name=f"pool-worker-{i}", daemon=True,
            )
            proc.start()
            child.close()
            self._procs.append(proc)
            self._conns.append(parent)
        return self

    def __exit__(self, *exc) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.terminate()
        for conn in self._conns:
            conn.close()
        self._procs, self._conns = [], []

    def run(self, path: str, kwargs_list: Sequence[Dict[str, Any]],
            log=None) -> List[Any]:
        """Execute one job per kwargs dict; results in submission order.

        Jobs are handed to workers round-robin up front and collected
        as they finish; a child-side exception fails the whole run with
        the child traceback (benchmark cells must not silently vanish).
        """
        pending: Dict[int, int] = {}  # job_id -> conn index
        queues: List[List[Tuple[int, Dict[str, Any]]]] = [
            [] for _ in self._conns
        ]
        for job_id, kwargs in enumerate(kwargs_list):
            queues[job_id % len(self._conns)].append((job_id, kwargs))
        for ci, queue in enumerate(queues):
            for job_id, kwargs in queue:
                try:
                    self._conns[ci].send((job_id, path, kwargs))
                except (BrokenPipeError, OSError) as exc:
                    # The child died before we finished handing it work
                    # (e.g. an earlier job on it crashed the process).
                    proc = self._procs[ci]
                    proc.join(timeout=1.0)
                    stranded = sorted(
                        [j for j, c in pending.items() if c == ci]
                        + [j for j, _ in queue if j >= job_id]
                    )
                    raise PoolJobError(
                        f"pool worker {ci} ({proc.name}) died before "
                        f"accepting job {job_id} ({type(exc).__name__} on "
                        f"its pipe, exitcode {proc.exitcode}); unfinished "
                        f"jobs on it: {stranded}"
                    ) from exc
                pending[job_id] = ci
        results: List[Any] = [None] * len(kwargs_list)
        remaining = set(pending)
        while remaining:
            waitable = list({id(c): c for c in (
                self._conns[pending[j]] for j in remaining
            )}.values())
            for conn in mp.connection.wait(waitable, timeout=None):
                try:
                    job_id, ok, payload = conn.recv()
                except (EOFError, ConnectionResetError, OSError) as exc:
                    # Name the casualty and its unfinished jobs: a child
                    # SIGKILLed mid-cell must fail the run loudly with
                    # enough identity to reproduce, never hang the wait.
                    # (A killed child surfaces as EOFError or, when the
                    # kernel tears the socket down first, ECONNRESET.)
                    ci = self._conns.index(conn)
                    proc = self._procs[ci]
                    proc.join(timeout=1.0)
                    lost = sorted(j for j in remaining if pending[j] == ci)
                    raise PoolJobError(
                        f"pool worker {ci} ({proc.name}) died mid-job "
                        f"({type(exc).__name__} on its pipe, exitcode "
                        f"{proc.exitcode}); unfinished jobs on it: {lost}"
                    ) from exc
                if not ok:
                    raise PoolJobError(
                        f"pool job {job_id} failed in child:\n{payload}"
                    )
                results[job_id] = payload
                remaining.discard(job_id)
                if log is not None:
                    log(
                        f"pool: job {job_id + 1}/{len(kwargs_list)} done "
                        f"({len(kwargs_list) - len(remaining)} finished)"
                    )
        return results
