"""Fleet-wide trace assembly: one logical timeline from many workers.

Workers trace locally (their tracer outbox collects finished spans as
plain dicts) and ship those dicts back to the router — piggybacked on
submit/run_load/drain replies, plus periodic ``trace_drain`` sweeps.
:class:`FleetTraceAssembler` is where the streams meet: each span is
tagged with the worker it came from, retained in one bounded ring, and
exported either merged-JSON (the fleet ``/tracez`` payload) or Chrome
``trace_event`` JSON where every worker renders as its own process
track, so a scatter/gather ticket across three shards reads as one
trace with a router row on top and one row per shard under it.

Ordering is deterministic: :meth:`spans` sorts by ``(t_start_ms,
worker, span_id)`` — all values that are pure functions of the fleet
seed — so two same-seed runs produce bit-identical span trees no
matter how reply frames interleaved on the wire.

An optional ``sink`` (the OTLP exporter's ``export``) observes every
ingested batch, which is how fleet spans reach a collector without the
router growing a second shipping path.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

#: the worker label the router tags its own spans with.
ROUTER_WORKER = "router"

DEFAULT_CAPACITY = 50_000


class FleetTraceAssembler:
    """Bounded, worker-tagged ring of finished span dicts."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._spans: Deque[dict] = deque()
        self.ingested = 0
        self.dropped = 0
        #: optional callable(List[dict]) observing every ingested batch
        #: (wired to :meth:`repro.telemetry.otlp.OTLPExporter.export`).
        self.sink: Optional[Callable[[List[dict]], None]] = None

    def __len__(self) -> int:
        return len(self._spans)

    def ingest(self, worker: str, span_dicts) -> int:
        """Absorb one worker's batch of finished-span dicts.

        Returns the number of spans absorbed.  ``span_dicts`` may be
        None or empty (replies without a ``spans`` key cost nothing).
        """
        if not span_dicts:
            return 0
        tagged = [{**sd, "worker": worker} for sd in span_dicts]
        for span in tagged:
            if len(self._spans) >= self.capacity:
                self._spans.popleft()
                self.dropped += 1
            self._spans.append(span)
        self.ingested += len(tagged)
        if self.sink is not None:
            try:
                self.sink(tagged)
            except Exception:
                pass  # egress must never break assembly
        return len(tagged)

    def spans(self, worker: Optional[str] = None) -> List[dict]:
        """Retained spans in deterministic timeline order."""
        out = [
            s for s in self._spans if worker is None or s.get("worker") == worker
        ]
        out.sort(
            key=lambda s: (
                float(s.get("t_start_ms") or 0.0),
                str(s.get("worker", "")),
                str(s.get("span_id", "")),
            )
        )
        return out

    def workers(self) -> List[str]:
        """Every worker label seen, router first, then sorted."""
        seen = {str(s.get("worker", "")) for s in self._spans}
        rest = sorted(w for w in seen if w != ROUTER_WORKER)
        return ([ROUTER_WORKER] if ROUTER_WORKER in seen else []) + rest

    def to_dict(self, limit: Optional[int] = None) -> dict:
        """The fleet ``/tracez`` payload: merged spans + accounting."""
        spans = self.spans()
        if limit is not None and limit >= 0:
            spans = spans[-limit:]
        return {
            "spans": spans,
            "workers": self.workers(),
            "ingested": self.ingested,
            "dropped": self.dropped,
        }

    def chrome_trace(self) -> dict:
        """Chrome ``trace_event`` export: one process track per worker.

        The router gets pid 1; workers get stable pids in sorted order.
        Inside a worker's process the span's own track ("query",
        "batch", ...) becomes the thread id, so the single-process
        layout survives inside each fleet row.
        """
        workers = self.workers()
        pids: Dict[str, int] = {w: i + 1 for i, w in enumerate(workers)}
        tracks: Dict[str, int] = {}
        events: List[dict] = []
        for worker in workers:
            events.append({
                "name": "process_name", "ph": "M",
                "pid": pids[worker], "tid": 0,
                "args": {"name": worker},
            })
        for span in self.spans():
            worker = str(span.get("worker", ""))
            track = str(span.get("track", ""))
            tid = tracks.setdefault(track, len(tracks))
            base = {
                "name": str(span.get("name", "")),
                "cat": track,
                "id": str(span.get("span_id", "")),
                "pid": pids.get(worker, len(workers) + 1),
                "tid": tid,
            }
            t0 = float(span.get("t_start_ms") or 0.0)
            events.append({
                **base, "ph": "b", "ts": t0 * 1000.0,
                "args": dict(span.get("args", {})),
            })
            for ev in span.get("events", []):
                events.append({
                    **base, "ph": "n",
                    "name": str(ev.get("name", "")),
                    "ts": float(ev.get("t_ms") or 0.0) * 1000.0,
                    "args": dict(ev.get("args", {})),
                })
            t1 = span.get("t_end_ms")
            if t1 is not None:
                events.append({
                    **base, "ph": "e", "ts": float(t1) * 1000.0,
                    "args": {"status": span.get("status", "ok")},
                })
        return {"traceEvents": events, "displayTimeUnit": "ms"}
