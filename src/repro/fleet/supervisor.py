"""Restart policy + supervision bookkeeping for the self-healing fleet.

The router owns the *mechanics* of recovery (respawn the process,
replay the session ledger, probe, rejoin the ring); this module owns
the *policy*: when a dead worker may be restarted, how long it must
wait, and when the fleet gives up on it for good.

All timing is on the fleet's **logical clock** — the same clock the
batchers and breakers run on — so a supervised run is deterministic
and replayable: given the same death schedule (e.g. from
:class:`~repro.fleet.chaos.FleetChaos`), the same restarts happen at
the same logical times, run over run.

Policy shape (mirrors the PR-2 retry/breaker idiom one level up):

* **backoff** — the first death in a window heals immediately; each
  further restart within the window waits ``backoff_base_ms *
  backoff_factor**(k-1)`` logical ms (capped at ``backoff_max_ms``),
  so a flapping worker consumes exponentially less of the fleet's
  attention;
* **budget** — at most ``max_restarts`` restarts per
  ``window_ms``-long sliding window; exhausting the budget **evicts**
  the worker permanently (its breaker stays open, ``/healthz`` stays
  degraded for it, and the final drain refuses to call the fleet
  clean — an evicted worker is an unhealed loss by definition).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: decisions :meth:`FleetSupervisor.decide` can return.
DECIDE_WAIT = "wait"        # dead, but backoff has not elapsed yet
DECIDE_RESTART = "restart"  # eligible now
DECIDE_EVICT = "evict"      # restart budget exhausted: permanent


@dataclass(frozen=True)
class RestartPolicy:
    """Seeded-clock restart policy for one fleet."""

    #: base backoff after the first restart in a window, logical ms.
    backoff_base_ms: float = 25.0
    #: multiplier per additional restart in the window.
    backoff_factor: float = 2.0
    #: backoff ceiling, logical ms.
    backoff_max_ms: float = 2_000.0
    #: restarts allowed per window before permanent eviction.
    max_restarts: int = 5
    #: sliding budget window, logical ms.
    window_ms: float = 60_000.0

    def __post_init__(self) -> None:
        if self.backoff_base_ms < 0:
            raise ValueError("backoff_base_ms must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_restarts < 1:
            raise ValueError("max_restarts must be >= 1")
        if self.window_ms <= 0:
            raise ValueError("window_ms must be positive")

    def backoff_ms(self, restarts_in_window: int) -> float:
        """Delay before the next restart given k prior ones in-window.

        ``k == 0`` → 0 (first death heals immediately: the common case
        is one crash, and waiting on it would be pure availability
        loss).  Thereafter exponential, capped.
        """
        if restarts_in_window <= 0:
            return 0.0
        return min(
            self.backoff_base_ms
            * self.backoff_factor ** (restarts_in_window - 1),
            self.backoff_max_ms,
        )


@dataclass
class _WorkerLog:
    """Per-worker supervision history (all timestamps logical ms)."""

    death_at_ms: Optional[float] = None
    death_reason: str = ""
    restart_times_ms: List[float] = field(default_factory=list)
    deaths: int = 0
    restarts: int = 0
    failed_restarts: int = 0
    evicted: bool = False


class FleetSupervisor:
    """Decides restart-vs-wait-vs-evict; the router does the surgery."""

    def __init__(self, policy: Optional[RestartPolicy] = None) -> None:
        self.policy = policy or RestartPolicy()
        self._log: Dict[str, _WorkerLog] = {}

    def _entry(self, worker: str) -> _WorkerLog:
        return self._log.setdefault(worker, _WorkerLog())

    # -- events the router reports --------------------------------------

    def note_death(self, worker: str, now_ms: float, reason: str) -> None:
        """A breaker tripped; start (or refresh) the recovery clock."""
        entry = self._entry(worker)
        if entry.death_at_ms is None:
            entry.death_at_ms = float(now_ms)
            entry.death_reason = reason
            entry.deaths += 1

    def note_restarted(self, worker: str, now_ms: float) -> None:
        """A respawn + replay + probe completed; worker rejoined."""
        entry = self._entry(worker)
        entry.restart_times_ms.append(float(now_ms))
        entry.restarts += 1
        entry.death_at_ms = None
        entry.death_reason = ""

    def note_restart_failed(self, worker: str, now_ms: float) -> None:
        """A respawn attempt died (boot, replay, or probe failure).

        Counts against the budget exactly like a successful restart —
        a worker that cannot even boot must converge on eviction, not
        spin forever.
        """
        entry = self._entry(worker)
        entry.restart_times_ms.append(float(now_ms))
        entry.failed_restarts += 1
        # keep death_at_ms: still dead; backoff now applies from here.
        entry.death_at_ms = float(now_ms)

    # -- the decision ----------------------------------------------------

    def _in_window(self, entry: _WorkerLog, now_ms: float) -> List[float]:
        cutoff = now_ms - self.policy.window_ms
        entry.restart_times_ms = [
            t for t in entry.restart_times_ms if t > cutoff
        ]
        return entry.restart_times_ms

    def decide(self, worker: str, now_ms: float) -> str:
        """May ``worker`` be restarted at logical time ``now_ms``?"""
        entry = self._entry(worker)
        if entry.evicted:
            return DECIDE_EVICT
        in_window = self._in_window(entry, now_ms)
        if len(in_window) >= self.policy.max_restarts:
            entry.evicted = True
            return DECIDE_EVICT
        death_at = entry.death_at_ms if entry.death_at_ms is not None else now_ms
        if now_ms - death_at < self.policy.backoff_ms(len(in_window)):
            return DECIDE_WAIT
        return DECIDE_RESTART

    # -- observability ---------------------------------------------------

    def dead_since(self, worker: str) -> Optional[float]:
        """Logical time of the current unhealed death (None if alive)."""
        entry = self._log.get(worker)
        return entry.death_at_ms if entry else None

    def is_evicted(self, worker: str) -> bool:
        entry = self._log.get(worker)
        return bool(entry and entry.evicted)

    def evicted_workers(self) -> List[str]:
        return sorted(w for w, e in self._log.items() if e.evicted)

    def total_restarts(self) -> int:
        return sum(e.restarts for e in self._log.values())

    def snapshot(self) -> Dict[str, dict]:
        """Strict-JSON per-worker supervision history for /statsz."""
        return {
            w: {
                "deaths": e.deaths,
                "restarts": e.restarts,
                "failed_restarts": e.failed_restarts,
                "evicted": e.evicted,
                "dead_since_ms": e.death_at_ms,
                "death_reason": e.death_reason or None,
            }
            for w, e in sorted(self._log.items())
        }
