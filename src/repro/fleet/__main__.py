"""Fleet CLI: ``python -m repro.fleet --workers N``.

Boots a router plus N shared-nothing worker processes, registers the
same two demo sessions as ``python -m repro.service`` on *every*
worker (point correlation over the clustered "geocity" dataset, kNN
over a uniform random one), starts the seeded synthetic load pump,
and serves the aggregated pull endpoints:

* ``/metrics`` — merged Prometheus exposition, every worker series
  labelled ``worker="wN"``, plus the router's own ``fleet_*`` families;
* ``/healthz`` — fleet readiness (503 while any worker is degraded,
  unreachable, or dead);
* ``/statsz`` — strict-JSON fleet snapshot: per-worker stats plus the
  summed aggregate (``None``, never ``NaN``, when nothing has samples);
* ``/tracez`` — the merged fleet timeline: worker spans (shipped back
  over the wire) assembled under the router's ticket spans, one trace
  per scatter/gather ticket (``?format=chrome`` for trace_event JSON);
* ``/logz`` — the merged fleet log stream: worker event-log records
  (shipped back over the wire like spans) plus the router's own,
  filterable by level / worker / trace id — a ticket's logs, spans,
  and latency exemplars join on the same trace id;
* ``/debugz`` — one strict-JSON fleet diagnostics snapshot (config,
  ring placement, breaker states, recent errors with trace ids);
* ``/profilez`` — per-worker kernel-profiler snapshots.

``--otlp-endpoint`` additionally ships every assembled span, the
merged fleet metrics export, and every assembled log record to an
OTLP/JSON collector on a background thread (bounded buffers, drop
counters — an unreachable collector never blocks the serve path).

SIGTERM/SIGINT fans a graceful drain out to every worker; the process
exits 0 only when every worker flushed clean and exited 0 — the same
drain-or-fail contract as single-process serve mode, fleet-wide.

The whole fleet is reproducible from ``--seed``: every worker derives
its service / chaos / load seeds from ``(seed, worker index)``.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.fleet.chaos import FleetChaosConfig
from repro.fleet.hashring import DEFAULT_REPLICAS
from repro.fleet.router import FleetConfig, FleetRouter, FleetServer, run_fleet
from repro.fleet.supervisor import RestartPolicy
from repro.points.datasets import dataset_by_name
from repro.service.service import ENGINES, SORT_MODES


def register_demo_sessions(
    router: FleetRouter, n_data: int, seed: int, announce=print
) -> None:
    """The two sessions the single-process demo runs, fleet-wide."""
    geo = dataset_by_name("geocity", n_data, seed=seed)
    rnd = dataset_by_name("random", n_data, seed=seed + 1)
    for name, app, data, kwargs in (
        ("pc-geocity", "pc", geo.points, {"radius": 0.1, "leaf_size": 4}),
        ("knn-random", "knn", rnd.points, {"k": 4, "leaf_size": 4}),
    ):
        out = router.register(name, app, data, **kwargs)
        announce(
            f"registered {name!r} ({app}) on workers "
            f"{','.join(out['workers'])} -> placed on {router.place(name)}"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.fleet")
    parser.add_argument(
        "--workers", type=int, default=4,
        help="worker process count (each owns a full service)",
    )
    parser.add_argument(
        "--replicas", type=int, default=DEFAULT_REPLICAS,
        help="hash-ring virtual nodes per worker",
    )
    parser.add_argument(
        "--scatter-threshold", type=int, default=64,
        help="single-session batches this large scatter across all "
        "live workers (0 = never scatter)",
    )
    parser.add_argument("--seed", type=int, default=7,
                        help="the one fleet seed every worker derives from")
    parser.add_argument("--data", type=int, default=4096, help="dataset size")
    parser.add_argument(
        "--no-pin", action="store_true",
        help="skip best-effort CPU pinning of the workers",
    )
    parser.add_argument("--max-batch", type=int, default=256)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--sort", choices=SORT_MODES, default="morton")
    parser.add_argument("--engine", choices=ENGINES, default="compiled")
    serve = parser.add_argument_group("HTTP front-end")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8322,
        help="listen port (0 = let the OS pick a free one)",
    )
    serve.add_argument(
        "--serve-duration", type=float, default=None, metavar="SECONDS",
        help="drain and exit after this long (for scripted smoke runs); "
        "default: run until signalled",
    )
    serve.add_argument(
        "--load-queries-per-tick", type=int, default=32,
        help="synthetic load per pump tick *per worker* (0 = no load)",
    )
    serve.add_argument(
        "--load-tick-ms", type=float, default=2.0,
        help="logical milliseconds each worker's clock advances per tick",
    )
    tracing = parser.add_argument_group("distributed tracing + egress")
    tracing.add_argument(
        "--no-trace", action="store_true",
        help="disable distributed tracing (no TraceContext on frames, "
        "no span piggybacking, /tracez reports enabled=false)",
    )
    tracing.add_argument(
        "--no-log", action="store_true",
        help="disable structured logging (no log piggybacking, /logz "
        "reports enabled=false)",
    )
    tracing.add_argument(
        "--otlp-endpoint", default=None, metavar="URL",
        help="OTLP/JSON collector URL (e.g. http://host:4318); the "
        "router ships assembled spans, merged fleet metrics, and the "
        "assembled log stream (/v1/traces, /v1/metrics, /v1/logs) on "
        "a background thread — an unreachable collector only "
        "increments drop counters, it never blocks serving",
    )
    tracing.add_argument(
        "--otlp-flush-ms", type=float, default=1000.0,
        help="wall milliseconds between OTLP flushes",
    )
    chaos = parser.add_argument_group("chaos (per-worker reseeded)")
    chaos.add_argument(
        "--chaos", action="store_true",
        help="arm the deterministic fault injector on every worker",
    )
    chaos.add_argument(
        "--chaos-seed", type=int,
        default=int(os.environ.get("REPRO_CHAOS_SEED", "0")),
    )
    chaos.add_argument("--p-backend-error", type=float, default=0.15)
    chaos.add_argument("--p-latency-spike", type=float, default=0.10)
    chaos.add_argument("--p-stuck-warp", type=float, default=0.05)
    chaos.add_argument("--p-corrupt-stack", type=float, default=0.10)
    chaos.add_argument("--chaos-targets", default="lockstep,nonlockstep")
    heal = parser.add_argument_group("supervision (self-healing)")
    heal.add_argument(
        "--no-supervise", action="store_true",
        help="disable worker restart; a dead worker stays dead",
    )
    heal.add_argument(
        "--restart-max", type=int, default=5,
        help="restarts allowed per window before permanent eviction",
    )
    heal.add_argument(
        "--restart-backoff-ms", type=float, default=25.0,
        help="base restart backoff, logical ms (doubles per retry)",
    )
    heal.add_argument(
        "--restart-window-ms", type=float, default=60_000.0,
        help="sliding restart-budget window, logical ms",
    )
    fchaos = parser.add_argument_group(
        "fleet chaos (worker kill / reply drop / pipe stall)"
    )
    fchaos.add_argument(
        "--fleet-chaos", action="store_true",
        help="arm the seeded fleet-level fault injector on the router",
    )
    fchaos.add_argument("--fleet-chaos-seed", type=int, default=0)
    fchaos.add_argument("--p-kill", type=float, default=0.05)
    fchaos.add_argument("--p-drop-reply", type=float, default=0.02)
    fchaos.add_argument("--p-stall", type=float, default=0.02)
    fchaos.add_argument(
        "--chaos-bucket-ms", type=float, default=10.0,
        help="logical-clock quantum; one chaos draw per (kind, worker, bucket)",
    )
    args = parser.parse_args(argv)

    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")

    service_payload = {
        "max_batch": args.max_batch,
        "max_wait_ms": args.max_wait_ms,
        "sort": args.sort,
        "engine": args.engine,
    }
    if args.chaos:
        service_payload["chaos"] = {
            "seed": args.chaos_seed,
            "p_backend_error": args.p_backend_error,
            "p_latency_spike": args.p_latency_spike,
            "p_stuck_warp": args.p_stuck_warp,
            "p_corrupt_stack": args.p_corrupt_stack,
            "targets": [t for t in args.chaos_targets.split(",") if t],
        }

    fleet_chaos = None
    if args.fleet_chaos:
        fleet_chaos = FleetChaosConfig(
            seed=args.fleet_chaos_seed,
            p_kill=args.p_kill,
            p_drop_reply=args.p_drop_reply,
            p_stall=args.p_stall,
            bucket_ms=args.chaos_bucket_ms,
        )
    config = FleetConfig(
        workers=args.workers,
        replicas=args.replicas,
        scatter_threshold=args.scatter_threshold,
        seed=args.seed,
        pin_cpus=not args.no_pin,
        service=service_payload,
        supervise=not args.no_supervise,
        restart=RestartPolicy(
            backoff_base_ms=args.restart_backoff_ms,
            max_restarts=args.restart_max,
            window_ms=args.restart_window_ms,
        ),
        fleet_chaos=fleet_chaos,
        trace=not args.no_trace,
        log=not args.no_log,
    )
    router = FleetRouter(config)
    router.start()
    if args.otlp_endpoint:
        from repro.telemetry import OTLPExporter

        router.attach_otlp(OTLPExporter(
            args.otlp_endpoint,
            flush_ms=args.otlp_flush_ms,
            service_name="repro-fleet",
        ))
        print(f"otlp egress -> {args.otlp_endpoint} "
              f"(flush every {args.otlp_flush_ms:.0f} ms)")
    print(
        f"fleet: {len(router.live_workers())}/{args.workers} workers booted "
        f"(seed={args.seed}, engine={args.engine})"
    )
    register_demo_sessions(router, args.data, args.seed)
    server = FleetServer(
        router,
        host=args.host,
        port=args.port,
        load_queries_per_tick=args.load_queries_per_tick,
        load_tick_ms=args.load_tick_ms,
    )
    return run_fleet(server, duration_s=args.serve_duration)


if __name__ == "__main__":
    sys.exit(main())
