"""Fleet router: placement, scatter/gather, aggregation, drain.

The router owns the worker pool and is the only process that talks to
every shard.  It keeps **no traversal state** — trees, plans, clocks,
and metrics all live in the workers — so its job reduces to four
verbs:

* **place** — sessions map to workers by consistent hash
  (:class:`~repro.fleet.hashring.HashRing`).  Registrations broadcast
  to every worker (shared-nothing peers each build their own tree), so
  placement is a routing *preference*, not a correctness constraint:
  when a worker dies, the ring rehashes its sessions onto live workers
  that already hold the trees.
* **scatter/gather** — a single-session batch at or above
  ``scatter_threshold`` rows splits into balanced contiguous slices
  (:mod:`repro.fleet.slicing`), one per live worker, executed in
  parallel and gathered back into submission order.  Results are
  bit-identical to unsliced execution because per-query answers never
  depend on batch composition.
* **aggregate** — ``/metrics`` merges the workers' registry exports
  with a ``worker`` label per series plus the router's own ``fleet_*``
  instruments; ``/healthz`` is degraded if any worker is degraded or
  dead; ``/statsz`` is a strict-JSON fleet snapshot (summed counters,
  ``None`` — never ``NaN`` — for aggregates with no samples).
* **drain** — SIGTERM fans out ``drain`` frames; every worker flushes
  (drain-or-fail), reports its pending depth, and exits 0.  The fleet
  exit code is 0 only when every worker drained clean.

Worker death trips a router-side breaker: the shard is marked dead,
removed from the ring (new placements rehash away), counted in
``fleet_worker_deaths_total``, and reported by health until the
process exits.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import urlsplit

import numpy as np

from repro.fleet import wire
from repro.fleet.hashring import DEFAULT_REPLICAS, HashRing
from repro.fleet.pool import mp_context, start_process
from repro.fleet.slicing import scatter_slices
from repro.fleet.worker import worker_main
from repro.service.serve import JSON_CONTENT_TYPE, METRICS_CONTENT_TYPE
from repro.telemetry import (
    MetricsRegistry,
    expose_export_text,
    merge_labeled_exports,
    sum_exports,
)


@dataclass(frozen=True)
class FleetConfig:
    """Knobs for one fleet (router + N workers)."""

    #: worker process count.
    workers: int = 4
    #: hash-ring virtual nodes per worker.
    replicas: int = DEFAULT_REPLICAS
    #: single-session batches with at least this many rows scatter
    #: across all live workers; smaller ones route whole to the
    #: session's placed shard.  0 disables scattering entirely.
    scatter_threshold: int = 64
    #: the single fleet seed every worker seed derives from.
    seed: int = 7
    #: pin workers to CPUs round-robin (best-effort, Linux only).
    pin_cpus: bool = True
    #: multiprocessing start method (None = fork where available).
    start_method: Optional[str] = None
    #: reply deadline for one worker exchange, seconds (None = wait).
    call_timeout_s: Optional[float] = 120.0
    #: plain-dict ServiceConfig payload forwarded to every worker (see
    #: repro.fleet.worker.build_worker_service).
    service: Dict[str, Any] = field(default_factory=dict)


@dataclass
class WorkerBreaker:
    """Router-side breaker for one shard.

    Unlike the per-backend execution breakers inside a service, a
    worker breaker never half-opens: a dead process does not resurrect,
    so ``open`` is terminal and routing rehashes permanently.
    """

    worker: str
    state: str = "closed"  # "closed" | "open"
    reason: str = ""

    def trip(self, reason: str) -> None:
        self.state = "open"
        self.reason = reason


class WorkerHandle:
    """One shard as the router sees it: process, pipe, lock, breaker."""

    def __init__(self, worker_id: str, index: int, proc, conn) -> None:
        self.id = worker_id
        self.index = index
        self.proc = proc
        self.conn = conn
        #: held across one full send->recv exchange so concurrent HTTP
        #: scrapes and scatter submits never interleave frames.
        self.lock = threading.Lock()
        self.breaker = WorkerBreaker(worker_id)

    @property
    def alive(self) -> bool:
        return self.breaker.state == "closed"


class FleetRouter:
    """Owns the workers; see module docstring for the contract."""

    def __init__(self, config: Optional[FleetConfig] = None) -> None:
        self.config = config or FleetConfig()
        if self.config.workers < 1:
            raise ValueError("a fleet needs at least one worker")
        self.handles: Dict[str, WorkerHandle] = {}
        self.ring = HashRing(replicas=self.config.replicas)
        self.sessions: List[str] = []
        self.registry = MetricsRegistry()
        self._m = {
            "workers": self.registry.gauge(
                "fleet_workers", "worker count by state", labels=("state",)
            ),
            "deaths": self.registry.counter(
                "fleet_worker_deaths_total",
                "worker breaker trips (process death or wire failure)",
                labels=("worker",),
            ),
            "routed": self.registry.counter(
                "fleet_routed_batches_total",
                "whole batches routed to a placed shard",
                labels=("worker",),
            ),
            "scattered": self.registry.counter(
                "fleet_scatter_batches_total",
                "batches scatter-sliced across the live workers",
            ),
            "scatter_rows": self.registry.counter(
                "fleet_scatter_rows_total",
                "query rows shipped inside scatter slices",
                labels=("worker",),
            ),
        }
        self._started = False
        self._drained: Dict[str, dict] = {}

    # -- lifecycle -------------------------------------------------------

    def start(self) -> List[str]:
        """Spawn and boot every worker; returns their ids."""
        if self._started:
            raise RuntimeError("fleet already started")
        self._started = True
        ctx = mp_context(self.config.start_method)
        for i in range(self.config.workers):
            worker_id = f"w{i}"
            parent, child = ctx.Pipe()
            # worker_main's signature leads with cpu_index; None means
            # the child skips pinning (pin_to_cpu handles it).
            proc = start_process(
                worker_main,
                args=(i if self.config.pin_cpus else None, child, worker_id,
                      i, self.config.seed, dict(self.config.service)),
                name=f"fleet-{worker_id}",
                method=self.config.start_method,
            )
            child.close()
            handle = WorkerHandle(worker_id, i, proc, parent)
            self.handles[worker_id] = handle
            self.ring.add(worker_id)
        # Boot barrier: every worker answers its boot frame before the
        # fleet accepts traffic, so a worker that fails to construct
        # its service is a loud start() error, not a late mystery.
        for handle in self.handles.values():
            try:
                wire.recv_reply(
                    handle.conn, handle.id, timeout=self.config.call_timeout_s
                )
            except (wire.WorkerGone, wire.WireError) as exc:
                self._trip(handle, f"boot failed: {exc}")
        self._update_worker_gauges()
        if not self.live_workers():
            raise RuntimeError("no worker survived boot")
        return sorted(self.handles)

    def shutdown(self, timeout_s: float = 30.0) -> Dict[str, Any]:
        """Fleet-wide graceful drain; see :meth:`drain`."""
        return self.drain(timeout_s=timeout_s)

    def __enter__(self) -> "FleetRouter":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        if not self._drained:
            self.drain()

    # -- shard bookkeeping -----------------------------------------------

    def live_workers(self) -> List[str]:
        return sorted(w for w, h in self.handles.items() if h.alive)

    def dead_workers(self) -> List[str]:
        return sorted(w for w, h in self.handles.items() if not h.alive)

    def _trip(self, handle: WorkerHandle, reason: str) -> None:
        if not handle.alive:
            return
        handle.breaker.trip(reason)
        self.ring.remove(handle.id)
        self._m["deaths"].inc(worker=handle.id)
        self._update_worker_gauges()

    def _update_worker_gauges(self) -> None:
        self._m["workers"].set(len(self.live_workers()), state="alive")
        self._m["workers"].set(len(self.dead_workers()), state="dead")

    def _call(self, worker: str, cmd: str, **payload: Any) -> Dict[str, Any]:
        """One locked exchange with one worker; death trips the breaker."""
        handle = self.handles[worker]
        if not handle.alive:
            raise wire.WorkerGone(worker, handle.breaker.reason)
        with handle.lock:
            try:
                return wire.call(
                    handle.conn, worker, cmd,
                    timeout=self.config.call_timeout_s, **payload,
                )
            except wire.WorkerGone as exc:
                self._trip(handle, str(exc))
                raise

    def broadcast(
        self, cmd: str, workers: Optional[List[str]] = None, **payload: Any
    ) -> Tuple[Dict[str, Dict[str, Any]], Dict[str, str]]:
        """Send one command to many workers in parallel (send phase,
        then receive phase, per-handle locks held across both).

        Returns ``(replies, failures)`` keyed by worker id; a failure
        trips that worker's breaker but never poisons its siblings.
        """
        targets = [
            self.handles[w] for w in (workers or self.live_workers())
            if self.handles[w].alive
        ]
        targets.sort(key=lambda h: h.id)  # stable lock order
        replies: Dict[str, Dict[str, Any]] = {}
        failures: Dict[str, str] = {}
        acquired: List[WorkerHandle] = []
        try:
            for handle in targets:
                handle.lock.acquire()
                acquired.append(handle)
                try:
                    wire.send_request(handle.conn, handle.id, cmd, **payload)
                except wire.WorkerGone as exc:
                    self._trip(handle, str(exc))
                    failures[handle.id] = str(exc)
            for handle in targets:
                if handle.id in failures:
                    continue
                try:
                    replies[handle.id] = wire.recv_reply(
                        handle.conn, handle.id,
                        timeout=self.config.call_timeout_s,
                    )
                except wire.WorkerGone as exc:
                    self._trip(handle, str(exc))
                    failures[handle.id] = str(exc)
                except wire.WireError as exc:
                    failures[handle.id] = str(exc)
        finally:
            for handle in acquired:
                handle.lock.release()
        return replies, failures

    # -- sessions --------------------------------------------------------

    def register(self, name: str, app: str, data: np.ndarray,
                 **build_kwargs: Any) -> Dict[str, Any]:
        """Broadcast a session build to every live worker.

        Shared-nothing: each worker builds its own tree + plan.  The
        registration fails loudly if *no* worker accepted it.
        """
        replies, failures = self.broadcast(
            "register", name=name, app=app,
            data=np.ascontiguousarray(data, dtype=np.float64),
            build_kwargs=build_kwargs,
        )
        if not replies:
            raise RuntimeError(
                f"session {name!r}: no live worker accepted the "
                f"registration ({failures})"
            )
        if name not in self.sessions:
            self.sessions.append(name)
        return {"session": name, "workers": sorted(replies), "failed": failures}

    def place(self, session: str) -> Optional[str]:
        """The shard currently owning ``session`` (consistent hash over
        the live ring; rehashes automatically after a breaker trip)."""
        return self.ring.place(session)

    # -- query path ------------------------------------------------------

    def submit_many(
        self, session: str, coords: np.ndarray, now: Optional[float] = None
    ) -> List[Dict[str, Any]]:
        """Route or scatter one batch; per-query resolutions in order.

        Small batches go whole to the placed shard (keeps co-located
        queries on one shard — the locality future traversal fusion
        amortizes); large ones scatter-slice across every live worker
        and gather back in submission order.
        """
        coords = np.asarray(coords, dtype=np.float64)
        if coords.ndim != 2:
            raise ValueError(f"coords must be (n, d), got shape {coords.shape}")
        live = self.live_workers()
        if not live:
            raise RuntimeError("no live workers")
        threshold = self.config.scatter_threshold
        if threshold and len(coords) >= threshold and len(live) > 1:
            return self._scatter_submit(session, coords, live, now)
        owner = self.place(session)
        reply = self._call(
            owner, "submit", session=session, coords=coords, now=now
        )
        self._m["routed"].inc(worker=owner)
        return reply["results"]

    def _scatter_submit(
        self, session: str, coords: np.ndarray, live: List[str],
        now: Optional[float],
    ) -> List[Dict[str, Any]]:
        """Scatter slices across live workers, gather in order."""
        slices = scatter_slices(len(coords), len(live))
        handles = [self.handles[w] for w in live]
        self._m["scattered"].inc()
        acquired: List[WorkerHandle] = []
        sent: List[Tuple[WorkerHandle, slice]] = []
        parts: Dict[str, List[Dict[str, Any]]] = {}
        failures: Dict[str, Tuple[slice, str]] = {}
        try:
            for handle, sl in zip(handles, slices):
                if sl.start == sl.stop:
                    continue
                handle.lock.acquire()
                acquired.append(handle)
                try:
                    wire.send_request(
                        handle.conn, handle.id, "submit",
                        session=session, coords=coords[sl], now=now,
                    )
                    sent.append((handle, sl))
                    self._m["scatter_rows"].inc(
                        sl.stop - sl.start, worker=handle.id
                    )
                except wire.WorkerGone as exc:
                    self._trip(handle, str(exc))
                    failures[handle.id] = (sl, str(exc))
            for handle, sl in sent:
                try:
                    reply = wire.recv_reply(
                        handle.conn, handle.id,
                        timeout=self.config.call_timeout_s,
                    )
                    parts[handle.id] = reply["results"]
                except (wire.WorkerGone, wire.WireError) as exc:
                    if isinstance(exc, wire.WorkerGone):
                        self._trip(handle, str(exc))
                    failures[handle.id] = (sl, str(exc))
        finally:
            for handle in acquired:
                handle.lock.release()
        # Gather in submission order; rows lost to a dead shard resolve
        # with a typed error payload (never silently dropped).
        out: List[Dict[str, Any]] = [
            {
                "ok": False, "backend": None, "latency_ms": 0.0,
                "result": None,
                "error": {"code": "shard-lost", "message": "row unassigned"},
            }
            for _ in range(len(coords))
        ]
        for handle, sl in zip(handles, slices):
            if handle.id in parts:
                for offset, row in enumerate(parts[handle.id]):
                    out[sl.start + offset] = row
            elif sl.start != sl.stop:
                detail = failures.get(handle.id, (sl, "worker unavailable"))[1]
                for i in range(sl.start, sl.stop):
                    out[i]["error"]["message"] = detail
        return out

    def run_load(self, ticks: int = 1, queries_per_tick: int = 8,
                 tick_ms: float = 2.0, keep_results: bool = False,
                 ) -> Dict[str, Dict[str, Any]]:
        """Fan one seeded load burst out to every live worker."""
        replies, failures = self.broadcast(
            "run_load", ticks=ticks, queries_per_tick=queries_per_tick,
            tick_ms=tick_ms, keep_results=keep_results,
        )
        for worker, reason in failures.items():
            replies[worker] = {"ok": False, "error": reason}
        return replies

    # -- aggregation (the HTTP payloads) ---------------------------------

    def metrics_export(self) -> dict:
        """Merged fleet metrics: per-worker-labelled series + fleet_*."""
        replies, _ = self.broadcast("metrics")
        exports = {
            w: r.get("metrics") for w, r in replies.items()
            if r.get("metrics") is not None
        }
        merged = merge_labeled_exports(exports, label="worker")
        merged.update(self.registry.to_dict())  # fleet_* families
        return merged

    def metrics_text(self) -> str:
        return expose_export_text(self.metrics_export())

    def metrics_summed(self) -> dict:
        """Fleet totals: counters summed, histograms bucket-merged."""
        replies, _ = self.broadcast("metrics")
        exports = {
            w: r.get("metrics") for w, r in replies.items()
            if r.get("metrics") is not None
        }
        return sum_exports(exports)

    def healthz(self) -> dict:
        """Fleet readiness: degraded if any worker is degraded or dead."""
        replies, failures = self.broadcast("health")
        workers: Dict[str, dict] = {}
        degraded: List[str] = []
        for worker in sorted(self.handles):
            handle = self.handles[worker]
            if not handle.alive:
                workers[worker] = {
                    "status": "dead", "ok": False,
                    "reason": handle.breaker.reason,
                }
                degraded.append(worker)
            elif worker in replies:
                payload = replies[worker]["health"]
                workers[worker] = payload
                if not payload.get("ok", False):
                    degraded.append(worker)
            else:
                workers[worker] = {
                    "status": "unreachable", "ok": False,
                    "reason": failures.get(worker, "no reply"),
                }
                degraded.append(worker)
        ok = not degraded
        return {
            "status": "ok" if ok else "degraded",
            "ok": ok,
            "workers": workers,
            "checks": {
                "degraded_workers": sorted(degraded),
                "dead_workers": self.dead_workers(),
                "live_workers": self.live_workers(),
                "sessions": sorted(self.sessions),
            },
        }

    def statsz(self) -> dict:
        """Strict-JSON fleet snapshot: per-worker stats + aggregate.

        Aggregate counters are sums; aggregate latency quantiles are
        query-weighted means of worker quantiles (an approximation,
        labelled as such) and are ``None`` — never ``NaN`` — when no
        worker has samples, preserving the PR-2 strict-JSON round-trip
        contract fleet-wide.
        """
        replies, failures = self.broadcast("stats")
        worker_stats = {w: r["stats"] for w, r in replies.items()}
        agg = _aggregate_stats(list(worker_stats.values()))
        return {
            "fleet": {
                "workers": len(self.handles),
                "workers_alive": len(self.live_workers()),
                "workers_dead": self.dead_workers(),
                "unreachable": sorted(failures),
                "sessions": sorted(self.sessions),
                "scatter_batches": self._m["scattered"].value(),
                "placements": {
                    s: self.place(s) for s in sorted(self.sessions)
                },
            },
            "aggregate": agg,
            "workers": worker_stats,
        }

    # -- drain -----------------------------------------------------------

    def drain(self, timeout_s: float = 30.0) -> Dict[str, Any]:
        """Fleet-wide graceful drain (the SIGTERM path).

        Fans ``drain`` out to every live worker (each flushes pending
        queries — drain-or-fail — and exits 0), joins the processes,
        and reports per-worker pending depths and exit codes.  ``ok``
        is True only when every worker drained with nothing pending
        and exited cleanly; dead workers make the drain not-ok by
        definition (their queries cannot be accounted for).
        """
        report: Dict[str, dict] = dict(self._drained)
        for worker in self.live_workers():
            handle = self.handles[worker]
            try:
                reply = self._call(worker, "drain")
                report[worker] = {
                    "pending": int(reply.get("pending", -1)),
                    "drained": bool(reply.get("drained", False)),
                }
            except (wire.WorkerGone, wire.WireError) as exc:
                report[worker] = {
                    "pending": -1, "drained": False, "error": str(exc),
                }
        deadline = time.monotonic() + timeout_s
        for worker, handle in sorted(self.handles.items()):
            remaining = max(0.0, deadline - time.monotonic())
            handle.proc.join(timeout=remaining)
            if handle.proc.is_alive():
                handle.proc.terminate()
                handle.proc.join(timeout=5.0)
            entry = report.setdefault(
                worker,
                {"pending": -1, "drained": False,
                 "error": handle.breaker.reason or "dead before drain"},
            )
            entry["exitcode"] = handle.proc.exitcode
            handle.conn.close()
        ok = bool(report) and all(
            e.get("drained") and e.get("exitcode") == 0
            for e in report.values()
        )
        self._drained = report
        return {"ok": ok, "workers": report}


# -- statsz aggregation ----------------------------------------------------

#: counters summed across workers in the aggregate view.
_SUM_FIELDS = (
    "queries_submitted", "queries_completed", "queries_failed",
    "queue_depth", "batches", "flush_full", "flush_timeout",
    "flush_forced", "total_exec_ms",
)


def _weighted_mean(
    pairs: List[Tuple[Optional[float], float]]
) -> Optional[float]:
    """Weight-averaged value over (value, weight) pairs; None — never
    NaN — when no pair carries a sample (the empty-worker fix)."""
    num = 0.0
    den = 0.0
    for value, weight in pairs:
        if value is None or weight <= 0:
            continue
        num += value * weight
        den += weight
    return num / den if den > 0 else None


def _aggregate_stats(worker_stats: List[dict]) -> dict:
    """Sum/merge per-worker ServiceStats dicts into one fleet row."""
    agg: Dict[str, Any] = {w: 0 for w in _SUM_FIELDS}
    agg["sessions"] = 0
    for stats in worker_stats:
        for fname in _SUM_FIELDS:
            agg[fname] += stats.get(fname) or 0
        agg["sessions"] = max(agg["sessions"], stats.get("sessions") or 0)
    weights = [float(s.get("queries_completed") or 0) for s in worker_stats]
    agg["p50_latency_ms"] = _weighted_mean(
        [(s.get("p50_latency_ms"), w) for s, w in zip(worker_stats, weights)]
    )
    agg["p95_latency_ms"] = _weighted_mean(
        [(s.get("p95_latency_ms"), w) for s, w in zip(worker_stats, weights)]
    )
    agg["latency_note"] = (
        "fleet quantiles are query-weighted means of worker quantiles"
    )
    resilience: Dict[str, int] = {}
    for stats in worker_stats:
        r = stats.get("resilience") or {}
        for key in ("retries", "degraded_batches", "failed_batches",
                    "shed_rejected", "shed_dropped", "deadline_misses"):
            resilience[key] = resilience.get(key, 0) + (r.get(key) or 0)
    agg["resilience"] = resilience
    agg["workers_reporting"] = len(worker_stats)
    return agg


# -- HTTP front-end --------------------------------------------------------


class FleetServer:
    """Router behind the serve-mode HTTP surface, fleet edition.

    Routes: ``/metrics`` (merged exposition), ``/healthz`` (fleet
    readiness, 503 while degraded), ``/statsz`` (strict-JSON fleet
    snapshot).  A background load pump fans seeded synthetic ticks to
    the workers so a scraped fleet shows a live, moving system.
    """

    def __init__(
        self,
        router: FleetRouter,
        host: str = "127.0.0.1",
        port: int = 0,
        load_queries_per_tick: int = 0,
        load_tick_ms: float = 2.0,
        load_interval_s: float = 0.05,
    ) -> None:
        self.router = router
        self.host = host
        self.port = port
        self.load_queries_per_tick = load_queries_per_tick
        self.load_tick_ms = load_tick_ms
        self.load_interval_s = load_interval_s
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._pump: Optional[threading.Thread] = None
        self._halt = threading.Event()
        self._shut = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        if self._httpd is not None:
            raise RuntimeError("fleet server already started")
        server = self

        class _Handler(BaseHTTPRequestHandler):
            server_version = "repro-fleet/1.0"
            protocol_version = "HTTP/1.1"

            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                try:
                    status, ctype, body = server.respond(self.path)
                except Exception as exc:
                    status, ctype = 500, JSON_CONTENT_TYPE
                    body = json.dumps({"error": repr(exc)}).encode()
                self.send_response(status)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt, *args) -> None:
                pass

        self._httpd = ThreadingHTTPServer((self.host, self.port), _Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="fleet-http", daemon=True
        )
        self._thread.start()
        if self.load_queries_per_tick > 0:
            self._pump = threading.Thread(
                target=self._pump_loop, name="fleet-load-pump", daemon=True
            )
            self._pump.start()
        return self.host, self.port

    def _pump_loop(self) -> None:
        while not self._halt.is_set():
            try:
                self.router.run_load(
                    ticks=1,
                    queries_per_tick=self.load_queries_per_tick,
                    tick_ms=self.load_tick_ms,
                )
            except RuntimeError:
                break  # no live workers left
            self._halt.wait(self.load_interval_s)

    def shutdown(self) -> Dict[str, Any]:
        """Stop load, drain the fleet, close the listener; idempotent."""
        if self._shut:
            return self.router._drained and {
                "ok": all(
                    e.get("drained") and e.get("exitcode") == 0
                    for e in self.router._drained.values()
                ),
                "workers": self.router._drained,
            } or {"ok": False, "workers": {}}
        self._shut = True
        self._halt.set()
        if self._pump is not None:
            self._pump.join(timeout=10.0)
        report = self.router.drain()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        return report

    def __enter__(self) -> "FleetServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- routing ---------------------------------------------------------

    def respond(self, path: str) -> Tuple[int, str, bytes]:
        """Route one GET (shared by the HTTP handler and the tests)."""
        route = urlsplit(path).path.rstrip("/") or "/"
        if route == "/metrics":
            return 200, METRICS_CONTENT_TYPE, self.router.metrics_text().encode()
        if route == "/healthz":
            health = self.router.healthz()
            return self._json(200 if health["ok"] else 503, health)
        if route == "/statsz":
            return self._json(200, self.router.statsz())
        return self._json(
            404,
            {
                "error": f"no route {route!r}",
                "routes": ["/metrics", "/healthz", "/statsz"],
            },
        )

    @staticmethod
    def _json(status: int, payload: dict) -> Tuple[int, str, bytes]:
        # allow_nan=False: the strict-JSON contract, fleet-wide.
        body = json.dumps(payload, indent=2, allow_nan=False).encode()
        return status, JSON_CONTENT_TYPE, body


def run_fleet(
    server: FleetServer,
    *,
    duration_s: Optional[float] = None,
    announce=print,
) -> int:
    """Blocking fleet loop with SIGTERM/SIGINT fan-out drain.

    Mirrors :func:`repro.service.serve.run_serve`: runs until a signal
    (or ``duration_s``), then drains the whole fleet.  Exit code 0
    *only* when every worker drained clean and exited 0.
    """
    stop = threading.Event()
    previous = {}

    def _on_signal(signum, frame) -> None:
        stop.set()

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, _on_signal)
        except ValueError:
            pass  # not the main thread (tests drive run_fleet directly)
    host, port = server.start()
    announce(
        f"fleet of {len(server.router.handles)} workers on "
        f"http://{host}:{port} (/metrics /healthz /statsz) — "
        "SIGTERM or Ctrl-C drains every worker and exits"
    )
    deadline = time.monotonic() + duration_s if duration_s else None
    try:
        while not stop.is_set():
            if deadline is not None and time.monotonic() >= deadline:
                break
            stop.wait(0.1)
    finally:
        report = server.shutdown()
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    pendings = {
        w: e.get("pending") for w, e in report["workers"].items()
    }
    announce(
        f"fleet drained and stopped (ok={report['ok']}, "
        f"pending per worker: {pendings})"
    )
    return 0 if report["ok"] else 1
